// Bounded, per-prefix-coalescing churn queue.
//
// A BGP burst can announce and withdraw the same prefix many times in
// one flap storm; the plan pipeline only ever cares about the newest
// state per prefix. CoalescingQueue sits between the ingest thread
// (framing/decoding the feed) and the pipeline thread (applying deltas
// and re-ranking): offers fold newest-wins into an existing queued entry
// for the same prefix — announce→withdraw→announce collapses to the
// final announce, in the prefix's original FIFO position, keeping the
// oldest enqueue time so end-to-end latency is never under-reported.
//
// Capacity is bounded. When full, the configured OverflowPolicy either
// blocks the producer (lossless backpressure — the feed socket's TCP
// window then throttles the collector) or drops the newest offer
// (bounded-latency at the cost of fidelity); both paths are counted so
// reactor stats expose exactly what burst handling cost.
//
// Threading: one producer, one consumer (the reactor's ingest and
// pipeline threads), but all operations are mutex-guarded so tests may
// drive it from any thread.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/prefix.hpp"

namespace tass::stream {

/// One folded routing change: announce with origins, or withdraw when
/// `origins` is nullopt. `enqueued_at` is the reactor-clock time of the
/// oldest offer folded into this entry.
struct PrefixAction {
  net::Prefix prefix;
  std::optional<std::vector<std::uint32_t>> origins;  // nullopt = withdraw
  double enqueued_at = 0.0;

  bool is_withdraw() const noexcept { return !origins.has_value(); }
};

enum class OverflowPolicy {
  kBlock,       // offer() waits for space (lossless backpressure)
  kDropNewest,  // offer() discards the incoming action and counts it
};

/// Cumulative queue accounting.
struct QueueStats {
  std::uint64_t offered = 0;    // actions presented to the queue
  std::uint64_t coalesced = 0;  // offers folded into an existing entry
  std::uint64_t dropped = 0;    // offers discarded by kDropNewest
  std::uint64_t blocked = 0;    // offers that had to wait for space
  std::uint64_t drained = 0;    // entries handed to the consumer
  std::uint64_t high_water = 0; // maximum depth observed
};

class CoalescingQueue {
 public:
  explicit CoalescingQueue(std::size_t capacity,
                           OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  /// Offers an action, folding into a queued entry for the same prefix
  /// when one exists (never blocks in that case). Returns false only
  /// when the action was discarded: queue full under kDropNewest, or
  /// closed. Under kBlock a full queue waits until the consumer drains
  /// or the queue closes.
  bool offer(PrefixAction action) {
    std::unique_lock lock(mutex_);
    if (closed_) return false;
    ++stats_.offered;
    if (fold_locked(action)) return true;
    if (queue_.size() >= capacity_) {
      if (policy_ == OverflowPolicy::kDropNewest) {
        ++stats_.dropped;
        return false;
      }
      ++stats_.blocked;
      space_.wait(lock,
                  [&] { return closed_ || queue_.size() < capacity_; });
      if (closed_) return false;
      // Space appeared, but the consumer may have drained this prefix's
      // entry and a racing producer re-queued it — fold again first.
      if (fold_locked(action)) return true;
    }
    push_locked(std::move(action));
    return true;
  }

  /// Non-blocking offer: folds or pushes, returns false when the queue
  /// is full (caller should drain or treat as backpressure) or closed.
  bool try_offer(PrefixAction action) {
    std::lock_guard lock(mutex_);
    if (closed_) return false;
    ++stats_.offered;
    if (fold_locked(action)) return true;
    if (queue_.size() >= capacity_) {
      --stats_.offered;  // not accepted; caller retries the same action
      return false;
    }
    push_locked(std::move(action));
    return true;
  }

  /// Pops up to `max` entries in FIFO order (0 = all). Never blocks.
  std::vector<PrefixAction> drain(std::size_t max = 0) {
    std::vector<PrefixAction> out;
    {
      std::lock_guard lock(mutex_);
      std::size_t take = queue_.size();
      if (max != 0) take = std::min(take, max);
      out.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
        ++base_;
      }
      for (const PrefixAction& action : out) {
        index_.erase(key_of(action.prefix));
      }
      stats_.drained += out.size();
    }
    if (!out.empty()) space_.notify_all();
    return out;
  }

  /// Blocks until the queue is non-empty, closed, or `timeout_seconds`
  /// elapses; returns whether entries are available.
  bool wait_nonempty(double timeout_seconds) {
    std::unique_lock lock(mutex_);
    data_.wait_for(lock,
                   std::chrono::duration<double>(timeout_seconds),
                   [&] { return closed_ || !queue_.empty(); });
    return !queue_.empty();
  }

  /// Closes the queue: blocked producers wake and fail, future offers
  /// are rejected; already-queued entries remain drainable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    space_.notify_all();
    data_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  QueueStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }

 private:
  static std::uint64_t key_of(const net::Prefix& prefix) noexcept {
    return (static_cast<std::uint64_t>(prefix.network().value()) << 8) |
           prefix.length();
  }

  /// Folds `action` into an existing queued entry for the same prefix.
  /// Newest wins; the entry keeps its FIFO position and oldest
  /// enqueued_at. Returns whether a fold happened.
  bool fold_locked(const PrefixAction& action) {
    auto it = index_.find(key_of(action.prefix));
    if (it == index_.end()) return false;
    PrefixAction& queued = queue_[it->second - base_];
    queued.origins = action.origins;
    ++stats_.coalesced;
    data_.notify_all();
    return true;
  }

  void push_locked(PrefixAction action) {
    index_.emplace(key_of(action.prefix), base_ + queue_.size());
    queue_.push_back(std::move(action));
    stats_.high_water = std::max<std::uint64_t>(stats_.high_water,
                                                queue_.size());
    data_.notify_all();
  }

  mutable std::mutex mutex_;
  std::condition_variable space_;
  std::condition_variable data_;
  std::deque<PrefixAction> queue_;
  // prefix key → absolute position (base_ + offset), stable across pops.
  std::unordered_map<std::uint64_t, std::uint64_t> index_;
  std::uint64_t base_ = 0;
  std::size_t capacity_;
  OverflowPolicy policy_;
  bool closed_ = false;
  QueueStats stats_;
};

}  // namespace tass::stream
