// Incremental MRT framing with mid-stream resync.
//
// A live update feed delivers bytes in arbitrary fragments: a record may
// arrive split across many reads, and a collector hiccup can splice
// garbage or a truncated record into the stream. MrtFramer turns that
// byte stream back into whole MRT records, decoding each through
// bgp::decode_mrt_updates — and when a record is structurally corrupt it
// resynchronises by scanning forward for the next plausible MRT header
// instead of giving up on the stream.
//
// The resync guarantee the fault-injection suite pins: every intact
// BGP4MP record present in the input is eventually framed and decoded
// (never silently skipped), and corrupt spans are surfaced through typed
// counters (decode_errors, resyncs, bytes_discarded) — the framer itself
// never throws on feed bytes and never crashes. The scan advances one
// byte at a time after a failure, so a valid record header can never be
// jumped over; the 16-byte all-0xff BGP marker inside each BGP4MP body
// makes false positives vanishingly unlikely in practice, and a false
// positive only costs one more resync.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/rib_delta.hpp"

namespace tass::stream {

/// Feed-path accounting, cumulative since construction.
struct FramerStats {
  std::uint64_t bytes_in = 0;          // total bytes pushed
  std::uint64_t records = 0;           // records decoded into deltas
  std::uint64_t skipped_records = 0;   // valid MRT, not v4 BGP4MP UPDATEs
  std::uint64_t decode_errors = 0;     // structurally corrupt records
  std::uint64_t resyncs = 0;           // forward scans after corruption
  std::uint64_t bytes_discarded = 0;   // bytes dropped while resyncing
  std::uint64_t truncated_tail = 0;    // partial record left at finish()
};

/// Reassembles MRT records from a fragmented byte stream.
///
/// Usage: push() raw feed bytes, then drain next() until nullopt; call
/// finish() once the source is exhausted to account a partial tail.
/// Single-threaded — the reactor owns one framer on its ingest thread.
class MrtFramer {
 public:
  /// Records longer than this are treated as corruption (an MRT UPDATE
  /// record is bounded by the 4 KiB BGP message limit plus headers; 1 MiB
  /// leaves two orders of magnitude of slack while keeping a corrupted
  /// length field from stalling the stream for gigabytes).
  static constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

  /// Appends feed bytes to the reassembly buffer.
  void push(std::span<const std::byte> data);

  /// Returns the next decoded record's delta, or nullopt when the buffer
  /// holds no complete record. Records that are valid MRT but not IPv4
  /// BGP4MP UPDATEs are consumed and counted (skipped_records) without
  /// surfacing; corrupt records trigger resync and counting. A returned
  /// delta may be empty() when an UPDATE carried no usable routes.
  std::optional<bgp::RibDelta> next();

  /// Marks end-of-stream: any buffered partial record is counted as a
  /// truncated tail and discarded. Idempotent per tail.
  void finish();

  const FramerStats& stats() const noexcept { return stats_; }

 private:
  /// True when the 12 bytes at `offset` look like an MRT header this
  /// pipeline could ever frame (known type/subtype, sane length).
  bool plausible_header(std::size_t offset) const noexcept;

  /// Drops `count` buffered bytes into the discard counters.
  void discard(std::size_t count);

  /// Advances past a corrupt span: drops one byte, then scans forward to
  /// the next plausible header (or to where one could still start).
  void resync();

  void compact();

  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already processed
  FramerStats stats_;
};

}  // namespace tass::stream
