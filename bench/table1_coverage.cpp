// Reproduces Table 1: "IPv4 address space coverage of the protocols using
// less and more specific prefixes" — the fraction of the announced address
// space TASS scans per cycle for host coverage targets
// phi in {1, 0.99, 0.95, 0.7, 0.5}, for FTP / HTTP / HTTPS / CWMP.
//
// Paper reference values (m-prefixes): FTP 0.574/0.371/0.206/0.023/0.006.
#include <cstdio>

#include "bench_common.hpp"
#include "core/ranking.hpp"
#include "core/selection.hpp"
#include "report/table.hpp"

namespace {

using namespace tass;

constexpr double kPhis[] = {1.0, 0.99, 0.95, 0.7, 0.5};

}  // namespace

int main() {
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);

  std::printf("# Table 1: address space coverage per scan cycle\n");
  for (const core::PrefixMode mode :
       {core::PrefixMode::kLess, core::PrefixMode::kMore}) {
    report::Table table({"phi", "FTP", "HTTP", "HTTPS", "CWMP"});
    std::vector<std::vector<double>> columns;
    for (const census::Protocol protocol : census::paper_protocols()) {
      const auto series = bench::make_series(topology, protocol, config);
      const auto ranking = core::rank_by_density(series.month(0), mode);
      std::vector<double> column;
      for (const double phi : kPhis) {
        core::SelectionParams params;
        params.phi = phi;
        column.push_back(
            core::select_by_density(ranking, params).space_coverage());
      }
      columns.push_back(std::move(column));
    }
    for (std::size_t row = 0; row < std::size(kPhis); ++row) {
      table.add_row({report::Table::cell(kPhis[row], 2),
                     report::Table::cell(columns[0][row], 3),
                     report::Table::cell(columns[1][row], 3),
                     report::Table::cell(columns[2][row], 3),
                     report::Table::cell(columns[3][row], 3)});
    }
    std::printf("\n[%s specific prefixes]\n%s",
                core::prefix_mode_name(mode).data(),
                table.to_text().c_str());
  }
  return 0;
}
