// Shared setup for the bench binaries: every bench regenerates its
// table/figure from the same synthetic world, controlled by environment
// variables so deeper sweeps need no recompilation.
//
//   TASS_SEED    master seed            (default 2016)
//   TASS_LCOUNT  l-prefix count         (default 8000; paper-scale topology)
//   TASS_SCALE   host scale             (default 0.02 of paper host counts)
//   TASS_MONTHS  months in the series   (default 7, as in the paper)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "census/series.hpp"
#include "census/topology.hpp"

namespace tass::bench {

struct BenchConfig {
  std::uint64_t seed = 2016;
  std::size_t l_prefix_count = 8000;
  double host_scale = 0.02;
  int months = 7;

  static BenchConfig from_env() {
    BenchConfig config;
    if (const char* seed = std::getenv("TASS_SEED")) {
      config.seed = std::strtoull(seed, nullptr, 10);
    }
    if (const char* count = std::getenv("TASS_LCOUNT")) {
      config.l_prefix_count = std::strtoull(count, nullptr, 10);
    }
    if (const char* scale = std::getenv("TASS_SCALE")) {
      config.host_scale = std::strtod(scale, nullptr);
    }
    if (const char* months = std::getenv("TASS_MONTHS")) {
      config.months = std::atoi(months);
    }
    return config;
  }
};

inline std::shared_ptr<const census::Topology> make_topology(
    const BenchConfig& config) {
  census::TopologyParams params;
  params.seed = config.seed;
  params.l_prefix_count = config.l_prefix_count;
  return census::generate_topology(params);
}

inline census::CensusSeries make_series(
    std::shared_ptr<const census::Topology> topology,
    census::Protocol protocol, const BenchConfig& config) {
  census::SeriesParams params;
  params.months = config.months;
  params.host_scale = config.host_scale;
  params.seed = config.seed + 1;
  return census::CensusSeries::generate(std::move(topology), protocol,
                                        params);
}

inline void print_world_banner(const BenchConfig& config,
                               const census::Topology& topology) {
  std::printf(
      "# synthetic world: seed=%llu l_prefixes=%zu cells=%zu "
      "advertised=%.2fB addresses host_scale=%.3f months=%d\n",
      static_cast<unsigned long long>(config.seed),
      topology.l_partition.size(), topology.m_partition.size(),
      static_cast<double>(topology.advertised_addresses) / 1e9,
      config.host_scale, config.months);
}

}  // namespace tass::bench
