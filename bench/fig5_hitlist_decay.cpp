// Reproduces Figure 5: "Hitrate using IP hitlists" — the accuracy of the
// address-hitlist baseline (scan at t0, then re-probe exactly those
// addresses monthly) relative to a monthly full scan.
//
// Paper shape: drops to ~0.80 within one month for FTP/HTTP/HTTPS, keeps
// declining to ~0.71 (HTTP) after six months; CWMP collapses to ~0.43.
#include <cstdio>

#include <cstdlib>
#include <fstream>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "report/gnuplot.hpp"
#include "report/series.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf("# Figure 5: hitrate using IP hitlists\n\n");

  report::SeriesSet out("month");
  std::vector<std::string> ticks;
  for (int m = 0; m < config.months; ++m) {
    ticks.push_back(census::month_label(m));
  }
  out.set_ticks(std::move(ticks));

  for (const census::Protocol protocol : census::paper_protocols()) {
    const auto series = bench::make_series(topology, protocol, config);
    const auto evaluation =
        core::evaluate(core::HitlistStrategy(series.month(0)), series);
    std::vector<double> hitrates;
    for (const auto& cycle : evaluation.cycles) {
      hitrates.push_back(cycle.hitrate());
    }
    out.add_series(std::string(census::protocol_name(protocol)),
                   std::move(hitrates));
  }
  std::printf("%s", out.to_tsv().c_str());

  if (std::getenv("TASS_GNUPLOT") != nullptr) {
    report::GnuplotOptions options;
    options.title = "Figure 5: hitrate using IP hitlists";
    options.y_min = 0.4;
    options.output = "fig5.png";
    std::ofstream script("fig5.gp");
    script << report::to_gnuplot(out, options);
    std::printf("# wrote fig5.gp (gnuplot fig5.gp renders fig5.png)\n");
  }
  return 0;
}
