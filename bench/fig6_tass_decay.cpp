// Reproduces Figure 6: "Hitrate of TASS compared to a full scan" for
// (a) phi = 1 and (b) phi = 0.95, each with less- and more-specific
// prefixes, over the 7 monthly snapshots.
//
// Paper shape: l-prefix accuracy decays ~0.3%/month for all protocols;
// m-prefix accuracy decays up to ~0.7%/month (CWMP worst); phi = 0.95
// shifts every curve down to the 0.90-0.95 band.
#include <cstdio>

#include <cstdlib>
#include <fstream>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "report/gnuplot.hpp"
#include "report/series.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);

  for (const double phi : {1.0, 0.95}) {
    std::printf("\n# Figure 6%s: TASS hitrate vs full scan, phi=%.2f\n",
                phi == 1.0 ? "(a)" : "(b)", phi);
    report::SeriesSet out("month");
    std::vector<std::string> ticks;
    for (int m = 0; m < config.months; ++m) {
      ticks.push_back(census::month_label(m));
    }
    out.set_ticks(std::move(ticks));

    for (const census::Protocol protocol : census::paper_protocols()) {
      const auto series = bench::make_series(topology, protocol, config);
      for (const core::PrefixMode mode :
           {core::PrefixMode::kLess, core::PrefixMode::kMore}) {
        core::SelectionParams params;
        params.phi = phi;
        const core::TassStrategy strategy(series.month(0), mode, params);
        const auto evaluation = core::evaluate(strategy, series);
        std::vector<double> hitrates;
        for (const auto& cycle : evaluation.cycles) {
          hitrates.push_back(cycle.hitrate());
        }
        out.add_series(std::string(census::protocol_name(protocol)) + "-" +
                           std::string(core::prefix_mode_name(mode)),
                       std::move(hitrates));
      }
    }
    std::printf("%s", out.to_tsv().c_str());

    if (std::getenv("TASS_GNUPLOT") != nullptr) {
      const std::string name = phi == 1.0 ? "fig6a" : "fig6b";
      report::GnuplotOptions options;
      options.title = "Figure 6: TASS hitrate vs full scan, phi=" +
                      std::string(phi == 1.0 ? "1.0" : "0.95");
      options.y_min = 0.9;
      options.output = name + ".png";
      std::ofstream script(name + ".gp");
      script << report::to_gnuplot(out, options);
      std::printf("# wrote %s.gp\n", name.c_str());
    }
  }
  return 0;
}
