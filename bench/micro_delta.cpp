// Incremental churn micro-benchmark: PrefixPartition::apply_delta +
// core::rerank_cells (the delta path) versus a from-scratch
// PrefixPartition construction + core::rank_by_density (the full-rebuild
// path), across BGP-realistic churn rates on a full-table-sized
// partition.
//
// Plain executable (no google-benchmark dependency) so it always builds
// and doubles as a ctest bench-smoke test. Prints one machine-readable
// JSON object on stdout for BENCH tracking; human-readable notes go to
// stderr. Every step cross-checks the two paths — bit-identical rankings
// and identical LPM lookups — and exits non-zero on any disagreement, so
// the benchmark is also a sampled correctness check.
//
// The full path is measured *without* re-attribution (it gets the per-cell
// counts for free), so the reported speedup is a lower bound: a real full
// rebuild would also rescan the entire advertised space.
//
// Usage: micro_delta [--prefixes N] [--steps K] [--seed S]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bgp/partition.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "net/prefix.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Disjoint, RIB-shaped partition prefixes: bulk in /17../24, a few short
// covers — allocated with the buddy allocator so they tile cleanly.
std::vector<net::Prefix> synthesize_partition(std::size_t count,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<net::Prefix> space{
      net::Prefix::parse_or_throw("0.0.0.0/2"),
      net::Prefix::parse_or_throw("64.0.0.0/2"),
      net::Prefix::parse_or_throw("128.0.0.0/2"),
      net::Prefix::parse_or_throw("192.0.0.0/2"),
  };
  census::BuddyAllocator allocator(space);
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(count);
  while (prefixes.size() < count) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.02) {
      length = 12 + static_cast<int>(rng.bounded(4));
    } else if (roll < 0.40) {
      length = 16 + static_cast<int>(rng.bounded(5));
    } else {
      length = 21 + static_cast<int>(rng.bounded(4));
    }
    const auto prefix = allocator.allocate(length, rng);
    if (!prefix) {
      std::fprintf(stderr, "address space exhausted at %zu prefixes\n",
                   prefixes.size());
      break;
    }
    prefixes.push_back(*prefix);
  }
  return prefixes;
}

// Deterministic per-prefix host count (the bench has no oracle; both
// paths must see identical counts, which is all that matters here).
std::uint32_t synthetic_count(net::Prefix prefix, std::uint64_t seed) {
  const std::uint64_t h =
      util::mix64(seed, (static_cast<std::uint64_t>(prefix.network().value())
                         << 6) |
                            static_cast<std::uint64_t>(prefix.length()));
  if ((h & 7u) < 3u) return 0;  // ~40% of cells are host-free
  return static_cast<std::uint32_t>(1 + (h >> 3) % 500);
}

// One churn batch at the given rate: withdrawn-and-readvertised cells and
// deaggregation splits, the two dominant real-world shapes.
bgp::PartitionDelta draw_delta(const bgp::PrefixPartition& partition,
                               double rate, util::Rng& rng) {
  bgp::PartitionDelta delta;
  const auto changes = static_cast<std::size_t>(
      static_cast<double>(partition.live_cells()) * rate);
  std::vector<std::uint8_t> used(partition.size(), 0);
  for (std::size_t k = 0; k < changes; ++k) {
    const auto slot =
        static_cast<std::uint32_t>(rng.bounded(partition.size()));
    if (used[slot] != 0 || !partition.live(slot)) continue;
    used[slot] = 1;
    const net::Prefix prefix = partition.prefix(slot);
    delta.remove.push_back(prefix);
    if (prefix.length() < 30 && rng.chance(0.5)) {
      delta.add.push_back(prefix.lower_half());
      delta.add.push_back(prefix.upper_half());
    } else {
      delta.add.push_back(prefix);  // withdraw + re-advertise
    }
  }
  return delta;
}

bool rankings_agree(const core::DensityRanking& a,
                    const core::DensityRanking& b) {
  if (a.total_hosts != b.total_hosts || a.ranked.size() != b.ranked.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].prefix != b.ranked[i].prefix ||
        a.ranked[i].hosts != b.ranked[i].hosts ||
        a.ranked[i].density != b.ranked[i].density ||
        a.ranked[i].host_share != b.ranked[i].host_share) {
      return false;
    }
  }
  return true;
}

struct RateResult {
  double churn = 0.0;
  double delta_ms = 0.0;  // apply_delta + reindex + rerank, mean per step
  double full_ms = 0.0;   // fresh partition + full rank, mean per step
  double speedup = 0.0;
  std::uint64_t changed_cells = 0;  // mean invalidated cells per step
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 120'000;
  int steps = 5;
  std::uint64_t seed = 2016;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--steps") == 0) {
      steps = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_delta [--prefixes N] "
                   "[--steps K] [--seed S]\n",
                   argv[i]);
      return 2;
    }
  }
  if (prefix_count == 0) prefix_count = 1;
  if (steps <= 0) steps = 1;

  const auto initial = synthesize_partition(prefix_count, seed);
  constexpr double kRates[] = {0.001, 0.01, 0.05};
  std::vector<RateResult> results;

  for (const double rate : kRates) {
    util::Rng rng(util::mix64(seed, static_cast<std::uint64_t>(rate * 1e6)));
    bgp::PrefixPartition partition{std::vector<net::Prefix>(initial)};
    std::vector<std::uint32_t> counts(partition.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] = synthetic_count(partition.prefix(i), seed);
    }
    core::DensityRanking ranking =
        core::rank_by_density(counts, partition, core::PrefixMode::kMore);

    RateResult result;
    result.churn = rate;
    for (int step = 0; step < steps; ++step) {
      const bgp::PartitionDelta delta = draw_delta(partition, rate, rng);

      // --- delta path (timed) -----------------------------------------
      auto start = std::chrono::steady_clock::now();
      const bgp::PartitionApplyResult applied = partition.apply_delta(delta);
      applied.reindex(counts);
      for (const std::uint32_t cell : applied.added_cells) {
        counts[cell] = synthetic_count(partition.prefix(cell), seed);
      }
      core::rerank_cells(ranking, counts, partition, applied);
      result.delta_ms += ms_since(start);
      result.changed_cells += applied.removed_cells.size() +
                              applied.added_cells.size();

      // --- full-rebuild path (timed; the per-cell counts are handed
      // over for free, so generating them stays OUTSIDE the clock) -----
      const auto live = partition.live_prefixes();
      std::vector<std::uint32_t> fresh_counts(live.size());
      for (std::size_t i = 0; i < live.size(); ++i) {
        fresh_counts[i] = synthetic_count(live[i], seed);
      }
      start = std::chrono::steady_clock::now();
      const bgp::PrefixPartition fresh{std::vector<net::Prefix>(live)};
      const core::DensityRanking fresh_ranking = core::rank_by_density(
          fresh_counts, fresh, core::PrefixMode::kMore);
      result.full_ms += ms_since(start);

      // --- cross-check (not timed) ------------------------------------
      if (!rankings_agree(ranking, fresh_ranking)) {
        std::fprintf(stderr, "RANKING MISMATCH at rate %.3f step %d\n",
                     rate, step);
        return 1;
      }
      for (int probe = 0; probe < 20000; ++probe) {
        const net::Ipv4Address address(
            static_cast<std::uint32_t>(rng.bounded(1ull << 32)));
        const auto got = partition.locate(address);
        const auto want = fresh.locate(address);
        if (got.has_value() != want.has_value() ||
            (got && partition.prefix(*got) != fresh.prefix(*want))) {
          std::fprintf(stderr, "LOOKUP MISMATCH at %s\n",
                       address.to_string().c_str());
          return 1;
        }
      }
    }
    result.delta_ms /= steps;
    result.full_ms /= steps;
    result.changed_cells /= static_cast<std::uint64_t>(steps);
    result.speedup =
        result.delta_ms > 0.0 ? result.full_ms / result.delta_ms : 0.0;
    results.push_back(result);

    std::fprintf(stderr,
                 "# churn %5.2f%%: delta %8.3f ms, full rebuild %8.3f ms, "
                 "speedup %6.1fx (%" PRIu64 " cells/step)\n",
                 rate * 100.0, result.delta_ms, result.full_ms,
                 result.speedup, result.changed_cells);
  }

  std::printf("{\"bench\":\"micro_delta\",\"prefixes\":%zu,\"steps\":%d,"
              "\"seed\":%" PRIu64 ",\"rates\":[",
              prefix_count, steps, seed);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    std::printf("%s{\"churn\":%.4f,\"changed_cells\":%" PRIu64
                ",\"delta_ms\":%.3f,\"full_ms\":%.3f,\"speedup\":%.2f}",
                i == 0 ? "" : ",", r.churn, r.changed_cells, r.delta_ms,
                r.full_ms, r.speedup);
  }
  std::printf("]}\n");
  return 0;
}
