// Reproduces Figure 4: responsive prefixes ranked by density (dotted),
// cumulative relative host coverage (solid) and cumulative relative
// address-space coverage (dashed), for FTP and HTTP at both granularities.
//
// Paper shape: density collapses sharply over the first few thousand
// ranks while host coverage rises steeply and space coverage stays low —
// the core evidence that density-ranked prefix selection is efficient.
#include <cstdio>

#include "bench_common.hpp"
#include "core/ranking.hpp"
#include "report/table.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf("# Figure 4: density-ranked coverage curves\n");

  for (const census::Protocol protocol :
       {census::Protocol::kFtp, census::Protocol::kHttp}) {
    const auto series = bench::make_series(topology, protocol, config);
    for (const core::PrefixMode mode :
         {core::PrefixMode::kLess, core::PrefixMode::kMore}) {
      const auto ranking = core::rank_by_density(series.month(0), mode);
      const auto curve = core::rank_curve(ranking, 16);

      report::Table table(
          {"rank", "density", "host coverage", "space coverage"});
      for (const auto& point : curve) {
        table.add_row({report::Table::cell(
                           static_cast<std::uint64_t>(point.rank)),
                       report::Table::cell(point.density, 6),
                       report::Table::cell(point.cumulative_hosts, 4),
                       report::Table::cell(point.cumulative_space, 4)});
      }
      std::printf(
          "\n[%s, %s specific prefixes] responsive prefixes=%zu hosts=%llu\n%s",
          census::protocol_name(protocol).data(),
          core::prefix_mode_name(mode).data(), ranking.ranked.size(),
          static_cast<unsigned long long>(ranking.total_hosts),
          table.to_text().c_str());
    }
  }
  return 0;
}
