// Serving micro-benchmark: the resident tass_serve daemon under
// concurrent batched load, with generation swaps racing the request
// stream.
//
// Setup builds two RIB-shaped v4 topologies (A and B, different seeds)
// and one v6 topology of disjoint /48 cells, seals them into state
// images, and starts an in-process Server on loopback. Then
// `--connections` client threads (>= 8 in the smoke run) each drive a
// mixed query stream — batched v4 locate/tally, periodic v6 locate,
// periodic rank/plan — while a control connection performs `--swaps`
// A<->B generation swaps mid-load.
//
// Every response is cross-checked for bit identity against a direct
// library call on the image whose topology fingerprint the response
// header names; any mismatch, unknown fingerprint, or error frame is
// fatal (non-zero exit). Headline numbers: sustained queries/sec/core,
// client-observed p99 request latency, and p99 client-observed swap
// latency (reload request -> first response served by the new
// generation).
//
// Plain executable, one JSON object on stdout, notes on stderr.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bgp/deaggregate.hpp"
#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "bgp/rib.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "net/prefix.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "state/image.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Same RIB shape as micro_coldstart: disjoint coverings from the buddy
// allocator, ~55% announcing nested more-specifics.
std::vector<bgp::Pfx2AsRecord> synthesize_table(std::size_t target_cells,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<net::Prefix> space{
      net::Prefix::parse_or_throw("0.0.0.0/2"),
      net::Prefix::parse_or_throw("64.0.0.0/2"),
      net::Prefix::parse_or_throw("128.0.0.0/2"),
      net::Prefix::parse_or_throw("192.0.0.0/2"),
  };
  census::BuddyAllocator allocator(space);
  std::vector<bgp::Pfx2AsRecord> records;
  std::size_t cells = 0;
  while (cells < target_cells) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.03) {
      length = 12 + static_cast<int>(rng.bounded(4));
    } else if (roll < 0.38) {
      length = 16 + static_cast<int>(rng.bounded(4));
    } else {
      length = 20 + static_cast<int>(rng.bounded(4));
    }
    const auto covering = allocator.allocate(length, rng);
    if (!covering) break;
    const auto origin =
        static_cast<std::uint32_t>(64512 + rng.bounded(1024));
    records.push_back({*covering, {origin}});
    std::vector<net::Prefix> inside;
    if (rng.chance(0.55)) {
      int specifics = 1;
      while (specifics < 6 && rng.chance(0.58)) ++specifics;
      for (int s = 0; s < specifics; ++s) {
        const int extra = 1 + static_cast<int>(rng.bounded(6));
        const int sub_length = std::min(covering->length() + extra, 24);
        if (sub_length <= covering->length()) continue;
        const auto offset = rng.bounded(
            std::uint64_t{1} << (sub_length - covering->length()));
        const net::Prefix specific(
            net::Ipv4Address(covering->network().value() +
                             static_cast<std::uint32_t>(
                                 offset << (32 - sub_length))),
            sub_length);
        inside.push_back(specific);
        records.push_back({specific, {origin}});
      }
    }
    cells += bgp::deaggregate(*covering, inside).size();
  }
  return records;
}

std::uint32_t synthetic_count(net::Prefix prefix, std::uint64_t seed) {
  const std::uint64_t h = util::mix64(
      seed, (static_cast<std::uint64_t>(prefix.network().value()) << 6) |
                static_cast<std::uint64_t>(prefix.length()));
  if ((h & 7u) < 3u) return 0;
  return static_cast<std::uint32_t>(1 + (h >> 3) % 500);
}

std::string save_v4_image(const std::string& path, std::size_t cells,
                          std::uint64_t seed) {
  const auto records = synthesize_table(cells, seed);
  const bgp::PrefixPartition partition =
      bgp::RoutingTable::from_pfx2as(records).m_partition();
  std::vector<std::uint32_t> counts(partition.size());
  for (std::size_t i = 0; i < partition.size(); ++i) {
    counts[i] = synthetic_count(partition.prefix(i), seed);
  }
  state::save_image(
      path, partition,
      core::rank_by_density(counts, partition, core::PrefixMode::kMore));
  return path;
}

std::string save_v6_image(const std::string& path, std::size_t cells,
                          std::uint64_t seed) {
  // Disjoint /48 cells under 2001::/16 (partitions need a disjoint
  // tiling, unlike the overlap-heavy micro_lpm6 tables).
  std::vector<net::Ipv6Prefix> prefixes;
  for (std::size_t i = 0; i < cells; ++i) {
    prefixes.emplace_back(
        net::Ipv6Address(
            0x2001000000000000ULL | (static_cast<std::uint64_t>(i) << 16),
            0),
        48);
  }
  bgp::PrefixPartition6 partition(std::move(prefixes));
  std::vector<std::uint32_t> counts(partition.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>(
        util::mix64(seed, i) % 400);
  }
  state::save_image(
      path, partition,
      core::rank_by_density(counts, partition, core::PrefixMode::kMore));
  return path;
}

double percentile(std::vector<double>& sorted_inplace, double p) {
  if (sorted_inplace.empty()) return 0.0;
  std::sort(sorted_inplace.begin(), sorted_inplace.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_inplace.size() - 1));
  return sorted_inplace[rank];
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 60'000;
  std::size_t prefix6_count = 0;  // 0 -> prefixes/8
  std::size_t connections = 8;
  std::size_t min_requests = 400;  // per connection
  std::size_t batch = 256;
  std::size_t swap_count = 8;
  unsigned threads = 4;
  std::uint64_t seed = 2016;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--prefixes6") == 0) {
      prefix6_count = value;
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      connections = value;
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      min_requests = value;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = value;
    } else if (std::strcmp(argv[i], "--swaps") == 0) {
      swap_count = value;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<unsigned>(value);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_serve [--prefixes N] "
                   "[--prefixes6 M] [--connections C] [--requests R] "
                   "[--batch B] [--swaps S] [--threads T] [--seed S]\n",
                   argv[i]);
      return 2;
    }
  }
  if (connections == 0) connections = 1;
  if (batch == 0) batch = 1;
  if (threads == 0) threads = 1;
  if (prefix6_count == 0) prefix6_count = std::max<std::size_t>(64, prefix_count / 8);

  const std::string dir = std::getenv("TMPDIR") ? std::getenv("TMPDIR")
                                                : std::string("/tmp");
  const std::string tag = std::to_string(static_cast<long>(::getpid()));
  const std::string path_a = dir + "/serve_bench_a." + tag + ".tsim";
  const std::string path_b = dir + "/serve_bench_b." + tag + ".tsim";
  const std::string path_6 = dir + "/serve_bench_6." + tag + ".tsi6";
  save_v4_image(path_a, prefix_count, seed);
  save_v4_image(path_b, prefix_count, seed + 1);
  save_v6_image(path_6, prefix6_count, seed + 2);

  // The bit-identity oracles: direct library views of the same images.
  const state::StateImage direct_a = state::StateImage::load(path_a);
  const state::StateImage direct_b = state::StateImage::load(path_b);
  const state::StateImage6 direct_6 = state::StateImage6::load(path_6);
  const std::uint64_t fp_a = direct_a.info().fingerprint;
  const std::uint64_t fp_b = direct_b.info().fingerprint;
  const std::uint64_t fp_6 = direct_6.info().fingerprint;
  if (fp_a == fp_b) {
    std::fprintf(stderr, "seed degeneracy: fp_a == fp_b\n");
    return 1;
  }
  const auto v4_oracle =
      [&](std::uint64_t fingerprint) -> const state::StateImage* {
    if (fingerprint == fp_a) return &direct_a;
    if (fingerprint == fp_b) return &direct_b;
    return nullptr;
  };

  serve::ServerOptions options;
  options.v4_image_path = path_a;
  options.v6_image_path = path_6;
  options.threads = threads;
  serve::Server server(std::move(options));
  std::thread serving([&server] { server.run(); });

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> total_requests{0};
  std::atomic<std::uint64_t> total_addresses{0};
  std::atomic<int> failures{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_us;

  std::vector<std::thread> clients;
  clients.reserve(connections);
  const auto load_start = Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      try {
        serve::Client client("127.0.0.1", server.port());
        std::vector<double> local_us;
        local_us.reserve(min_requests + 64);
        util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
        std::vector<std::uint32_t> addresses(batch);
        std::vector<net::Ipv6Address> addresses6(batch / 2 + 1);
        for (std::uint64_t iteration = 0;
             iteration < min_requests || !done.load(std::memory_order_acquire);
             ++iteration) {
          const auto kind = iteration % 16;
          const auto start = Clock::now();
          if (kind == 15) {
            // rank: head of the served ranking, checked against oracle.
            const auto [header, rows] =
                client.rank(net::AddressFamily::kIpv4, 16);
            const state::StateImage* oracle = v4_oracle(header.fingerprint);
            if (oracle == nullptr) {
              failures.fetch_add(1);
              break;
            }
            const auto view = oracle->ranking();
            const std::size_t n =
                std::min<std::size_t>(16, view.ranked.size());
            bool ok = rows.size() == n;
            for (std::size_t i = 0; ok && i < n; ++i) {
              ok = rows[i].prefix.v4() == view.ranked[i].prefix &&
                   rows[i].hosts == view.ranked[i].hosts &&
                   rows[i].density == view.ranked[i].density;
            }
            if (!ok) {
              std::fprintf(stderr, "RANK MISMATCH (conn %zu)\n", c);
              failures.fetch_add(1);
              break;
            }
          } else if (kind == 7) {
            // v6 locate batch.
            for (auto& addr : addresses6) {
              addr = net::Ipv6Address(
                  0x2001000000000000ULL |
                      ((rng.bounded(prefix6_count + 8)) << 16),
                  rng());
            }
            const auto [header, cells] = client.locate(addresses6);
            if (header.fingerprint != fp_6) {
              failures.fetch_add(1);
              break;
            }
            std::vector<std::uint32_t> want(addresses6.size());
            direct_6.partition().locate_many(addresses6, want);
            if (cells != want) {
              std::fprintf(stderr, "V6 LOCATE MISMATCH (conn %zu)\n", c);
              failures.fetch_add(1);
              break;
            }
            total_addresses.fetch_add(addresses6.size(),
                                      std::memory_order_relaxed);
          } else if (kind % 2 == 1) {
            // v4 tally batch.
            for (auto& addr : addresses) {
              addr = static_cast<std::uint32_t>(rng());
            }
            const auto [header, tally] = client.tally(addresses);
            const state::StateImage* oracle = v4_oracle(header.fingerprint);
            if (oracle == nullptr) {
              failures.fetch_add(1);
              break;
            }
            std::vector<std::uint32_t> counts(oracle->partition().size());
            std::uint64_t attributed = 0;
            std::uint64_t unattributed = 0;
            oracle->partition().tally_cells(std::span(addresses), counts,
                                            attributed, unattributed);
            bool ok = tally.attributed == attributed &&
                      tally.unattributed == unattributed;
            if (ok) {
              std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
              for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
                if (counts[cell] != 0) pairs.emplace_back(cell, counts[cell]);
              }
              ok = tally.cells == pairs;
            }
            if (!ok) {
              std::fprintf(stderr, "TALLY MISMATCH (conn %zu)\n", c);
              failures.fetch_add(1);
              break;
            }
            total_addresses.fetch_add(addresses.size(),
                                      std::memory_order_relaxed);
          } else {
            // v4 locate batch.
            for (auto& addr : addresses) {
              addr = static_cast<std::uint32_t>(rng());
            }
            const auto [header, cells] = client.locate(addresses);
            const state::StateImage* oracle = v4_oracle(header.fingerprint);
            if (oracle == nullptr) {
              failures.fetch_add(1);
              break;
            }
            std::vector<std::uint32_t> want(addresses.size());
            oracle->partition().locate_many(addresses, want);
            if (cells != want) {
              std::fprintf(stderr, "LOCATE MISMATCH (conn %zu)\n", c);
              failures.fetch_add(1);
              break;
            }
            total_addresses.fetch_add(addresses.size(),
                                      std::memory_order_relaxed);
          }
          local_us.push_back(us_since(start));
          total_requests.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard lock(latency_mutex);
        latencies_us.insert(latencies_us.end(), local_us.begin(),
                            local_us.end());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %zu: %s\n", c, e.what());
        failures.fetch_add(1);
      }
    });
  }

  // Generation swaps racing the load: client-observed latency from the
  // reload request to the first response served by the new generation.
  std::vector<double> swap_us;
  {
    serve::Client control("127.0.0.1", server.port());
    for (std::size_t swap = 0; swap < swap_count && failures.load() == 0;
         ++swap) {
      const std::string& next = (swap % 2 == 0) ? path_b : path_a;
      const std::uint64_t want_fp = (swap % 2 == 0) ? fp_b : fp_a;
      const auto start = Clock::now();
      control.reload(net::AddressFamily::kIpv4, next);
      for (;;) {
        const auto [header, info] = control.info(net::AddressFamily::kIpv4);
        if (header.fingerprint == want_fp) break;
        if (us_since(start) > 60e6) {
          std::fprintf(stderr, "swap %zu did not land in 60 s\n", swap);
          failures.fetch_add(1);
          break;
        }
      }
      swap_us.push_back(us_since(start));
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  const double load_seconds = us_since(load_start) / 1e6;

  server.stop();
  serving.join();
  const auto stats = server.stats();

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::remove(path_6.c_str());

  if (failures.load() != 0) {
    std::fprintf(stderr, "FAILED: %d cross-check failures\n",
                 failures.load());
    return 1;
  }

  const double qps =
      load_seconds > 0.0
          ? static_cast<double>(total_requests.load()) / load_seconds
          : 0.0;
  const double qps_per_core = qps / static_cast<double>(threads);
  const double p50_us = percentile(latencies_us, 0.50);
  const double p99_us = percentile(latencies_us, 0.99);
  const double swap_p50_us = percentile(swap_us, 0.50);
  const double swap_p99_us = percentile(swap_us, 0.99);

  std::fprintf(stderr,
               "# %zu conns x >= %zu reqs (batch %zu) over %u shards: "
               "%.0f q/s (%.0f q/s/core), p50 %.0f us, p99 %.0f us; %zu "
               "swaps p99 %.0f us (install %" PRIu64 " us, drain %" PRIu64
               " us); %" PRIu64 " addresses batched\n",
               connections, min_requests, batch, threads, qps, qps_per_core,
               p50_us, p99_us, swap_us.size(), swap_p99_us,
               stats.last_swap_install_us, stats.last_swap_drain_us,
               total_addresses.load());

  std::printf(
      "{\"bench\":\"micro_serve\",\"prefixes\":%zu,\"prefixes6\":%zu,"
      "\"connections\":%zu,\"requests\":%" PRIu64 ",\"batch\":%zu,"
      "\"threads\":%u,\"seed\":%" PRIu64 ",\"swaps\":%zu,"
      "\"batched_addresses\":%" PRIu64 ",\"qps\":%.1f,"
      "\"qps_per_core\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"swap_p50_us\":%.1f,\"swap_p99_us\":%.1f,"
      "\"last_swap_install_us\":%" PRIu64 ",\"last_swap_drain_us\":%" PRIu64
      "}\n",
      prefix_count, prefix6_count, connections, total_requests.load(),
      batch, threads, seed, swap_us.size(), total_addresses.load(), qps,
      qps_per_core, p50_us, p99_us, swap_p50_us, swap_p99_us,
      stats.last_swap_install_us, stats.last_swap_drain_us);
  return 0;
}
