// Reproduces the headline claims of sections 1 and 4:
//
//   * "TASS enables researchers to collect responses from 90-99% of the
//     available hosts for six months by scanning only 10-75% of the
//     announced IPv4 address space in each scan cycle";
//   * "periodical TASS scans are 1.25 to 10 times more efficient ... if
//     researchers accept a single-digit percentage reduction in host
//     coverage";
//   * FTP: 98% of hosts after 6 months at 57.4% of the space (phi=1, m);
//     92.3% at 20.6% (phi=0.95, m).
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "report/table.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf("# Headline: TASS efficiency vs full scans over %d months\n\n",
              config.months);

  report::Table table({"protocol", "strategy", "space/cycle",
                       "hitrate@last", "mean hitrate", "efficiency vs full",
                       "packets saved"});

  for (const census::Protocol protocol : census::paper_protocols()) {
    const auto series = bench::make_series(topology, protocol, config);
    const auto& seed = series.month(0);

    std::vector<std::pair<std::string, core::StrategyEvaluation>> rows;
    rows.emplace_back("full-scan",
                      core::evaluate(core::FullScanStrategy(seed), series));
    rows.emplace_back("hitlist",
                      core::evaluate(core::HitlistStrategy(seed), series));
    for (const core::PrefixMode mode :
         {core::PrefixMode::kLess, core::PrefixMode::kMore}) {
      for (const double phi : {1.0, 0.99, 0.95}) {
        core::SelectionParams params;
        params.phi = phi;
        const core::TassStrategy strategy(seed, mode, params);
        rows.emplace_back(strategy.name(), core::evaluate(strategy, series));
      }
    }

    const double full_packets =
        static_cast<double>(rows.front().second.cycles.size()) *
        static_cast<double>(rows.front().second.advertised_addresses);
    for (const auto& [name, evaluation] : rows) {
      double packets = 0;
      for (const auto& cycle : evaluation.cycles) {
        packets += static_cast<double>(cycle.scanned_addresses);
      }
      table.add_row(
          {std::string(census::protocol_name(protocol)), name,
           report::Table::cell(evaluation.space_fraction(), 3),
           report::Table::cell(evaluation.cycles.back().hitrate(), 3),
           report::Table::cell(evaluation.mean_hitrate(), 3),
           report::Table::cell(evaluation.efficiency_vs_full(), 2),
           report::Table::cell(1.0 - packets / full_packets, 3)});
    }
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}
