// Reproduces Figure 1: "Current scanning strategies and their scoping of
// the IPv4 address space" — the address counts of each scoping level
// (/0 ~4.3B, IANA allocated ~3.7B, BGP announced ~2.8B, hitlists and
// samples 1-20M), plus the intro's packet arithmetic: probing the
// allocated space for 19 protocols weekly generates ~72 billion packets.
#include <cstdio>

#include "bench_common.hpp"
#include "census/population.hpp"
#include "net/special_use.hpp"
#include "report/table.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf("# Figure 1: scanning strategies and their scoping\n\n");

  const std::uint64_t full_space = net::kIpv4SpaceSize;
  const std::uint64_t scannable = net::scannable_space().address_count();
  const std::uint64_t announced = topology->advertised_addresses;

  // Hitlist sizes: responsive hosts per protocol at t0 (1-20M at paper
  // scale; we report both simulated and rescaled-to-paper counts).
  report::Table table({"scoping level", "addresses", "fraction of /0"});
  const auto add = [&](std::string name, std::uint64_t addresses) {
    table.add_row({std::move(name), report::Table::cell(addresses),
                   report::Table::cell(static_cast<double>(addresses) /
                                           static_cast<double>(full_space),
                                       4)});
  };
  add("IANA /0 (all addresses)", full_space);
  add("IANA allocated/scannable unicast", scannable);
  add("announced in BGP (synthetic table)", announced);

  for (const census::Protocol protocol : census::paper_protocols()) {
    const auto series = bench::make_series(topology, protocol, config);
    const std::uint64_t hosts = series.month(0).total_hosts();
    const auto paper_scale = static_cast<std::uint64_t>(
        static_cast<double>(hosts) / config.host_scale);
    add(std::string("hitlist: responsive ") +
            std::string(census::protocol_name(protocol)) + " hosts (~" +
            report::Table::cell(paper_scale) + " at paper scale)",
        hosts);
  }
  std::printf("%s\n", table.to_text().c_str());

  // The intro's traffic estimate: censys probes the allocated space for 19
  // protocols continuously; at one cycle per protocol-week that is
  // allocated * 19 SYN packets plus handshakes -- the paper cites 72.2
  // billion IP packets per week.
  const double weekly =
      static_cast<double>(scannable) * 19.0;
  std::printf(
      "weekly probe packets for 19 protocols over the allocated space: "
      "%.1fB (paper: 72.2B including handshake overhead)\n",
      weekly / 1e9);
  return 0;
}
