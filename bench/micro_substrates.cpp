// Micro-benchmarks for the substrate hot paths (google-benchmark):
// trie longest-prefix match (legacy bitwise trie vs the flat LpmIndex,
// build and lookup), deaggregation, the ZMap permutation step,
// interval-set algebra, density ranking and selection, snapshot
// membership and the bitmap index behind the batched oracle — the
// operations every TASS scan cycle is built from.
//
// For machine-readable output (BENCH tracking), run with
//   micro_substrates --benchmark_format=json
// or see bench/micro_lpm.cpp for the standalone full-RIB-scale LPM
// comparison that always emits JSON.
#include <benchmark/benchmark.h>

#include "bgp/deaggregate.hpp"
#include "census/population.hpp"
#include "census/snapshot_index.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "core/selection.hpp"
#include "net/interval.hpp"
#include "scan/target_iterator.hpp"
#include "trie/lpm_index.hpp"
#include "trie/prefix_set.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tass;

std::shared_ptr<const census::Topology> shared_topology() {
  static const auto topology = [] {
    census::TopologyParams params;
    params.seed = 2016;
    params.l_prefix_count = 2000;
    return census::generate_topology(params);
  }();
  return topology;
}

const census::Snapshot& shared_snapshot() {
  static const census::Snapshot snapshot = [] {
    census::PopulationParams params;
    params.host_scale = 0.005;
    return census::generate_population(
        shared_topology(),
        census::protocol_profile(census::Protocol::kHttp), params);
  }();
  return snapshot;
}

void BM_TrieInsert(benchmark::State& state) {
  const auto topology = shared_topology();
  const auto prefixes = topology->m_partition.prefixes();
  for (auto _ : state) {
    trie::PrefixSet set;
    for (const net::Prefix prefix : prefixes) set.insert(prefix);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(prefixes.size()));
}
BENCHMARK(BM_TrieInsert);

void BM_TrieLongestMatch(benchmark::State& state) {
  const auto topology = shared_topology();
  trie::PrefixSet set(topology->m_partition.prefixes());
  util::Rng rng(1);
  for (auto _ : state) {
    const net::Ipv4Address addr(
        static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
    benchmark::DoNotOptimize(set.longest_match(addr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TrieLongestMatch);

void BM_LpmIndexBuild(benchmark::State& state) {
  const auto topology = shared_topology();
  const auto prefixes = topology->m_partition.prefixes();
  for (auto _ : state) {
    const trie::LpmIndex index = trie::LpmIndex::from_prefixes(prefixes);
    benchmark::DoNotOptimize(index.prefix_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(prefixes.size()));
}
BENCHMARK(BM_LpmIndexBuild);

const trie::LpmIndex& shared_lpm_index() {
  static const trie::LpmIndex index = trie::LpmIndex::from_prefixes(
      shared_topology()->m_partition.prefixes());
  return index;
}

void BM_LpmIndexLookup(benchmark::State& state) {
  // Same table and address stream as BM_TrieLongestMatch: the direct
  // legacy-vs-flat comparison.
  const auto& index = shared_lpm_index();
  util::Rng rng(1);
  for (auto _ : state) {
    const net::Ipv4Address addr(
        static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
    benchmark::DoNotOptimize(index.lookup(addr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LpmIndexLookup);

void BM_LpmIndexLookupMany(benchmark::State& state) {
  // The per-shard batched path of the scan pipeline.
  const auto& index = shared_lpm_index();
  util::Rng rng(1);
  std::vector<std::uint32_t> addresses(4096);
  for (auto& a : addresses) {
    a = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
  }
  std::vector<std::uint32_t> out(addresses.size());
  for (auto _ : state) {
    index.lookup_many(addresses, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(addresses.size()));
}
BENCHMARK(BM_LpmIndexLookupMany);

void BM_PartitionLocate(benchmark::State& state) {
  const auto topology = shared_topology();
  util::Rng rng(2);
  for (auto _ : state) {
    const net::Ipv4Address addr(
        static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
    benchmark::DoNotOptimize(topology->m_partition.locate(addr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionLocate);

void BM_Deaggregate(benchmark::State& state) {
  const net::Prefix covering = net::Prefix::parse_or_throw("10.0.0.0/8");
  util::Rng rng(3);
  std::vector<net::Prefix> inside;
  for (int i = 0; i < 32; ++i) {
    const int len = 10 + static_cast<int>(rng.bounded(12));
    const std::uint32_t offset = static_cast<std::uint32_t>(
        rng.bounded(1ULL << (len - 8)) << (32 - len));
    inside.emplace_back(
        net::Ipv4Address(covering.network().value() | offset), len);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::deaggregate(covering, inside));
  }
}
BENCHMARK(BM_Deaggregate);

void BM_PermutationNext(benchmark::State& state) {
  scan::TargetIterator iterator(42);
  for (auto _ : state) {
    auto addr = iterator.next();
    benchmark::DoNotOptimize(addr);
    if (!addr) state.SkipWithError("permutation exhausted");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PermutationNext);

void BM_IntervalSetInsert(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<net::Interval> intervals;
  for (int i = 0; i < 4096; ++i) {
    const auto lo =
        static_cast<std::uint32_t>(rng.bounded((1ULL << 32) - 4096));
    intervals.push_back({net::Ipv4Address(lo),
                         net::Ipv4Address(lo + static_cast<std::uint32_t>(
                                                   rng.bounded(4096)))});
  }
  for (auto _ : state) {
    net::IntervalSet set;
    for (const net::Interval& interval : intervals) set.insert(interval);
    benchmark::DoNotOptimize(set.address_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(intervals.size()));
}
BENCHMARK(BM_IntervalSetInsert);

void BM_RankByDensity(benchmark::State& state) {
  const auto& snapshot = shared_snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::rank_by_density(snapshot, core::PrefixMode::kMore));
  }
}
BENCHMARK(BM_RankByDensity);

void BM_SelectByDensity(benchmark::State& state) {
  const auto ranking =
      core::rank_by_density(shared_snapshot(), core::PrefixMode::kMore);
  core::SelectionParams params;
  params.phi = 0.95;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_by_density(ranking, params));
  }
}
BENCHMARK(BM_SelectByDensity);

void BM_SnapshotContains(benchmark::State& state) {
  const auto& snapshot = shared_snapshot();
  util::Rng rng(5);
  for (auto _ : state) {
    const net::Ipv4Address addr(
        static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
    benchmark::DoNotOptimize(snapshot.contains(addr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotContains);

const census::SnapshotIndex& shared_index() {
  static const census::SnapshotIndex index(shared_snapshot());
  return index;
}

void BM_SnapshotIndexContains(benchmark::State& state) {
  const auto& index = shared_index();
  util::Rng rng(6);
  for (auto _ : state) {
    const net::Ipv4Address addr(
        static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
    benchmark::DoNotOptimize(index.contains(addr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotIndexContains);

void BM_SnapshotIndexCountPerCell(benchmark::State& state) {
  // The batched oracle question the enumerate path asks: hosts per
  // m-cell, answered by masked popcount word scans.
  const auto topology = shared_topology();
  const auto& index = shared_index();
  std::uint64_t addresses = 0;
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (std::uint32_t cell = 0; cell < topology->m_partition.size();
         ++cell) {
      const net::Interval interval =
          net::Interval::of(topology->m_partition.prefix(cell));
      total += index.count_responsive(interval);
      addresses += interval.size();
    }
    benchmark::DoNotOptimize(total);
  }
  // Throughput in addresses covered, comparable to per-address probing.
  state.SetItemsProcessed(static_cast<std::int64_t>(addresses));
}
BENCHMARK(BM_SnapshotIndexCountPerCell);

void BM_ThreadPoolForEachShard(benchmark::State& state) {
  // Dispatch overhead of one parallel region (empty shards).
  util::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    pool.for_each_shard(64, [](std::size_t shard) {
      benchmark::DoNotOptimize(shard);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64);
}
BENCHMARK(BM_ThreadPoolForEachShard)->Arg(1)->Arg(4);

}  // namespace
