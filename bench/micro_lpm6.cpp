// IPv6 LPM substrate micro-benchmark: trie::LpmIndex6 on a v6-RIB-shaped
// synthetic table, cross-checked against a naive longest-match oracle on
// EVERY lookup.
//
// Plain executable (no google-benchmark dependency) so it always builds
// and can double as a ctest smoke test. Prints one machine-readable JSON
// object on stdout for BENCH tracking; human-readable notes go to stderr.
// Exits non-zero if the index and the oracle ever disagree — the
// benchmark is also a full correctness check.
//
// The oracle is an independent algorithm, not a second trie: a hash map
// of the table keyed by (masked network, length), probed from the
// longest announced length downwards; the first hit is the longest
// match. Every timed address — the random stream and every prefix
// boundary +/- 1 (including the 64-bit hi/lo half edges) — is resolved
// by both and compared.
//
// Usage: micro_lpm6 [--prefixes N] [--lookups M] [--seed S]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/family.hpp"
#include "net/ipv6.hpp"
#include "trie/lpm_index6.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;
using Entry = trie::LpmIndex6::Entry;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// v6-RIB-shaped prefix table: /48 dominates real v6 tables, /32 and the
// /36-/44 allocation ladder carry most of the rest, a few short covers
// (/20../29) and a thin tail of long more-specifics up to /64.
std::vector<Entry> synthesize_table(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Entry> table;
  table.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.04) {
      length = 20 + static_cast<int>(rng.bounded(10));
    } else if (roll < 0.20) {
      length = 32;
    } else if (roll < 0.45) {
      length = 36 + static_cast<int>(rng.bounded(9));
    } else if (roll < 0.93) {
      length = 48;
    } else {
      length = 49 + static_cast<int>(rng.bounded(16));
    }
    // Keep networks inside 2000::/3 (the global unicast space real
    // tables announce) so nesting actually happens.
    const std::uint64_t hi =
        0x2000000000000000ULL | (rng() >> 3);
    const net::Ipv6Address network(hi, rng());
    table.push_back({net::Ipv6Prefix(network, length),
                     static_cast<std::uint32_t>(i & 0xffffff)});
  }
  return table;
}

// Naive oracle: exact-match maps per announced length, probed longest
// first. Independent of the trie machinery by construction.
struct PrefixKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  int length = 0;
  friend bool operator==(const PrefixKey&, const PrefixKey&) = default;
};

struct PrefixKeyHash {
  std::size_t operator()(const PrefixKey& key) const noexcept {
    return static_cast<std::size_t>(util::mix64(
        util::mix64(key.hi, key.lo), static_cast<std::uint64_t>(key.length)));
  }
};

class NaiveOracle {
 public:
  explicit NaiveOracle(const std::vector<Entry>& table) {
    std::vector<std::uint8_t> seen(129, 0);
    for (const Entry& entry : table) {
      // Same last-wins duplicate rule as the index.
      map_[key_of(entry.prefix)] = entry.value;
      seen[static_cast<std::size_t>(entry.prefix.length())] = 1;
    }
    for (int length = 128; length >= 0; --length) {
      if (seen[static_cast<std::size_t>(length)]) {
        lengths_.push_back(length);
      }
    }
  }

  std::uint32_t lookup(net::Ipv6Address addr) const {
    for (const int length : lengths_) {
      const net::Ipv6Prefix masked(addr, length);
      const auto it = map_.find(key_of(masked));
      if (it != map_.end()) return it->second;
    }
    return trie::LpmIndex6::kNoMatch;
  }

 private:
  static PrefixKey key_of(net::Ipv6Prefix prefix) {
    return {prefix.network().hi(), prefix.network().lo(), prefix.length()};
  }

  std::unordered_map<PrefixKey, std::uint32_t, PrefixKeyHash> map_;
  std::vector<int> lengths_;  // announced lengths, longest first
};

std::uint64_t to_u64(double value) {
  return static_cast<std::uint64_t>(value);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 200'000;
  std::size_t lookup_count = 1'000'000;
  std::uint64_t seed = 2016;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--lookups") == 0) {
      lookup_count = value;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_lpm6 [--prefixes N] "
                   "[--lookups M] [--seed S]\n",
                   argv[i]);
      return 2;
    }
  }
  if (prefix_count == 0) prefix_count = 1;
  if (lookup_count == 0) lookup_count = 1;

  const auto table = synthesize_table(prefix_count, seed);

  auto start = std::chrono::steady_clock::now();
  const trie::LpmIndex6 index(table);
  const double build_ms = ms_since(start);

  start = std::chrono::steady_clock::now();
  const NaiveOracle oracle(table);
  const double oracle_build_ms = ms_since(start);

  // The address stream: half targeted (a random host inside a random
  // table prefix, so deep matches are exercised), half random inside
  // 2000::/3, plus every prefix boundary +/- 1 — which crosses the
  // 64-bit hi/lo half edge whenever a prefix ends on it.
  util::Rng rng(util::mix64(seed, 0xADD2E55ULL));
  std::vector<net::Ipv6Address> addresses;
  addresses.reserve(lookup_count + 4 * table.size());
  for (std::size_t i = 0; i < lookup_count; ++i) {
    if ((i & 1) == 0) {
      // Targeted: random host bits under a random table prefix.
      const net::Ipv6Prefix prefix =
          table[rng.bounded(table.size())].prefix;
      const net::Ipv6Address random(rng(), rng());
      const int len = prefix.length();
      std::uint64_t hi;
      std::uint64_t lo;
      if (len <= 64) {
        const std::uint64_t host_mask = len == 64 ? 0 : ~0ULL >> len;
        hi = prefix.network().hi() | (random.hi() & host_mask);
        lo = random.lo();
      } else {
        hi = prefix.network().hi();
        const std::uint64_t host_mask =
            len == 128 ? 0 : ~0ULL >> (len - 64);
        lo = prefix.network().lo() | (random.lo() & host_mask);
      }
      addresses.emplace_back(hi, lo);
    } else {
      addresses.emplace_back(0x2000000000000000ULL | (rng() >> 3), rng());
    }
  }
  const std::size_t timed_count = addresses.size();
  for (const Entry& entry : table) {
    const net::Ipv6Address first = entry.prefix.first();
    const net::Ipv6Address last = entry.prefix.last();
    addresses.push_back(first);
    addresses.push_back(last);
    if (first.lo() != 0 || first.hi() != 0) {
      const std::uint64_t borrow = first.lo() == 0 ? 1 : 0;
      addresses.emplace_back(first.hi() - borrow, first.lo() - 1);
    }
    if (last.lo() != ~0ULL || last.hi() != ~0ULL) {
      const std::uint64_t carry = last.lo() == ~0ULL ? 1 : 0;
      addresses.emplace_back(last.hi() + carry, last.lo() + 1);
    }
  }

  // Full differential sweep: EVERY address through the index (scalar and
  // batched) and the oracle. Any disagreement is a hard failure.
  std::vector<std::uint32_t> batched(addresses.size());
  index.lookup_many(addresses, batched);
  std::size_t verified = 0;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    const std::uint32_t want = oracle.lookup(addresses[i]);
    const std::uint32_t got = index.lookup(addresses[i]);
    if (got != want || batched[i] != want) {
      std::fprintf(stderr,
                   "MISMATCH at %s: index=%u batched=%u oracle=%u\n",
                   addresses[i].to_string().c_str(), got, batched[i], want);
      return 1;
    }
    ++verified;
  }

  // Timed runs on the random stream only (the boundary probes above are
  // correctness inputs, not a representative workload).
  const std::span<const net::Ipv6Address> timed(addresses.data(),
                                                timed_count);
  std::uint64_t sink = 0;
  start = std::chrono::steady_clock::now();
  for (const net::Ipv6Address addr : timed) {
    const std::uint32_t value = index.lookup(addr);
    sink += value != trie::LpmIndex6::kNoMatch ? value : 0;
  }
  const double lookup_ms = ms_since(start);

  start = std::chrono::steady_clock::now();
  index.lookup_many(timed, std::span(batched).first(timed_count));
  const double batch_ms = ms_since(start);
  sink += batched[timed_count - 1];

  const double n = static_cast<double>(timed_count);
  const double rate = n / (lookup_ms / 1e3);
  const double batch_rate = n / (batch_ms / 1e3);

  std::fprintf(stderr,
               "# %zu v6 prefixes, %zu timed lookups, %zu verified "
               "against the oracle (sink=%" PRIu64 ")\n"
               "# LpmIndex6 : build %.1f ms, %.2f M lookups/s (batched "
               "%.2f M/s), %.1f MiB\n"
               "# oracle    : build %.1f ms (hash maps per length)\n",
               prefix_count, timed_count, verified, sink, build_ms,
               rate / 1e6, batch_rate / 1e6,
               static_cast<double>(index.memory_bytes()) / (1024 * 1024),
               oracle_build_ms);

  // Machine-readable record for BENCH tracking (one JSON object).
  std::printf(
      "{\"bench\":\"micro_lpm6\",\"prefixes\":%zu,\"lookups\":%zu,"
      "\"seed\":%" PRIu64 ",\"verified_lookups\":%zu,"
      "\"lpm6_build_ms\":%.3f,\"lpm6_lookups_per_sec\":%" PRIu64 ","
      "\"lpm6_batch_lookups_per_sec\":%" PRIu64 ","
      "\"lpm6_memory_bytes\":%zu,\"lpm6_nodes\":%zu,\"lpm6_leaves\":%zu}\n",
      prefix_count, timed_count, seed, verified, build_ms, to_u64(rate),
      to_u64(batch_rate), index.memory_bytes(), index.node_count(),
      index.leaf_count());
  return 0;
}
