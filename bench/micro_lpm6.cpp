// IPv6 LPM substrate micro-benchmark: trie::LpmIndex6 on a v6-RIB-shaped
// synthetic table, cross-checked against a naive longest-match oracle on
// EVERY lookup.
//
// Plain executable (no google-benchmark dependency) so it always builds
// and can double as a ctest smoke test. Prints one machine-readable JSON
// object on stdout for BENCH tracking; human-readable notes go to stderr.
// Exits non-zero if the index and the oracle ever disagree — the
// benchmark is also a full correctness check.
//
// The oracle is an independent algorithm, not a second trie: a hash map
// of the table keyed by (masked network, length), probed from the
// longest announced length downwards; the first hit is the longest
// match. Every timed address — the random stream and every prefix
// boundary +/- 1 (including the 64-bit hi/lo half edges) — is resolved
// by both and compared.
//
// Usage: micro_lpm6 [--prefixes N] [--lookups M] [--seed S]
//                   [--kernel auto|scalar|simd]
//
// --kernel mirrors micro_lpm's flag. The v6 "simd"-tier kernel is the
// portable pipelined multi-stream walk (memory-level parallelism, no
// vector ISA requirement), so unlike the v4 bench it never skips; the
// flag still pins which kernel table the timed batch uses, and the
// pipelined leg is verified word-for-word against the scalar kernel on
// every timed iteration (and against the oracle in the full sweep).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/family.hpp"
#include "net/ipv6.hpp"
#include "trie/lpm_index6.hpp"
#include "trie/lpm_kernels.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;
using Entry = trie::LpmIndex6::Entry;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// v6-RIB-shaped prefix table: /48 dominates real v6 tables, /32 and the
// /36-/44 allocation ladder carry most of the rest, a few short covers
// (/20../29) and a thin tail of long more-specifics up to /64.
std::vector<Entry> synthesize_table(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Entry> table;
  table.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.04) {
      length = 20 + static_cast<int>(rng.bounded(10));
    } else if (roll < 0.20) {
      length = 32;
    } else if (roll < 0.45) {
      length = 36 + static_cast<int>(rng.bounded(9));
    } else if (roll < 0.93) {
      length = 48;
    } else {
      length = 49 + static_cast<int>(rng.bounded(16));
    }
    // Keep networks inside 2000::/3 (the global unicast space real
    // tables announce) so nesting actually happens.
    const std::uint64_t hi =
        0x2000000000000000ULL | (rng() >> 3);
    const net::Ipv6Address network(hi, rng());
    table.push_back({net::Ipv6Prefix(network, length),
                     static_cast<std::uint32_t>(i & 0xffffff)});
  }
  return table;
}

// Naive oracle: exact-match maps per announced length, probed longest
// first. Independent of the trie machinery by construction.
struct PrefixKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  int length = 0;
  friend bool operator==(const PrefixKey&, const PrefixKey&) = default;
};

struct PrefixKeyHash {
  std::size_t operator()(const PrefixKey& key) const noexcept {
    return static_cast<std::size_t>(util::mix64(
        util::mix64(key.hi, key.lo), static_cast<std::uint64_t>(key.length)));
  }
};

class NaiveOracle {
 public:
  explicit NaiveOracle(const std::vector<Entry>& table) {
    std::vector<std::uint8_t> seen(129, 0);
    for (const Entry& entry : table) {
      // Same last-wins duplicate rule as the index.
      map_[key_of(entry.prefix)] = entry.value;
      seen[static_cast<std::size_t>(entry.prefix.length())] = 1;
    }
    for (int length = 128; length >= 0; --length) {
      if (seen[static_cast<std::size_t>(length)]) {
        lengths_.push_back(length);
      }
    }
  }

  std::uint32_t lookup(net::Ipv6Address addr) const {
    for (const int length : lengths_) {
      const net::Ipv6Prefix masked(addr, length);
      const auto it = map_.find(key_of(masked));
      if (it != map_.end()) return it->second;
    }
    return trie::LpmIndex6::kNoMatch;
  }

 private:
  static PrefixKey key_of(net::Ipv6Prefix prefix) {
    return {prefix.network().hi(), prefix.network().lo(), prefix.length()};
  }

  std::unordered_map<PrefixKey, std::uint32_t, PrefixKeyHash> map_;
  std::vector<int> lengths_;  // announced lengths, longest first
};

std::uint64_t to_u64(double value) {
  return static_cast<std::uint64_t>(value);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 200'000;
  std::size_t lookup_count = 1'000'000;
  std::uint64_t seed = 2016;
  std::string kernel_choice = "auto";
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    if (std::strcmp(argv[i], "--kernel") == 0) {
      kernel_choice = argv[i + 1];
      if (kernel_choice != "auto" && kernel_choice != "scalar" &&
          kernel_choice != "simd") {
        std::fprintf(stderr, "--kernel must be auto|scalar|simd, got '%s'\n",
                     argv[i + 1]);
        return 2;
      }
      continue;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--lookups") == 0) {
      lookup_count = value;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_lpm6 [--prefixes N] "
                   "[--lookups M] [--seed S] "
                   "[--kernel auto|scalar|simd]\n",
                   argv[i]);
      return 2;
    }
  }
  if (prefix_count == 0) prefix_count = 1;
  if (lookup_count == 0) lookup_count = 1;

  const auto table = synthesize_table(prefix_count, seed);

  auto start = std::chrono::steady_clock::now();
  const trie::LpmIndex6 index(table);
  const double build_ms = ms_since(start);

  start = std::chrono::steady_clock::now();
  const NaiveOracle oracle(table);
  const double oracle_build_ms = ms_since(start);

  // The address stream: half targeted (a random host inside a random
  // table prefix, so deep matches are exercised), half random inside
  // 2000::/3, plus every prefix boundary +/- 1 — which crosses the
  // 64-bit hi/lo half edge whenever a prefix ends on it.
  util::Rng rng(util::mix64(seed, 0xADD2E55ULL));
  std::vector<net::Ipv6Address> addresses;
  addresses.reserve(lookup_count + 4 * table.size());
  for (std::size_t i = 0; i < lookup_count; ++i) {
    if ((i & 1) == 0) {
      // Targeted: random host bits under a random table prefix.
      const net::Ipv6Prefix prefix =
          table[rng.bounded(table.size())].prefix;
      const net::Ipv6Address random(rng(), rng());
      const int len = prefix.length();
      std::uint64_t hi;
      std::uint64_t lo;
      if (len <= 64) {
        const std::uint64_t host_mask = len == 64 ? 0 : ~0ULL >> len;
        hi = prefix.network().hi() | (random.hi() & host_mask);
        lo = random.lo();
      } else {
        hi = prefix.network().hi();
        const std::uint64_t host_mask =
            len == 128 ? 0 : ~0ULL >> (len - 64);
        lo = prefix.network().lo() | (random.lo() & host_mask);
      }
      addresses.emplace_back(hi, lo);
    } else {
      addresses.emplace_back(0x2000000000000000ULL | (rng() >> 3), rng());
    }
  }
  const std::size_t timed_count = addresses.size();
  for (const Entry& entry : table) {
    const net::Ipv6Address first = entry.prefix.first();
    const net::Ipv6Address last = entry.prefix.last();
    addresses.push_back(first);
    addresses.push_back(last);
    if (first.lo() != 0 || first.hi() != 0) {
      const std::uint64_t borrow = first.lo() == 0 ? 1 : 0;
      addresses.emplace_back(first.hi() - borrow, first.lo() - 1);
    }
    if (last.lo() != ~0ULL || last.hi() != ~0ULL) {
      const std::uint64_t carry = last.lo() == ~0ULL ? 1 : 0;
      addresses.emplace_back(last.hi() + carry, last.lo() + 1);
    }
  }

  // Full differential sweep: EVERY address through the index (scalar
  // lookup, the scalar batch kernel, and the pipelined kernel) and the
  // oracle. Any disagreement is a hard failure.
  std::vector<std::uint32_t> batched(addresses.size());
  std::vector<std::uint32_t> pipelined(addresses.size());
  index.lookup_many(addresses, batched, util::cpu::SimdLevel::kScalar);
  index.lookup_many(addresses, pipelined, util::cpu::SimdLevel::kAvx2);
  std::size_t verified = 0;
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    const std::uint32_t want = oracle.lookup(addresses[i]);
    const std::uint32_t got = index.lookup(addresses[i]);
    if (got != want || batched[i] != want || pipelined[i] != want) {
      std::fprintf(stderr,
                   "MISMATCH at %s: index=%u batched=%u pipelined=%u "
                   "oracle=%u\n",
                   addresses[i].to_string().c_str(), got, batched[i],
                   pipelined[i], want);
      return 1;
    }
    ++verified;
  }

  // Timed runs on the random stream only (the boundary probes above are
  // correctness inputs, not a representative workload).
  const std::span<const net::Ipv6Address> timed(addresses.data(),
                                                timed_count);
  std::uint64_t sink = 0;
  start = std::chrono::steady_clock::now();
  for (const net::Ipv6Address addr : timed) {
    const std::uint32_t value = index.lookup(addr);
    sink += value != trie::LpmIndex6::kNoMatch ? value : 0;
  }
  const double lookup_ms = ms_since(start);

  // Batched runs: best of kBatchIters per kernel table. `simd` here is
  // the pipelined multi-stream walk — portable, so it never skips; its
  // output is re-checked against the scalar kernel's every iteration.
  const auto& simd_table = trie::lpm_kernel_table<net::Ipv6Family>(
      util::cpu::SimdLevel::kAvx2);
  const bool run_simd =
      kernel_choice == "simd" ||
      (kernel_choice == "auto" && !util::cpu::probe().forced_scalar);

  constexpr int kBatchIters = 5;
  const std::span<std::uint32_t> timed_out =
      std::span(batched).first(timed_count);
  double batch_ms = 0;
  for (int iter = 0; iter < kBatchIters; ++iter) {
    start = std::chrono::steady_clock::now();
    index.lookup_many(timed, timed_out, util::cpu::SimdLevel::kScalar);
    const double elapsed = ms_since(start);
    if (iter == 0 || elapsed < batch_ms) batch_ms = elapsed;
  }
  sink += batched[timed_count - 1];

  double simd_ms = 0;
  if (run_simd) {
    const std::span<std::uint32_t> simd_out =
        std::span(pipelined).first(timed_count);
    for (int iter = 0; iter < kBatchIters; ++iter) {
      start = std::chrono::steady_clock::now();
      index.lookup_many(timed, simd_out, util::cpu::SimdLevel::kAvx2);
      const double elapsed = ms_since(start);
      if (iter == 0 || elapsed < simd_ms) simd_ms = elapsed;
      for (std::size_t i = 0; i < timed_count; ++i) {
        if (simd_out[i] != timed_out[i]) {
          std::fprintf(stderr,
                       "KERNEL MISMATCH (iter %d) at %s: %s=%u scalar=%u\n",
                       iter, timed[i].to_string().c_str(), simd_table.name,
                       simd_out[i], timed_out[i]);
          return 1;
        }
      }
    }
    sink += pipelined[timed_count - 1];
  }

  const double n = static_cast<double>(timed_count);
  const double rate = n / (lookup_ms / 1e3);
  const double batch_rate = n / (batch_ms / 1e3);
  const double simd_rate = run_simd ? n / (simd_ms / 1e3) : 0;
  const double headline_batch_rate = run_simd ? simd_rate : batch_rate;

  std::fprintf(stderr,
               "# %zu v6 prefixes, %zu timed lookups, %zu verified "
               "against the oracle (sink=%" PRIu64 ")\n"
               "# LpmIndex6 : build %.1f ms, %.2f M lookups/s (batched "
               "%.2f M/s), %.1f MiB\n"
               "# oracle    : build %.1f ms (hash maps per length)\n",
               prefix_count, timed_count, verified, sink, build_ms,
               rate / 1e6, batch_rate / 1e6,
               static_cast<double>(index.memory_bytes()) / (1024 * 1024),
               oracle_build_ms);
  if (run_simd) {
    std::fprintf(stderr,
                 "# %s kernel : batched %.2f M lookups/s, %.2fx over the "
                 "scalar batch (bit-identical on %d iterations)\n",
                 simd_table.name, simd_rate / 1e6, simd_rate / batch_rate,
                 kBatchIters);
  }

  // Machine-readable record for BENCH tracking (one JSON object). The
  // simd keys appear only when the pipelined leg ran.
  std::printf(
      "{\"bench\":\"micro_lpm6\",\"prefixes\":%zu,\"lookups\":%zu,"
      "\"seed\":%" PRIu64 ",\"verified_lookups\":%zu,"
      "\"lpm6_build_ms\":%.3f,\"lpm6_lookups_per_sec\":%" PRIu64 ","
      "\"lpm6_batch_lookups_per_sec\":%" PRIu64 ","
      "\"lpm6_scalar_batch_lookups_per_sec\":%" PRIu64 ","
      "\"lpm6_memory_bytes\":%zu,\"lpm6_nodes\":%zu,\"lpm6_leaves\":%zu",
      prefix_count, timed_count, seed, verified, build_ms, to_u64(rate),
      to_u64(headline_batch_rate), to_u64(batch_rate), index.memory_bytes(),
      index.node_count(), index.leaf_count());
  if (run_simd) {
    std::printf(",\"lpm6_simd_lookups_per_sec\":%" PRIu64 ","
                "\"lpm6_simd_speedup\":%.2f,\"simd_kernel\":\"%s\"",
                to_u64(simd_rate), simd_rate / batch_rate, simd_table.name);
  }
  std::printf(",\"kernel\":\"%s\"}\n",
              run_simd ? simd_table.name : "scalar");
  return 0;
}
