// Micro-benchmarks for the sharded, batched scan pipeline (google-
// benchmark): the enumerate hot path at three stages of the refactor —
//
//   legacy    one virtual ProbeOracle::responds() per in-scope address
//             (partition locate + two binary searches each);
//   bitmap    the batched census::SnapshotIndex oracle on one thread
//             (masked std::popcount word scans per interval);
//   bitmap/N  the same, sharded over an N-thread util::ThreadPool.
//
// plus the parallel attribution and evaluation stages. Throughput is
// reported in probes (addresses) per second, so the speedup of any row
// over `legacy` is read off directly. The acceptance target is >= 4x for
// the batched path on an 8-core runner; the bitmap path alone typically
// clears that on a single core.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "census/population.hpp"
#include "census/series.hpp"
#include "census/snapshot_index.hpp"
#include "census/topology.hpp"
#include "core/attribution.hpp"
#include "core/evaluate.hpp"
#include "core/strategies.hpp"
#include "scan/engine.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tass;

std::shared_ptr<const census::Topology> shared_topology() {
  static const auto topology = [] {
    census::TopologyParams params;
    params.seed = 2016;
    params.l_prefix_count = 2000;
    return census::generate_topology(params);
  }();
  return topology;
}

const census::Snapshot& shared_snapshot() {
  static const census::Snapshot snapshot = [] {
    census::PopulationParams params;
    params.host_scale = 0.005;
    return census::generate_population(
        shared_topology(),
        census::protocol_profile(census::Protocol::kHttp), params);
  }();
  return snapshot;
}

// A scope of the first m-cells adding up to a few million addresses:
// large enough to dominate fixed costs, small enough that the legacy
// per-address row still finishes in sane time.
const scan::ScanScope& shared_scope() {
  static const scan::ScanScope scope = [] {
    const auto topology = shared_topology();
    std::vector<net::Prefix> cells;
    std::uint64_t addresses = 0;
    for (std::uint32_t cell = 0; cell < topology->m_partition.size() &&
                                 addresses < (1ULL << 23);
         ++cell) {
      const net::Prefix prefix = topology->m_partition.prefix(cell);
      cells.push_back(prefix);
      addresses += prefix.size();
    }
    return scan::ScanScope(cells, scan::Blocklist{});
  }();
  return scope;
}

// The pre-refactor oracle: membership via Snapshot::contains (partition
// locate + binary searches), no batched overrides — so the engine falls
// back to one virtual call per address.
class LegacySnapshotOracle final : public scan::ProbeOracle {
 public:
  explicit LegacySnapshotOracle(const census::Snapshot& snapshot)
      : snapshot_(&snapshot) {}
  bool responds(net::Ipv4Address addr) const override {
    return snapshot_->contains(addr);
  }

 private:
  const census::Snapshot* snapshot_;
};

void report_probes(benchmark::State& state, std::uint64_t probes_per_iter) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probes_per_iter));
}

void BM_EnumerateLegacyPerAddress(benchmark::State& state) {
  const auto& scope = shared_scope();
  const LegacySnapshotOracle oracle(shared_snapshot());
  scan::EngineConfig config;
  config.order = scan::EngineConfig::Order::kEnumerate;
  config.threads = 1;
  const scan::ScanEngine engine(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(scope, oracle));
  }
  report_probes(state, scope.address_count());
}
BENCHMARK(BM_EnumerateLegacyPerAddress)->Unit(benchmark::kMillisecond);

void BM_EnumerateBitmap(benchmark::State& state) {
  const auto& scope = shared_scope();
  const scan::SnapshotOracle oracle(shared_snapshot());
  scan::EngineConfig config;
  config.order = scan::EngineConfig::Order::kEnumerate;
  config.threads = static_cast<unsigned>(state.range(0));
  const scan::ScanEngine engine(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(scope, oracle));
  }
  report_probes(state, scope.address_count());
}
BENCHMARK(BM_EnumerateBitmap)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotIndexBuild(benchmark::State& state) {
  const auto& snapshot = shared_snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(census::SnapshotIndex(snapshot));
  }
  report_probes(state, snapshot.total_hosts());
}
BENCHMARK(BM_SnapshotIndexBuild)->Unit(benchmark::kMillisecond);

void BM_AttributeSharded(benchmark::State& state) {
  const auto topology = shared_topology();
  const auto addresses = shared_snapshot().addresses();
  core::AttributionConfig config;
  config.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::attribute(addresses, topology->m_partition, config));
  }
  report_probes(state, addresses.size());
}
BENCHMARK(BM_AttributeSharded)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EvaluateCycles(benchmark::State& state) {
  static const census::CensusSeries series = [] {
    census::SeriesParams params;
    params.months = 7;
    params.host_scale = 0.002;
    params.seed = 2017;
    return census::CensusSeries::generate(
        shared_topology(), census::Protocol::kHttp, params);
  }();
  core::SelectionParams selection;
  selection.phi = 0.95;
  const core::TassStrategy strategy(series.month(0),
                                    core::PrefixMode::kMore, selection);
  core::EvaluationConfig config;
  config.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate(strategy, series, config));
  }
}
BENCHMARK(BM_EvaluateCycles)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
