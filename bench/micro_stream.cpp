// Live-churn micro-benchmark: the stream reactor consuming an MRT
// update feed end to end — framing, per-prefix coalescing, incremental
// apply_delta + rerank, image sealing, and generation publication into a
// serve::GenerationStore with a concurrent reader verifying every swap.
//
// Two replays of the same synthetic churn trace:
//
//   * full-speed: the whole encoded wire is buffered up front and the
//     reactor drains it as fast as the pipeline allows — the sustained
//     ingest-to-plan throughput number (updates_per_sec_sustained).
//   * paced: a feeder thread appends one churn step every --pace-ms,
//     so the reactor keeps up and the per-update enqueue-to-publish
//     latency reflects the bounded-latency batching contract
//     (update_to_plan_p99_ms), not backlog depth.
//
// Both replays are cross-checked (not timed) against a batch-maintained
// shadow of the routing table: final table and origins, per-cell counts,
// 20k random locate() probes against a fresh partition of the expected
// live set, the published fingerprint, and a full attach of the last
// sealed image. Any divergence, dropped generation, decode error or
// overlap rejection exits non-zero, so the benchmark doubles as the
// streamed-vs-batch smoke gate.
//
// The churn mix is reorigins and deaggregation splits only (no
// flap-withdrawals): the queue's newest-wins folding legitimately
// collapses a withdraw+re-announce flap into a count-preserving
// reorigin, which would make the expected per-cell counts depend on
// batch boundaries. Reorigins and splits have fold-invariant outcomes,
// so the shadow stays exact for any batching.
//
// Usage: micro_stream [--prefixes N] [--steps K] [--churn C]
//                     [--pace-ms MS] [--seed S]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "bgp/rib_delta.hpp"
#include "census/topology.hpp"
#include "net/prefix.hpp"
#include "serve/generation.hpp"
#include "state/image.hpp"
#include "stream/reactor.hpp"
#include "stream/source.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Same RIB shape as micro_delta: disjoint buddy-allocated coverings,
// bulk in /17../24 with a few short covers.
std::vector<net::Prefix> synthesize_prefixes(std::size_t count,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<net::Prefix> space{
      net::Prefix::parse_or_throw("0.0.0.0/2"),
      net::Prefix::parse_or_throw("64.0.0.0/2"),
      net::Prefix::parse_or_throw("128.0.0.0/2"),
      net::Prefix::parse_or_throw("192.0.0.0/2"),
  };
  census::BuddyAllocator allocator(space);
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(count);
  while (prefixes.size() < count) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.02) {
      length = 12 + static_cast<int>(rng.bounded(4));
    } else if (roll < 0.40) {
      length = 16 + static_cast<int>(rng.bounded(5));
    } else {
      length = 21 + static_cast<int>(rng.bounded(4));
    }
    const auto prefix = allocator.allocate(length, rng);
    if (!prefix) {
      std::fprintf(stderr, "address space exhausted at %zu prefixes\n",
                   prefixes.size());
      break;
    }
    prefixes.push_back(*prefix);
  }
  std::sort(prefixes.begin(), prefixes.end());
  return prefixes;
}

std::uint32_t synthetic_count(net::Prefix prefix, std::uint64_t seed) {
  const std::uint64_t h = util::mix64(
      seed, (static_cast<std::uint64_t>(prefix.network().value()) << 6) |
                static_cast<std::uint64_t>(prefix.length()));
  if ((h & 7u) < 3u) return 0;
  return static_cast<std::uint32_t>(1 + (h >> 3) % 500);
}

/// The batch-maintained shadow the streamed replays are checked against.
struct Shadow {
  std::map<net::Prefix, std::vector<std::uint32_t>> origins;
  // Expected per-cell responsive count: reorigins preserve the count,
  // splits add fresh cells that score zero (no rescanner attached).
  std::map<net::Prefix, std::uint32_t> counts;
};

/// Expected end state, derived from the shadow once.
struct Expected {
  std::vector<bgp::Pfx2AsRecord> table;
  std::map<net::Prefix, std::uint32_t> counts;
  bgp::PrefixPartition partition;  // fresh build over the final live set
};

struct ReplayOutcome {
  bool ok = true;
  double elapsed_seconds = 0.0;
  std::vector<double> latency_ms;  // one per published plan
  stream::ReactorStats stats;
  std::uint64_t installs = 0;
  std::uint64_t retired = 0;
};

struct PlanImage {
  std::uint64_t plan_seq = 0;
  std::uint64_t fingerprint = 0;
  std::vector<std::byte> bytes;
};

#define BENCH_CHECK(cond, ...)                  \
  do {                                          \
    if (!(cond)) {                              \
      std::fprintf(stderr, "FAIL: " __VA_ARGS__); \
      std::fprintf(stderr, "\n");               \
      outcome.ok = false;                       \
    }                                           \
  } while (0)

ReplayOutcome run_replay(const std::vector<bgp::Pfx2AsRecord>& table,
                         const std::vector<std::uint32_t>& counts,
                         const std::vector<std::vector<std::byte>>& wires,
                         double pace_seconds, const Expected& expected,
                         std::uint64_t probe_seed) {
  ReplayOutcome outcome;

  stream::ReactorOptions options;
  if (pace_seconds > 0.0) {
    // Paced replay measures the bounded-latency contract: close
    // batches quickly so latency reflects batching, not the timer.
    options.max_batch_delay_seconds = 0.005;
  }
  stream::StreamReactor reactor(table, counts, options);

  serve::GenerationStore<PlanImage> store(/*reader_slots=*/1);
  std::atomic<std::uint64_t> installs{0};
  std::atomic<std::uint64_t> retired{0};
  std::uint64_t last_fingerprint = 0;
  reactor.set_publisher([&](stream::PublishedPlan plan) {
    outcome.latency_ms.push_back(plan.update_to_plan_seconds * 1e3);
    last_fingerprint = plan.fingerprint;
    PlanImage image;
    image.plan_seq = plan.seq;
    image.fingerprint = plan.fingerprint;
    image.bytes = std::move(plan.image);
    const auto* displaced = store.install(std::move(image));
    installs.fetch_add(1, std::memory_order_relaxed);
    if (displaced != nullptr) {
      store.retire(displaced);
      retired.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // A concurrent reader races every swap: each newly observed
  // generation must attach (checksum + structural audit) under the
  // fingerprint the publisher sealed. A torn or dropped generation
  // fails the bench.
  std::atomic<bool> reader_stop{false};
  std::atomic<std::uint64_t> reader_failures{0};
  std::atomic<std::uint64_t> generations_verified{0};
  std::thread reader([&] {
    std::uint64_t last_seq = 0;
    const auto verify_current = [&] {
      const auto ref = store.acquire(0);
      if (!ref || ref.seq() == last_seq) return false;
      if (ref.seq() < last_seq) {
        reader_failures.fetch_add(1);
        return false;
      }
      last_seq = ref.seq();
      try {
        const state::StateImage image = state::StateImage::attach(
            ref.image().bytes, ref.image().fingerprint);
        if (image.info().fingerprint != ref.image().fingerprint) {
          reader_failures.fetch_add(1);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "reader attach failed: %s\n", e.what());
        reader_failures.fetch_add(1);
      }
      generations_verified.fetch_add(1, std::memory_order_relaxed);
      return true;
    };
    while (!reader_stop.load(std::memory_order_acquire)) {
      if (!verify_current()) std::this_thread::yield();
    }
    // A replay faster than this thread's first timeslice still gets its
    // final generation audited.
    verify_current();
  });

  std::uint64_t total_bytes = 0;
  const auto start = Clock::now();
  if (pace_seconds <= 0.0) {
    // Full speed: the entire trace is buffered and already closed, so
    // elapsed time is pure reactor throughput.
    std::vector<std::byte> wire;
    for (const auto& step : wires) {
      wire.insert(wire.end(), step.begin(), step.end());
    }
    total_bytes = wire.size();
    auto source = std::make_unique<stream::BufferSource>(std::move(wire));
    source->close();
    reactor.start(std::move(source));
  } else {
    auto source = std::make_unique<stream::BufferSource>();
    stream::BufferSource* feed = source.get();
    reactor.start(std::move(source));
    for (const auto& step : wires) {
      feed->append(step);
      total_bytes += step.size();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(pace_seconds));
    }
    feed->close();
  }
  reactor.join();
  outcome.elapsed_seconds = seconds_since(start);

  reader_stop.store(true, std::memory_order_release);
  reader.join();
  outcome.stats = reactor.stats();
  outcome.installs = installs.load();
  outcome.retired = retired.load();

  // ---- cross-checks (not timed) -------------------------------------
  const stream::ReactorStats& stats = outcome.stats;
  BENCH_CHECK(stats.framer.decode_errors == 0, "decode errors: %" PRIu64,
              stats.framer.decode_errors);
  BENCH_CHECK(stats.framer.resyncs == 0, "resyncs: %" PRIu64,
              stats.framer.resyncs);
  BENCH_CHECK(stats.framer.truncated_tail == 0, "truncated tail");
  BENCH_CHECK(stats.framer.bytes_in == total_bytes,
              "ingest accounted %" PRIu64 " of %" PRIu64 " bytes",
              stats.framer.bytes_in, total_bytes);
  BENCH_CHECK(stats.queue.dropped == 0, "queue dropped %" PRIu64,
              stats.queue.dropped);
  BENCH_CHECK(stats.rejected_overlaps == 0, "rejected overlaps: %" PRIu64,
              stats.rejected_overlaps);
  BENCH_CHECK(reader_failures.load() == 0, "reader failures: %" PRIu64,
              reader_failures.load());

  // Zero dropped generations: every published plan was installed, every
  // displaced one retired, and the store serves the newest.
  BENCH_CHECK(outcome.installs == stats.plans_published,
              "installs %" PRIu64 " != published %" PRIu64, outcome.installs,
              stats.plans_published);
  BENCH_CHECK(outcome.installs > 0, "nothing was published");
  BENCH_CHECK(outcome.retired + 1 == outcome.installs,
              "retired %" PRIu64 " of %" PRIu64, outcome.retired,
              outcome.installs);
  BENCH_CHECK(store.current_seq() == outcome.installs,
              "store at seq %" PRIu64 ", installed %" PRIu64,
              store.current_seq(), outcome.installs);

  // Final table: prefix-for-prefix, origin-for-origin equal to the
  // batch shadow.
  BENCH_CHECK(reactor.table() == expected.table,
              "final table diverged (got %zu records, want %zu)",
              reactor.table().size(), expected.table.size());

  // Final partition: same live set and identical attribution for 20k
  // random addresses against a from-scratch partition of the expected
  // live prefixes.
  const bgp::PrefixPartition& streamed = reactor.partition();
  BENCH_CHECK(streamed.live_cells() == expected.table.size(),
              "live cells %zu, want %zu", streamed.live_cells(),
              expected.table.size());
  util::Rng probe_rng(probe_seed);
  std::uint64_t locate_mismatches = 0;
  for (int probe = 0; probe < 20000; ++probe) {
    const net::Ipv4Address address(
        static_cast<std::uint32_t>(probe_rng.bounded(1ull << 32)));
    const auto got = streamed.locate(address);
    const auto want = expected.partition.locate(address);
    if (got.has_value() != want.has_value() ||
        (got && streamed.prefix(*got) != expected.partition.prefix(*want))) {
      ++locate_mismatches;
    }
  }
  BENCH_CHECK(locate_mismatches == 0, "%" PRIu64 " locate mismatches",
              locate_mismatches);

  // Per-cell counts: reorigins preserve, splits score zero.
  const auto cell_counts = reactor.counts();
  std::uint64_t count_mismatches = 0;
  for (std::size_t slot = 0; slot < streamed.size(); ++slot) {
    if (!streamed.live(static_cast<std::uint32_t>(slot))) continue;
    const auto it =
        expected.counts.find(streamed.prefix(static_cast<std::uint32_t>(slot)));
    if (it == expected.counts.end() || cell_counts[slot] != it->second) {
      ++count_mismatches;
    }
  }
  BENCH_CHECK(count_mismatches == 0, "%" PRIu64 " count mismatches",
              count_mismatches);

  // The last published plan must name exactly the reactor's final
  // topology.
  BENCH_CHECK(last_fingerprint == bgp::partition_fingerprint(streamed),
              "published fingerprint does not match the final partition");
  BENCH_CHECK(generations_verified.load() >= 1,
              "reader never verified a generation");
  return outcome;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1));
  return values[rank];
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 50'000;
  std::size_t steps = 40;
  std::size_t churn = 600;  // churned prefixes per step
  std::uint64_t pace_ms = 25;
  std::uint64_t seed = 2016;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--steps") == 0) {
      steps = value;
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      churn = value;
    } else if (std::strcmp(argv[i], "--pace-ms") == 0) {
      pace_ms = value;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_stream [--prefixes N] "
                   "[--steps K] [--churn C] [--pace-ms MS] [--seed S]\n",
                   argv[i]);
      return 2;
    }
  }
  if (prefix_count == 0) prefix_count = 1;
  if (steps == 0) steps = 1;
  if (churn == 0) churn = 1;

  // ---- synthetic world + churn trace ---------------------------------
  util::Rng rng(seed);
  std::vector<bgp::Pfx2AsRecord> table;
  std::vector<std::uint32_t> counts;
  Shadow shadow;
  for (const net::Prefix prefix : synthesize_prefixes(prefix_count, seed)) {
    const auto origin =
        static_cast<std::uint32_t>(64512 + rng.bounded(1024));
    const std::uint32_t count = synthetic_count(prefix, seed);
    table.push_back({prefix, {origin}});
    counts.push_back(count);
    shadow.origins[prefix] = {origin};
    shadow.counts[prefix] = count;
  }

  std::vector<std::vector<std::byte>> wires;
  std::uint64_t updates_total = 0;
  for (std::size_t step = 0; step < steps; ++step) {
    std::vector<net::Prefix> live;
    live.reserve(shadow.origins.size());
    for (const auto& [prefix, origins] : shadow.origins) {
      live.push_back(prefix);
    }
    bgp::RibDelta delta;
    std::set<net::Prefix> used;
    for (std::size_t k = 0; k < churn; ++k) {
      const net::Prefix victim = live[rng.bounded(live.size())];
      if (!used.insert(victim).second) continue;
      const auto origin =
          static_cast<std::uint32_t>(65000 + rng.bounded(512));
      if (victim.length() < 24 && rng.chance(0.45)) {
        // Deaggregation split: withdraw the cover, announce the halves.
        delta.withdraw.push_back(victim);
        delta.announce.push_back({victim.lower_half(), {origin}});
        delta.announce.push_back({victim.upper_half(), {origin}});
        shadow.origins.erase(victim);
        shadow.counts.erase(victim);
        for (const net::Prefix half :
             {victim.lower_half(), victim.upper_half()}) {
          used.insert(half);
          shadow.origins[half] = {origin};
          shadow.counts[half] = 0;  // fresh cells score zero (no rescanner)
        }
      } else {
        // Reorigin: same prefix, new origin set; the cell and its
        // responsive count survive.
        delta.announce.push_back({victim, {origin}});
        shadow.origins[victim] = {origin};
      }
    }
    updates_total += delta.withdraw.size() + delta.announce.size();
    wires.push_back(bgp::encode_mrt_updates(
        delta, static_cast<std::uint32_t>(1441584000 + step)));
  }

  Expected expected;
  for (const auto& [prefix, origins] : shadow.origins) {
    expected.table.push_back({prefix, origins});
  }
  expected.counts = shadow.counts;
  {
    std::vector<net::Prefix> live;
    live.reserve(expected.table.size());
    for (const auto& record : expected.table) live.push_back(record.prefix);
    expected.partition = bgp::PrefixPartition(std::move(live));
  }

  // ---- replays --------------------------------------------------------
  const ReplayOutcome fast =
      run_replay(table, counts, wires, /*pace_seconds=*/0.0, expected,
                 util::mix64(seed, 1));
  const ReplayOutcome paced =
      run_replay(table, counts, wires, static_cast<double>(pace_ms) / 1e3,
                 expected, util::mix64(seed, 2));
  if (!fast.ok || !paced.ok) {
    std::fprintf(stderr, "FAILED: streamed replay diverged from batch\n");
    return 1;
  }

  const double updates_per_sec =
      fast.elapsed_seconds > 0.0
          ? static_cast<double>(updates_total) / fast.elapsed_seconds
          : 0.0;
  const double p50_ms = percentile(paced.latency_ms, 0.50);
  const double p99_ms = percentile(paced.latency_ms, 0.99);
  const double max_ms = paced.stats.max_update_to_plan_seconds * 1e3;

  std::fprintf(stderr,
               "# %zu prefixes, %zu steps x %zu churn (%" PRIu64
               " updates): sustained %.0f updates/s (%" PRIu64
               " plans, %" PRIu64 " batches, %" PRIu64
               " folded); paced %" PRIu64
               " plans, update->plan p50 %.2f ms p99 %.2f ms max %.2f ms\n",
               prefix_count, steps, churn, updates_total, updates_per_sec,
               fast.stats.plans_published, fast.stats.batches,
               fast.stats.queue.coalesced,
               paced.stats.plans_published, p50_ms, p99_ms, max_ms);

  std::printf(
      "{\"bench\":\"micro_stream\",\"prefixes\":%zu,\"steps\":%zu,"
      "\"churn\":%zu,\"pace_ms\":%" PRIu64 ",\"seed\":%" PRIu64 ","
      "\"updates_total\":%" PRIu64 ",\"final_cells\":%zu,"
      "\"plans_published_fast\":%" PRIu64 ",\"batches_fast\":%" PRIu64 ","
      "\"coalesced_fast\":%" PRIu64 ",\"plans_published_paced\":%" PRIu64
      ",\"updates_per_sec_sustained\":%.1f,\"update_to_plan_p50_ms\":%.3f,"
      "\"update_to_plan_p99_ms\":%.3f,\"update_to_plan_max_ms\":%.3f}\n",
      prefix_count, steps, churn, pace_ms, seed, updates_total,
      expected.table.size(), fast.stats.plans_published, fast.stats.batches,
      fast.stats.queue.coalesced, paced.stats.plans_published,
      updates_per_sec, p50_ms, p99_ms, max_ms);
  return 0;
}
