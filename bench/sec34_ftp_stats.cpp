// Reproduces the section 3.4 bullet statistics for FTP over l-prefixes:
//
//   * 100% of FTP hosts live in ~134k prefixes covering 76.2% of the
//     routed space;
//   * 95% of FTP hosts live in ~105k prefixes covering 27.3% of the space;
//   * 23.8% of addresses were unresponsive (host-free prefixes);
//   * the first 20k prefixes (density > 0.04) hold 64% of all FTP servers
//     in only 2% of the advertised space;
//   * for m-prefixes, full host coverage costs only 57.4% of the space.
//
// Prefix counts scale with the synthetic world size and host densities
// with TASS_SCALE; the fractions are the reproduction targets.
#include <cstdio>

#include "bench_common.hpp"
#include "core/ranking.hpp"
#include "core/selection.hpp"
#include "report/table.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf("# Section 3.4: FTP prefix-density statistics\n\n");

  const auto series =
      bench::make_series(topology, census::Protocol::kFtp, config);
  const auto& seed = series.month(0);

  report::Table table({"statistic", "measured", "paper"});
  const auto add = [&](std::string name, double measured, const char* paper) {
    table.add_row({std::move(name), report::Table::cell(measured, 3), paper});
  };

  for (const core::PrefixMode mode :
       {core::PrefixMode::kLess, core::PrefixMode::kMore}) {
    const auto ranking = core::rank_by_density(seed, mode);
    std::string tag = "[";
    tag += core::prefix_mode_name(mode);
    tag += "] ";

    core::SelectionParams full;
    full.phi = 1.0;
    const auto sel_full = core::select_by_density(ranking, full);
    core::SelectionParams p95;
    p95.phi = 0.95;
    const auto sel_95 = core::select_by_density(ranking, p95);

    if (mode == core::PrefixMode::kLess) {
      add(tag + "responsive prefixes (phi=1), thousands",
          static_cast<double>(sel_full.k()) / 1e3, "~134k");
      add(tag + "space coverage at phi=1", sel_full.space_coverage(),
          "0.762");
      add(tag + "prefixes at phi=0.95, thousands",
          static_cast<double>(sel_95.k()) / 1e3, "~105k");
      add(tag + "space coverage at phi=0.95", sel_95.space_coverage(),
          "0.273");
      add(tag + "unresponsive space fraction",
          1.0 - sel_full.space_coverage(), "0.238");

      // "The first 20k prefixes with rho > 0.04 contain 64% of all FTP
      // servers but represent only 2% of the advertised space." We locate
      // the rank where cumulative host coverage reaches 64%.
      std::uint64_t hosts = 0;
      std::uint64_t space = 0;
      std::size_t rank = 0;
      double min_density = 0.0;
      for (const auto& entry : ranking.ranked) {
        hosts += entry.hosts;
        space += entry.size;
        ++rank;
        min_density = entry.density;
        if (static_cast<double>(hosts) >=
            0.64 * static_cast<double>(ranking.total_hosts)) {
          break;
        }
      }
      add(tag + "prefixes holding 64% of hosts, thousands",
          static_cast<double>(rank) / 1e3, "~20k");
      add(tag + "their space coverage",
          static_cast<double>(space) /
              static_cast<double>(ranking.advertised_addresses),
          "0.02");
      add(tag + "their min density (rescaled to paper host counts)",
          min_density / config.host_scale, ">0.04");
    } else {
      add(tag + "space coverage at phi=1", sel_full.space_coverage(),
          "0.574");
      add(tag + "space coverage at phi=0.95", sel_95.space_coverage(),
          "0.206");
    }
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}
