// Cold-start micro-benchmark: TSIM state-image load versus rebuilding
// the same derived state from raw inputs.
//
// Both paths start from durable artifacts on disk and end with an
// m-partition + LpmIndex + density ranking ready to serve a scan cycle:
//
//   rebuild: the paper pipeline — parse the pfx2as table, merge it into
//            a RoutingTable, deaggregate into the m-partition (Figure 2,
//            which also builds the LpmIndex), rank the per-cell counts;
//   image:   StateImage::load — mmap, checksum + structural validation,
//            pointer fixup. No parse, no deaggregation, no rebuild.
//
// The synthetic table announces covering prefixes plus more-specifics
// inside them (like a real BGP table), so the rebuild side pays the real
// deaggregation step. The per-cell host counts are handed to both paths
// for free (as in micro_delta): a real cold start would also have to
// re-derive them from a census snapshot, so the reported speedup is a
// lower bound.
//
// Plain executable (no google-benchmark dependency) so it always builds
// and doubles as a ctest bench-smoke test. Prints one machine-readable
// JSON object on stdout for BENCH tracking; human-readable notes go to
// stderr. Every run cross-checks the loaded view against the fresh build
// — bit-identical rankings, identical lookups and identical tally_cells
// output — and exits non-zero on any disagreement, so the benchmark is
// also a sampled correctness check.
//
// Usage: micro_coldstart [--prefixes N] [--iters K] [--lookups M]
//                        [--seed S] [--huge 0|1]
//
// --huge 1 requests hugepage backing for the timed image loads
// (util::MapOptions::huge_pages); the JSON reports which backing
// actually materialised under "page_backing" (hugetlb / thp / base), so
// cold-start numbers always say what paging configuration produced them.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bgp/deaggregate.hpp"
#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "bgp/rib.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "net/prefix.hpp"
#include "state/image.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// A RIB-shaped announcement table: disjoint covering prefixes drawn with
// the buddy allocator, ~55% of them announcing 1+Geom more-specifics
// (possibly nested) inside — the shape whose deaggregation the paper's
// m-partition is built from. Keeps drawing coverings until the
// deaggregated table reaches `target_cells` cells.
std::vector<bgp::Pfx2AsRecord> synthesize_table(std::size_t target_cells,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<net::Prefix> space{
      net::Prefix::parse_or_throw("0.0.0.0/2"),
      net::Prefix::parse_or_throw("64.0.0.0/2"),
      net::Prefix::parse_or_throw("128.0.0.0/2"),
      net::Prefix::parse_or_throw("192.0.0.0/2"),
  };
  census::BuddyAllocator allocator(space);
  std::vector<bgp::Pfx2AsRecord> records;
  std::size_t cells = 0;
  while (cells < target_cells) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.03) {
      length = 12 + static_cast<int>(rng.bounded(4));
    } else if (roll < 0.38) {
      length = 16 + static_cast<int>(rng.bounded(4));
    } else {
      length = 20 + static_cast<int>(rng.bounded(4));
    }
    const auto covering = allocator.allocate(length, rng);
    if (!covering) {
      std::fprintf(stderr, "address space exhausted at %zu cells\n", cells);
      break;
    }
    const auto origin =
        static_cast<std::uint32_t>(64512 + rng.bounded(1024));
    records.push_back({*covering, {origin}});
    std::vector<net::Prefix> inside;
    if (rng.chance(0.55)) {
      int specifics = 1;
      while (specifics < 6 && rng.chance(0.58)) ++specifics;
      for (int s = 0; s < specifics; ++s) {
        const int extra = 1 + static_cast<int>(rng.bounded(6));
        const int sub_length = std::min(covering->length() + extra, 24);
        if (sub_length <= covering->length()) continue;
        const auto offset =
            rng.bounded(std::uint64_t{1}
                        << (sub_length - covering->length()));
        const net::Prefix specific(
            net::Ipv4Address(
                covering->network().value() +
                static_cast<std::uint32_t>(
                    offset << (32 - sub_length))),
            sub_length);
        inside.push_back(specific);
        records.push_back({specific, {origin}});
      }
    }
    // Deaggregating one covering is independent of the rest of the
    // table, so the running cell count is exact.
    cells += bgp::deaggregate(*covering, inside).size();
  }
  return records;
}

// Deterministic per-prefix host count, identical for both paths.
std::uint32_t synthetic_count(net::Prefix prefix, std::uint64_t seed) {
  const std::uint64_t h =
      util::mix64(seed, (static_cast<std::uint64_t>(prefix.network().value())
                         << 6) |
                            static_cast<std::uint64_t>(prefix.length()));
  if ((h & 7u) < 3u) return 0;  // ~40% of cells are host-free
  return static_cast<std::uint32_t>(1 + (h >> 3) % 500);
}

bool rankings_agree(const core::DensityRanking& a,
                    const core::DensityRankingView& b) {
  if (a.total_hosts != b.total_hosts ||
      a.advertised_addresses != b.advertised_addresses ||
      a.ranked.size() != b.ranked.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].index != b.ranked[i].index ||
        a.ranked[i].prefix != b.ranked[i].prefix ||
        a.ranked[i].hosts != b.ranked[i].hosts ||
        a.ranked[i].density != b.ranked[i].density ||
        a.ranked[i].host_share != b.ranked[i].host_share) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 120'000;
  std::size_t lookup_count = 200'000;
  int iters = 5;
  std::uint64_t seed = 2016;
  util::MapOptions map_options;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--lookups") == 0) {
      lookup_count = value;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else if (std::strcmp(argv[i], "--huge") == 0) {
      map_options.huge_pages = value != 0;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_coldstart "
                   "[--prefixes N] [--iters K] [--lookups M] [--seed S] "
                   "[--huge 0|1]\n",
                   argv[i]);
      return 2;
    }
  }
  if (prefix_count == 0) prefix_count = 1;
  if (iters <= 0) iters = 1;

  // ---- setup (untimed): the durable artifacts both paths start from --
  // (pid-suffixed so concurrent runs — e.g. ctest in two build trees —
  // cannot clobber each other's inputs mid-iteration)
  const std::string dir = std::getenv("TMPDIR") ? std::getenv("TMPDIR")
                                                : std::string("/tmp");
  const std::string tag = std::to_string(static_cast<long>(::getpid()));
  const std::string pfx2as_path =
      dir + "/coldstart_bench." + tag + ".pfx2as";
  const std::string image_path = dir + "/coldstart_bench." + tag + ".tsim";

  const auto records = synthesize_table(prefix_count, seed);
  bgp::save_pfx2as(pfx2as_path, records);
  const bgp::PrefixPartition partition =
      bgp::RoutingTable::from_pfx2as(records).m_partition();
  std::vector<std::uint32_t> counts(partition.size());
  for (std::size_t i = 0; i < partition.size(); ++i) {
    counts[i] = synthetic_count(partition.prefix(i), seed);
  }
  state::save_image(
      image_path, partition,
      core::rank_by_density(counts, partition, core::PrefixMode::kMore));
  // Warm the page cache for both inputs (untimed): the design point is N
  // worker processes attaching to one shared image, so all but the very
  // first cold start find the pages resident — and the pfx2as file gets
  // the same treatment so the rebuild side is measured warm too.
  {
    const state::StateImage warm = state::StateImage::load(image_path);
    warm.verify();  // also proves the image passes the deep audit
    (void)bgp::load_pfx2as(pfx2as_path, /*strict=*/false);
  }

  // ---- timed: rebuild-from-raw-inputs vs image load ------------------
  // Per-phase minima over the iterations are the headline numbers (on a
  // shared machine, scheduler and cache noise is strictly additive);
  // means ride along in the JSON for context.
  double parse_sum = 0.0, parse_min = 1e300;
  double build_sum = 0.0, build_min = 1e300;
  double load_sum = 0.0, load_min = 1e300;
  std::size_t image_bytes = 0;
  util::PageBacking backing = util::PageBacking::kNone;
  for (int iter = 0; iter < iters; ++iter) {
    auto start = std::chrono::steady_clock::now();
    const auto parsed = bgp::load_pfx2as(pfx2as_path, /*strict=*/false);
    const double parse_one = ms_since(start);
    parse_sum += parse_one;
    parse_min = std::min(parse_min, parse_one);

    start = std::chrono::steady_clock::now();
    const bgp::PrefixPartition fresh =
        bgp::RoutingTable::from_pfx2as(parsed).m_partition();
    if (fresh.size() != counts.size()) {
      std::fprintf(stderr, "REBUILD CELL-COUNT MISMATCH at iter %d\n",
                   iter);
      return 1;
    }
    const auto fresh_ranking =
        core::rank_by_density(counts, fresh, core::PrefixMode::kMore);
    const double build_one = ms_since(start);
    build_sum += build_one;
    build_min = std::min(build_min, build_one);

    start = std::chrono::steady_clock::now();
    const state::StateImage image =
        state::StateImage::load(image_path, map_options);
    const double load_one = ms_since(start);
    load_sum += load_one;
    load_min = std::min(load_min, load_one);
    image_bytes = image.info().file_bytes;
    backing = image.info().backing;

    // ---- cross-check (not timed): the loaded view must be
    // bit-identical to the fresh build ------------------------------
    if (!rankings_agree(fresh_ranking, image.ranking())) {
      std::fprintf(stderr, "RANKING MISMATCH at iter %d\n", iter);
      return 1;
    }
    util::Rng rng(util::mix64(seed, static_cast<std::uint64_t>(iter)));
    std::vector<std::uint32_t> probes;
    probes.reserve(lookup_count);
    for (std::size_t i = 0; i < lookup_count; ++i) {
      probes.push_back(static_cast<std::uint32_t>(rng.bounded(1ull << 32)));
    }
    std::vector<std::uint32_t> want(probes.size());
    std::vector<std::uint32_t> got(probes.size());
    fresh.locate_many(probes, want);
    image.partition().locate_many(probes, got);
    if (want != got) {
      std::fprintf(stderr, "LOOKUP MISMATCH at iter %d\n", iter);
      return 1;
    }
    std::vector<std::uint32_t> want_tally(fresh.size(), 0);
    std::vector<std::uint32_t> got_tally(image.partition().size(), 0);
    std::uint64_t want_attr = 0, want_un = 0, got_attr = 0, got_un = 0;
    fresh.tally_cells(probes, want_tally, want_attr, want_un);
    image.partition().tally_cells(probes, got_tally, got_attr, got_un);
    if (want_tally != got_tally || want_attr != got_attr ||
        want_un != got_un) {
      std::fprintf(stderr, "TALLY MISMATCH at iter %d\n", iter);
      return 1;
    }
  }
  const double rebuild_ms = parse_min + build_min;
  const double speedup = load_min > 0.0 ? rebuild_ms / load_min : 0.0;
  const double build_speedup = load_min > 0.0 ? build_min / load_min : 0.0;

  std::remove(pfx2as_path.c_str());
  std::remove(image_path.c_str());

  std::fprintf(stderr,
               "# %zu routes -> %zu cells: rebuild %8.3f ms (parse %.3f "
               "+ deaggregate/build %.3f), image load %6.3f ms (%zu "
               "bytes, %s pages) — speedup %.1fx (%.1fx vs build alone)\n",
               records.size(), partition.size(), rebuild_ms, parse_min,
               build_min, load_min, image_bytes,
               std::string(util::page_backing_name(backing)).c_str(),
               speedup, build_speedup);

  std::printf(
      "{\"bench\":\"micro_coldstart\",\"prefixes\":%zu,\"routes\":%zu,"
      "\"iters\":%d,\"seed\":%" PRIu64 ",\"image_bytes\":%zu,"
      "\"parse_ms\":%.3f,\"build_ms\":%.3f,\"rebuild_ms\":%.3f,"
      "\"load_ms\":%.3f,\"parse_ms_mean\":%.3f,\"build_ms_mean\":%.3f,"
      "\"load_ms_mean\":%.3f,\"speedup\":%.2f,\"build_speedup\":%.2f,"
      "\"page_backing\":\"%s\"}\n",
      partition.size(), records.size(), iters, seed, image_bytes,
      parse_min, build_min, rebuild_ms, load_min, parse_sum / iters,
      build_sum / iters, load_sum / iters, speedup, build_speedup,
      std::string(util::page_backing_name(backing)).c_str());
  return 0;
}
