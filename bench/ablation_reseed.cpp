// Ablation: the reseed interval Delta-t (step 5 of the algorithm).
//
// TASS recovers full accuracy whenever it re-runs the seeding full scan.
// This bench extends the series beyond the paper's six months and compares
// reseeding every 3 / 6 / 12 months against never reseeding, reporting the
// mean hitrate and the total probe traffic (full-scan cycles included) —
// the trade-off a deployment must pick Delta-t against.
#include <cstdio>

#include "bench_common.hpp"
#include "core/reseed.hpp"
#include "report/table.hpp"

using namespace tass;

int main() {
  auto config = bench::BenchConfig::from_env();
  config.months = std::max(config.months, 13);  // a full year of cycles
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf(
      "# Ablation: reseed interval Delta-t (m-prefixes, phi=0.95, %d "
      "months)\n\n",
      config.months);

  report::Table table({"protocol", "reseed", "mean hitrate",
                       "traffic vs monthly full scan"});
  for (const census::Protocol protocol : census::paper_protocols()) {
    const auto series = bench::make_series(topology, protocol, config);
    const struct {
      int interval;
      const char* label;
    } kIntervals[] = {{3, "every 3 months"},
                      {6, "every 6 months"},
                      {12, "every 12 months"},
                      {0, "never (seed only)"}};
    for (const auto& [interval, label] : kIntervals) {
      core::SelectionParams params;
      params.phi = 0.95;
      core::ReseedPolicy policy;
      policy.interval_months = interval;
      const auto outcome = core::evaluate_with_reseed(
          series, core::PrefixMode::kMore, params, policy);
      table.add_row(
          {std::string(census::protocol_name(protocol)), label,
           report::Table::cell(outcome.mean_hitrate(), 4),
           report::Table::cell(outcome.traffic_vs_monthly_full(
                                   topology->advertised_addresses),
                               3)});
    }
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}
