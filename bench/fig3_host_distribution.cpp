// Reproduces Figure 3: "host distribution over prefix lengths based on
// seven different measurements from 09/2015 to 03/2016" for FTP and HTTPS
// at both granularities.
//
// Paper shape: the per-length histogram is stable across all seven months
// (the box-plot spread is tiny), and the m-prefix histogram is shifted
// towards longer prefixes without losing stability.
#include <cstdio>

#include "bench_common.hpp"
#include "core/ranking.hpp"
#include "report/table.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf("# Figure 3: hosts per prefix length, %d monthly snapshots\n",
              config.months);

  for (const census::Protocol protocol :
       {census::Protocol::kFtp, census::Protocol::kHttps}) {
    const auto series = bench::make_series(topology, protocol, config);
    for (const core::PrefixMode mode :
         {core::PrefixMode::kLess, core::PrefixMode::kMore}) {
      std::vector<std::array<std::uint64_t, 33>> histograms;
      for (const census::Snapshot& snapshot : series.months()) {
        histograms.push_back(core::hosts_by_prefix_length(snapshot, mode));
      }

      std::vector<std::string> headers{"len"};
      for (int m = 0; m < config.months; ++m) {
        headers.push_back(census::month_label(m));
      }
      report::Table table(std::move(headers));
      for (int length = 8; length <= 24; ++length) {
        bool any = false;
        for (const auto& histogram : histograms) {
          any = any || histogram[static_cast<std::size_t>(length)] > 0;
        }
        if (!any) continue;
        std::string label = "/";
        label += std::to_string(length);
        std::vector<std::string> row{std::move(label)};
        for (const auto& histogram : histograms) {
          row.push_back(report::Table::cell(
              histogram[static_cast<std::size_t>(length)]));
        }
        table.add_row(std::move(row));
      }
      std::printf("\n[%s, %s specific prefixes]\n%s",
                  census::protocol_name(protocol).data(),
                  core::prefix_mode_name(mode).data(),
                  table.to_text().c_str());
    }
  }
  return 0;
}
