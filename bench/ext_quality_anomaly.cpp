// Extension experiment (paper §4.2, reproduced): the corrupted-snapshot
// incident. The authors found that SSH/SCADA censys snapshots "likely
// included data from prior scans" because accuracy and densities
// *increased* over time. We contaminate an honest series with append-only
// accumulation, show the hitlist hitrate inversion, and demonstrate that
// the retention-based detector flags the contaminated series while
// passing the honest one.
#include <cstdio>

#include "bench_common.hpp"
#include "census/quality.hpp"
#include "core/evaluate.hpp"
#include "report/series.hpp"
#include "report/table.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf("# Extension (section 4.2): prior-scan accumulation anomaly\n");

  const auto series =
      bench::make_series(topology, census::Protocol::kSsh, config);
  const auto contaminated = census::contaminate_series(series.months());

  // Hitlist accuracy on honest vs contaminated ground truth.
  report::SeriesSet curves("month");
  std::vector<std::string> ticks;
  for (int m = 0; m < config.months; ++m) {
    ticks.push_back(census::month_label(m));
  }
  curves.set_ticks(std::move(ticks));

  const core::HitlistStrategy hitlist(series.month(0));
  std::vector<double> honest;
  std::vector<double> corrupted;
  for (int m = 0; m < config.months; ++m) {
    const auto index = static_cast<std::size_t>(m);
    honest.push_back(
        static_cast<double>(hitlist.found_hosts(series.month(m))) /
        static_cast<double>(series.month(m).total_hosts()));
    corrupted.push_back(
        static_cast<double>(hitlist.found_hosts(contaminated[index])) /
        static_cast<double>(series.month(m).total_hosts()));
  }
  curves.add_series("ssh-honest", std::move(honest));
  curves.add_series("ssh-contaminated", std::move(corrupted));
  std::printf("\n[hitlist hitrate: honest vs contaminated ground truth]\n%s",
              curves.to_tsv().c_str());

  // Detector verdicts.
  const auto honest_report = census::detect_accumulation(series.months());
  const auto corrupted_report = census::detect_accumulation(contaminated);
  report::Table table({"series", "mean retention", "mean growth",
                       "accumulation suspected"});
  table.add_row({"honest",
                 report::Table::cell(honest_report.mean_retention, 3),
                 report::Table::cell(honest_report.mean_growth, 3),
                 honest_report.accumulation_suspected ? "YES" : "no"});
  table.add_row({"contaminated",
                 report::Table::cell(corrupted_report.mean_retention, 3),
                 report::Table::cell(corrupted_report.mean_growth, 3),
                 corrupted_report.accumulation_suspected ? "YES" : "no"});
  std::printf("\n%s", table.to_text().c_str());
  return 0;
}
