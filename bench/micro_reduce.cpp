// Prefix-reduction micro-benchmark: bgp::reduce over a RIB-shaped
// selection, reporting the reduction-ratio-vs-overshoot curve and the
// ScanScope construction speedup the smaller list buys.
//
// Plain executable (no google-benchmark dependency) so it always builds
// and doubles as a ctest bench-smoke test. Prints one machine-readable
// JSON object on stdout for BENCH tracking; human-readable notes go to
// stderr. The run is also a sampled correctness check and exits non-zero
// on any violation:
//   * every original prefix is fully covered by the reduced list;
//   * union_size(reduced) - union_size(original) == overshoot_addresses;
//   * the overshoot never exceeds the requested cap;
//   * the merge curve is monotone (sizes fall, overshoot never does);
//   * sampled addresses of the original ScanScope stay in scope after
//     reduction (with the blocklist applied to both);
//   * the headline reduction ratio at the 5% cap is at least 5x (the
//     world's structure is scale-free, so this holds at smoke sizes too).
//
// The synthetic world mimics a density selection: hot /16 regions keep
// ~96% of their /24 cells (the selection wants nearly the whole region,
// holes are unresponsive pockets), cold regions keep ~5% (a few dense
// cells in sparse space). Reduction should collapse hot regions to a
// handful of prefixes for a few percent overshoot and leave cold cells
// alone — exactly the behaviour the curve makes visible.
//
// Usage: micro_reduce [--prefixes N] [--seed S]
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bgp/aggregate.hpp"
#include "bgp/reduce.hpp"
#include "net/interval.hpp"
#include "net/prefix.hpp"
#include "scan/blocklist.hpp"
#include "scan/scope.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// RIB-shaped selection in non-reserved space (64.0.0.0 upward, clear of
// the default-blocklist ranges): /16 regions that are either hot (~96%
// of their /24 cells selected) or cold (~5%).
std::vector<net::Prefix> synthesize_selection(std::size_t count,
                                              std::uint64_t seed) {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(count);
  for (std::uint32_t region = 0; prefixes.size() < count; ++region) {
    if (region >= 64u * 256u) break;  // 64.0.0.0..127.255.0.0 exhausted
    const std::uint32_t base =
        ((64u + (region >> 8)) << 24) | ((region & 255u) << 16);
    const bool hot = (util::mix64(seed, region) & 1u) != 0;
    const std::uint64_t keep_pct = hot ? 96 : 5;
    for (std::uint32_t cell = 0;
         cell < 256u && prefixes.size() < count; ++cell) {
      const std::uint32_t network = base | (cell << 8);
      if (util::mix64(seed ^ 0x9e3779b97f4a7c15ull, network) % 100 <
          keep_pct) {
        prefixes.emplace_back(net::Ipv4Address(network), 24);
      }
    }
  }
  return prefixes;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 120'000;
  std::uint64_t seed = 2016;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_reduce [--prefixes N] "
                   "[--seed S]\n",
                   argv[i]);
      return 2;
    }
  }
  if (prefix_count == 0) prefix_count = 1;

  const auto selection = synthesize_selection(prefix_count, seed);
  const std::uint64_t original_union = bgp::union_size(selection);
  const auto aggregated = bgp::aggregate(selection);
  std::fprintf(stderr, "# world: %zu /24 prefixes (%zu aggregated), %" PRIu64
                       " addresses\n",
               selection.size(), aggregated.size(), original_union);

  // The ratio-vs-overshoot curve: one full reduction per cap. The 5%
  // point is the headline and keeps its full result for the checks
  // below.
  constexpr double kCapsPct[] = {0.0, 1.0, 2.0, 5.0, 10.0};
  bgp::ReduceResult headline;
  double reduce_ms = 0.0;
  struct CurveRow {
    double cap_pct = 0.0;
    std::size_t reduced = 0;
    double ratio = 0.0;
    std::uint64_t overshoot = 0;
    std::uint64_t merges = 0;
  };
  std::vector<CurveRow> rows;
  for (const double cap_pct : kCapsPct) {
    bgp::ReduceParams params;
    params.max_overshoot = cap_pct / 100.0;
    const auto start = std::chrono::steady_clock::now();
    auto result = bgp::reduce(std::span<const net::Prefix>(selection),
                              params);
    const double elapsed = ms_since(start);

    // --- cross-checks (every cap, not just the headline) --------------
    const auto reduced_set = net::IntervalSet::of_prefixes(result.prefixes);
    for (const net::Prefix prefix : selection) {
      if (!reduced_set.contains_all(net::Interval::of(prefix))) {
        std::fprintf(stderr, "COVERAGE LOST at cap %.1f%%: %s\n", cap_pct,
                     prefix.to_string().c_str());
        return 1;
      }
    }
    const std::uint64_t reduced_union = bgp::union_size(result.prefixes);
    if (reduced_union - original_union != result.overshoot_addresses) {
      std::fprintf(stderr,
                   "OVERSHOOT MISCOUNT at cap %.1f%%: union grew by %" PRIu64
                   ", reported %" PRIu64 "\n",
                   cap_pct, reduced_union - original_union,
                   result.overshoot_addresses);
      return 1;
    }
    if (result.overshoot_fraction() > cap_pct / 100.0 + 1e-9) {
      std::fprintf(stderr, "OVERSHOOT CAP EXCEEDED at cap %.1f%%: %.6f%%\n",
                   cap_pct, 100.0 * result.overshoot_fraction());
      return 1;
    }
    for (std::size_t i = 1; i < result.curve.size(); ++i) {
      if (result.curve[i].prefixes >= result.curve[i - 1].prefixes ||
          result.curve[i].overshoot_addresses <
              result.curve[i - 1].overshoot_addresses) {
        std::fprintf(stderr, "NON-MONOTONE CURVE at cap %.1f%% point %zu\n",
                     cap_pct, i);
        return 1;
      }
    }

    CurveRow row;
    row.cap_pct = cap_pct;
    row.reduced = result.prefixes.size();
    row.ratio = result.reduction_ratio();
    row.overshoot = result.overshoot_addresses;
    row.merges = result.merges;
    rows.push_back(row);
    std::fprintf(stderr,
                 "# cap %5.1f%%: %6zu prefixes (%6.1fx), overshoot %" PRIu64
                 " addresses (%.3f%%), %" PRIu64 " merges, %.3f ms\n",
                 cap_pct, row.reduced, row.ratio, row.overshoot,
                 100.0 * result.overshoot_fraction(), row.merges, elapsed);
    if (cap_pct == 5.0) {
      headline = std::move(result);
      reduce_ms = elapsed;
    }
  }

  const double ratio_at_5pct = headline.reduction_ratio();
  if (ratio_at_5pct < 5.0) {
    std::fprintf(stderr,
                 "HEADLINE RATIO TOO LOW: %.2fx at the 5%% cap (need 5x)\n",
                 ratio_at_5pct);
    return 1;
  }

  // --- scope construction: original selection vs reduced list ---------
  // A small blocklist inside the world keeps the subtraction path honest
  // (and checks that overshoot never resurrects blocked space).
  scan::Blocklist blocklist;
  blocklist.add(net::Prefix::parse_or_throw("64.3.16.0/20"));
  blocklist.add(net::Prefix::parse_or_throw("65.128.0.0/12"));
  blocklist.add(net::Prefix::parse_or_throw("70.7.77.0/24"));

  constexpr int kReps = 3;
  double orig_ms = 1e300;
  double reduced_ms = 1e300;
  scan::ScanScope orig_scope;
  scan::ScanScope reduced_scope;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    orig_scope = scan::ScanScope(selection, blocklist);
    orig_ms = std::min(orig_ms, ms_since(start));
    start = std::chrono::steady_clock::now();
    reduced_scope = scan::ScanScope(
        std::span<const net::Prefix>(headline.prefixes), blocklist);
    reduced_ms = std::min(reduced_ms, ms_since(start));
  }
  const double speedup = reduced_ms > 0.0 ? orig_ms / reduced_ms : 0.0;

  // Sampled membership: everything the original scope probes, the
  // reduced scope still probes; and blocked space stays blocked.
  const net::AddressIndexer indexer(orig_scope.targets());
  util::Rng rng(seed);
  for (int probe = 0; probe < 20000 && indexer.size() > 0; ++probe) {
    const net::Ipv4Address address =
        indexer.at(rng.bounded(indexer.size()));
    if (!reduced_scope.contains(address)) {
      std::fprintf(stderr, "SCOPE ADDRESS LOST: %s\n",
                   address.to_string().c_str());
      return 1;
    }
    if (blocklist.blocks(address)) {
      std::fprintf(stderr, "BLOCKED ADDRESS IN SCOPE: %s\n",
                   address.to_string().c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "# scope build: %.3f ms original (%zu intervals) vs %.3f ms "
               "reduced (%zu intervals), %.1fx\n",
               orig_ms, orig_scope.targets().interval_count(), reduced_ms,
               reduced_scope.targets().interval_count(), speedup);

  std::printf("{\"bench\":\"micro_reduce\",\"prefixes\":%zu,"
              "\"aggregated\":%zu,\"seed\":%" PRIu64 ",\"curve\":[",
              selection.size(), aggregated.size(), seed);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CurveRow& r = rows[i];
    std::printf("%s{\"cap_pct\":%.1f,\"reduced\":%zu,\"ratio\":%.2f,"
                "\"overshoot_addresses\":%" PRIu64 ",\"merges\":%" PRIu64
                "}",
                i == 0 ? "" : ",", r.cap_pct, r.reduced, r.ratio,
                r.overshoot, r.merges);
  }
  std::printf("],\"reduce_ratio_at_5pct\":%.2f,\"reduce_ms\":%.3f,"
              "\"scope_build_orig_ms\":%.3f,\"scope_build_reduced_ms\":%.3f,"
              "\"scope_build_speedup\":%.2f,\"intervals_orig\":%zu,"
              "\"intervals_reduced\":%zu}\n",
              ratio_at_5pct, reduce_ms, orig_ms, reduced_ms, speedup,
              orig_scope.targets().interval_count(),
              reduced_scope.targets().interval_count());
  return 0;
}
