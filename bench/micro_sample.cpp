// Sampled-scan micro-benchmark: probes-vs-error curve for the
// statistical scan mode (plan_sample -> SampledScope -> probe ->
// estimate_from_sample) against exhaustive ground truth on the
// synthetic census world.
//
// Plain executable (no google-benchmark dependency) so it always builds
// and can double as a ctest smoke test. Prints one machine-readable
// JSON object on stdout for BENCH tracking; the human-readable curve
// goes to stderr. Exits non-zero if an engine run over the materialised
// scope ever disagrees with the scope's own probe() — the benchmark is
// also a sampled correctness check.
//
// The headline key `sample_probe_efficiency` is the largest probe
// reduction (exhaustive frame / probes sent) whose point estimate lands
// within 5% of the exhaustive truth — the "how much cheaper can the
// census get before the answer degrades" number.
//
// Usage: micro_sample [--lprefixes N] [--seed S] [--floor F]
//                     [--scale H]
// World knobs also honour the TASS_* environment (see bench_common.hpp);
// flags win over the environment.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "census/population.hpp"
#include "census/snapshot_index.hpp"
#include "core/estimator.hpp"
#include "core/ranking.hpp"
#include "net/interval.hpp"
#include "report/table.hpp"
#include "scan/engine.hpp"
#include "scan/sampled_scope.hpp"

int main(int argc, char** argv) {
  using namespace tass;
  auto config = bench::BenchConfig::from_env();
  std::uint32_t floor = 16;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    if (std::strcmp(argv[i], "--scale") == 0) {
      config.host_scale = std::strtod(argv[i + 1], nullptr);
      continue;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--lprefixes") == 0) {
      config.l_prefix_count = value;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = value;
    } else if (std::strcmp(argv[i], "--floor") == 0) {
      floor = static_cast<std::uint32_t>(value);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_sample [--lprefixes N] "
                   "[--seed S] [--floor F] [--scale H]\n",
                   argv[i]);
      return 2;
    }
  }

  const auto topology = bench::make_topology(config);
  // stdout carries exactly one JSON object (BENCH collection redirects
  // it to a file), so the banner goes to stderr here.
  std::fprintf(stderr,
               "# synthetic world: seed=%" PRIu64 " l_prefixes=%zu "
               "cells=%zu advertised=%.2fB addresses host_scale=%.3f\n",
               config.seed, topology->l_partition.size(),
               topology->m_partition.size(),
               static_cast<double>(topology->advertised_addresses) / 1e9,
               config.host_scale);
  const census::Snapshot snapshot = census::generate_population(
      topology, census::protocol_profile(census::Protocol::kHttps),
      census::PopulationParams{config.host_scale, config.seed + 1});
  const auto ranking =
      core::rank_by_density(snapshot, core::PrefixMode::kMore);
  const census::SnapshotIndex oracle(snapshot);

  scan::SampleParams params;
  params.floor = floor;
  params.seed = config.seed;

  // The exhaustive cost of the same frame anchors the budget ladder (a
  // fixed set of probe-reduction targets) and the efficiency headline.
  params.budget = ~0ull >> 1;
  const std::uint64_t frame_units =
      scan::plan_sample(ranking, params).frame_units;

  std::vector<std::uint64_t> budgets;
  for (const std::uint64_t divisor : {3000ull, 1000ull, 300ull, 100ull,
                                      30ull, 10ull}) {
    const std::uint64_t budget = frame_units / divisor;
    if (budget >= 64) budgets.push_back(budget);
  }
  if (budgets.empty()) budgets.push_back(frame_units);

  const auto curve =
      core::estimate_curve(ranking, oracle, budgets, params);

  report::Table table({"budget", "probes", "truth", "estimated", "error",
                       "probe reduction", "95% CI covers truth"});
  double efficiency = 0.0;
  for (const auto& point : curve) {
    const bool covered = static_cast<double>(point.truth_hosts) >=
                             point.low &&
                         static_cast<double>(point.truth_hosts) <=
                             point.high;
    if (point.error <= 0.05 && point.probe_reduction > efficiency) {
      efficiency = point.probe_reduction;
    }
    table.add_row({report::Table::cell(point.budget),
                   report::Table::cell(point.probes_sent),
                   report::Table::cell(point.truth_hosts),
                   report::Table::cell(point.estimated_hosts, 0),
                   report::Table::cell(point.error, 4),
                   report::Table::cell(point.probe_reduction, 1),
                   covered ? "yes" : "NO"});
  }
  std::fprintf(stderr, "%s", table.to_text().c_str());

  // Correctness leg 1: an engine run over the materialised ScanScope
  // must agree bit-for-bit with the scope's own probe accounting.
  params.budget = budgets[budgets.size() / 2];
  const scan::SampledScope scope(scan::plan_sample(ranking, params));
  const auto probed = scope.probe(
      [&](net::Ipv4Address addr) { return oracle.contains(addr); });
  const scan::ScanEngine engine;
  const scan::SnapshotOracle engine_oracle(snapshot);
  const auto attributed = engine.run_attributed(scope.scope(), engine_oracle,
                                                topology->m_partition);
  if (attributed.result.stats.probes_sent != probed.probes_sent ||
      attributed.result.stats.responses != probed.hits) {
    std::fprintf(stderr,
                 "ENGINE MISMATCH: engine %" PRIu64 "/%" PRIu64
                 " probe %" PRIu64 "/%" PRIu64 "\n",
                 attributed.result.stats.probes_sent,
                 attributed.result.stats.responses, probed.probes_sent,
                 probed.hits);
    return 1;
  }
  const auto folded = scope.attribute(attributed.cell_counts);
  for (std::size_t i = 0; i < folded.cells.size(); ++i) {
    if (folded.cells[i].hits != probed.cells[i].hits) {
      std::fprintf(stderr, "ENGINE MISMATCH in cell %u: %" PRIu64
                           " vs %" PRIu64 "\n",
                   folded.cells[i].cell, folded.cells[i].hits,
                   probed.cells[i].hits);
      return 1;
    }
  }

  // Correctness leg 2: the paper's §5 use case — a uniformly planted
  // "vulnerable" subpopulation estimated from the same sampled probes.
  const auto marked =
      core::mark_hosts(snapshot, 0.05, core::MarkingBias::kUniform,
                       config.seed);
  const census::SnapshotIndex marked_oracle(marked.addresses);
  const auto marked_probe = scope.probe(
      [&](net::Ipv4Address addr) { return oracle.contains(addr); },
      [&](net::Ipv4Address addr) { return marked_oracle.contains(addr); });
  const auto marked_estimate =
      core::estimate_from_sample(marked_probe, ranking);
  std::uint64_t marked_truth = 0;
  for (const auto& cell : scope.design().cells) {
    marked_truth +=
        marked_oracle.count_responsive(net::Interval::of(cell.prefix));
  }
  const double marked_error =
      marked_truth == 0
          ? 0.0
          : std::abs(marked_estimate.estimated_marked -
                     static_cast<double>(marked_truth)) /
                static_cast<double>(marked_truth);
  const bool marked_covered =
      marked_estimate.marked_ci_covers(static_cast<double>(marked_truth));
  std::fprintf(stderr,
               "# marked subpopulation (uniform, 5%%): truth %" PRIu64
               ", estimated %.0f (error %.4f, CI %s)\n"
               "# sample_probe_efficiency: %.1fx probe reduction at <= 5%% "
               "error\n",
               marked_truth, marked_estimate.estimated_marked, marked_error,
               marked_covered ? "covers truth" : "MISSES truth", efficiency);

  // Machine-readable record for BENCH tracking (one JSON object).
  std::printf(
      "{\"bench\":\"micro_sample\",\"l_prefixes\":%zu,\"host_scale\":%.4f,"
      "\"seed\":%" PRIu64 ",\"floor\":%u,\"frame_units\":%" PRIu64
      ",\"sample_probe_efficiency\":%.2f,\"marked_error\":%.4f,"
      "\"marked_ci_covers\":%s,\"curve\":[",
      config.l_prefix_count, config.host_scale, config.seed, floor,
      frame_units, efficiency, marked_error,
      marked_covered ? "true" : "false");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const auto& point = curve[i];
    std::printf("%s{\"budget\":%" PRIu64 ",\"probes\":%" PRIu64
                ",\"truth_hosts\":%" PRIu64 ",\"estimated\":%.1f,"
                "\"low\":%.1f,\"high\":%.1f,\"error\":%.4f,"
                "\"probe_reduction\":%.2f}",
                i == 0 ? "" : ",", point.budget, point.probes_sent,
                point.truth_hosts, point.estimated_hosts, point.low,
                point.high, point.error, point.probe_reduction);
  }
  std::printf("]}\n");
  return 0;
}
