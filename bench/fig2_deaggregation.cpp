// Reproduces Figure 2: deaggregation of a less-specific prefix around an
// announced more-specific. The paper's example: a /8 containing an
// announced /12 decomposes into {/9, /10, /11, /12-sibling, /12} (panel b).
// Also reports deaggregation statistics over the synthetic BGP table
// (paper section 3.2: 595,644 prefixes, 54% m-prefixes, 34.4% of space).
#include <cstdio>

#include "bench_common.hpp"
#include "bgp/deaggregate.hpp"
#include "report/table.hpp"

int main() {
  using namespace tass;

  std::printf("# Figure 2: l-prefix deaggregation around m-prefixes\n\n");
  const net::Prefix l_prefix = net::Prefix::parse_or_throw("100.0.0.0/8");
  const net::Prefix m_prefix = net::Prefix::parse_or_throw("100.0.0.0/12");
  std::printf("l-prefix %s with announced m-prefix %s decomposes into:\n",
              l_prefix.to_string().c_str(), m_prefix.to_string().c_str());
  const auto tiles = bgp::deaggregate(l_prefix, {{m_prefix}});
  for (const net::Prefix tile : tiles) {
    std::printf("  %s%s\n", tile.to_string().c_str(),
                tile == m_prefix ? "   <- the announced m-prefix" : "");
  }

  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  const auto stats = topology->table.stats();
  std::printf("\n# deaggregation statistics over the synthetic table\n");
  report::Table table({"quantity", "value"});
  table.add_row({"announced prefixes", report::Table::cell(
                                           static_cast<std::uint64_t>(
                                               stats.prefix_count))});
  table.add_row(
      {"m-prefixes (more specific)",
       report::Table::cell(static_cast<std::uint64_t>(stats.m_prefix_count))});
  table.add_row({"m-prefix fraction (paper: 0.54)",
                 report::Table::cell(stats.m_prefix_fraction, 3)});
  table.add_row({"m-prefix space fraction (paper: 0.344)",
                 report::Table::cell(stats.m_prefix_space_fraction, 3)});
  table.add_row({"l-partition cells",
                 report::Table::cell(
                     static_cast<std::uint64_t>(topology->l_partition.size()))});
  table.add_row({"m-partition cells after deaggregation",
                 report::Table::cell(
                     static_cast<std::uint64_t>(topology->m_partition.size()))});
  table.add_row({"advertised addresses",
                 report::Table::cell(topology->advertised_addresses)});
  std::printf("%s", table.to_text().c_str());
  return 0;
}
