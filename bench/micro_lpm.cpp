// LPM substrate micro-benchmark: legacy bitwise PrefixTrie vs the flat
// trie::LpmIndex, on a full-RIB-sized synthetic table (~700k prefixes with
// a realistic length distribution).
//
// Plain executable (no google-benchmark dependency) so it always builds
// and can double as a ctest smoke test. Prints one machine-readable JSON
// object on stdout for BENCH tracking; human-readable notes go to stderr.
// Exits non-zero if the two engines ever disagree — the benchmark is also
// a sampled correctness check.
//
// Usage: micro_lpm [--prefixes N] [--lookups M] [--seed S]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/prefix.hpp"
#include "trie/lpm_index.hpp"
#include "trie/prefix_trie.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// RIB-shaped prefix table: bulk in /16../24 (half of a real table is /24),
// a few short covers, a thin tail of more-specifics.
std::vector<trie::LpmIndex::Entry> synthesize_table(std::size_t count,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trie::LpmIndex::Entry> table;
  table.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.03) {
      length = 8 + static_cast<int>(rng.bounded(7));
    } else if (roll < 0.45) {
      length = 15 + static_cast<int>(rng.bounded(7));
    } else if (roll < 0.98) {
      length = 22 + static_cast<int>(rng.bounded(3));
    } else {
      length = 25 + static_cast<int>(rng.bounded(8));
    }
    const auto network = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    table.push_back({net::Prefix(net::Ipv4Address(network), length),
                     static_cast<std::uint32_t>(i & 0xffffff)});
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 700'000;
  std::size_t lookup_count = 5'000'000;
  std::uint64_t seed = 2016;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--lookups") == 0) {
      lookup_count = value;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_lpm [--prefixes N] "
                   "[--lookups M] [--seed S]\n",
                   argv[i]);
      return 2;
    }
  }
  // Degenerate sizes would divide by zero-duration timings (and an empty
  // lookup set has no .back()); clamp to something measurable.
  if (prefix_count == 0) prefix_count = 1;
  if (lookup_count == 0) lookup_count = 1;

  const auto table = synthesize_table(prefix_count, seed);

  auto start = std::chrono::steady_clock::now();
  trie::PrefixTrie<std::uint32_t> legacy;
  for (const auto& entry : table) legacy.insert(entry.prefix, entry.value);
  const double legacy_build_ms = ms_since(start);

  start = std::chrono::steady_clock::now();
  const trie::LpmIndex index(table);
  const double lpm_build_ms = ms_since(start);

  // One shared address stream, pre-generated so the RNG is out of the
  // timed loops.
  util::Rng addr_rng(util::mix64(seed, 99));
  std::vector<std::uint32_t> addresses(lookup_count);
  for (auto& a : addresses) {
    a = static_cast<std::uint32_t>(addr_rng.bounded(1ULL << 32));
  }

  // Sampled agreement check before timing anything.
  for (std::size_t i = 0; i < addresses.size(); i += 37) {
    const net::Ipv4Address addr(addresses[i]);
    const auto match = legacy.longest_match(addr);
    const std::uint32_t want =
        match ? match->second : trie::LpmIndex::kNoMatch;
    if (index.lookup(addr) != want) {
      std::fprintf(stderr, "MISMATCH at %s: lpm=%u legacy=%u\n",
                   addr.to_string().c_str(), index.lookup(addr), want);
      return 1;
    }
  }

  std::uint64_t sink = 0;

  start = std::chrono::steady_clock::now();
  for (const std::uint32_t a : addresses) {
    const auto match = legacy.longest_match(net::Ipv4Address(a));
    sink += match ? match->second : 0;
  }
  const double legacy_lookup_ms = ms_since(start);

  start = std::chrono::steady_clock::now();
  for (const std::uint32_t a : addresses) {
    const std::uint32_t value = index.lookup(net::Ipv4Address(a));
    sink += value != trie::LpmIndex::kNoMatch ? value : 0;
  }
  const double lpm_lookup_ms = ms_since(start);

  std::vector<std::uint32_t> batched(addresses.size());
  start = std::chrono::steady_clock::now();
  index.lookup_many(addresses, batched);
  const double lpm_batch_ms = ms_since(start);
  sink += batched.back();

  const double n = static_cast<double>(lookup_count);
  const double legacy_rate = n / (legacy_lookup_ms / 1e3);
  const double lpm_rate = n / (lpm_lookup_ms / 1e3);
  const double batch_rate = n / (lpm_batch_ms / 1e3);

  std::fprintf(stderr,
               "# %zu prefixes, %zu lookups (sink=%" PRIu64 ")\n"
               "# legacy trie : build %.1f ms, %.2f M lookups/s\n"
               "# LpmIndex    : build %.1f ms, %.2f M lookups/s "
               "(batched %.2f M/s), %.1f MiB, speedup %.1fx\n",
               prefix_count, lookup_count, sink, legacy_build_ms,
               legacy_rate / 1e6, lpm_build_ms, lpm_rate / 1e6,
               batch_rate / 1e6,
               static_cast<double>(index.memory_bytes()) / (1024 * 1024),
               lpm_rate / legacy_rate);

  // Machine-readable record for BENCH tracking (one JSON object).
  std::printf(
      "{\"bench\":\"micro_lpm\",\"prefixes\":%zu,\"lookups\":%zu,"
      "\"seed\":%" PRIu64 ",\"legacy_build_ms\":%.3f,"
      "\"legacy_lookups_per_sec\":%.0f,\"lpm_build_ms\":%.3f,"
      "\"lpm_lookups_per_sec\":%.0f,\"lpm_batch_lookups_per_sec\":%.0f,"
      "\"lpm_memory_bytes\":%zu,\"lpm_nodes\":%zu,\"lpm_leaves\":%zu,"
      "\"speedup\":%.2f}\n",
      prefix_count, lookup_count, seed, legacy_build_ms, legacy_rate,
      lpm_build_ms, lpm_rate, batch_rate, index.memory_bytes(),
      index.node_count(), index.leaf_count(), lpm_rate / legacy_rate);
  return 0;
}
