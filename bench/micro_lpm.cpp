// LPM substrate micro-benchmark: legacy bitwise PrefixTrie vs the flat
// trie::LpmIndex, on a full-RIB-sized synthetic table (~700k prefixes with
// a realistic length distribution).
//
// Plain executable (no google-benchmark dependency) so it always builds
// and can double as a ctest smoke test. Prints one machine-readable JSON
// object on stdout for BENCH tracking; human-readable notes go to stderr.
// Exits non-zero if the two engines ever disagree — the benchmark is also
// a sampled correctness check.
//
// Usage: micro_lpm [--prefixes N] [--lookups M] [--seed S]
//                  [--kernel auto|scalar|simd]
//
// --kernel pins the batch kernel table: `scalar` times only the
// reference walk, `simd` requires the AVX2 kernel (exiting 77 — the
// ctest skip code — when the binary or machine cannot run it), `auto`
// (default) times the SIMD leg whenever the hardware supports it. The
// SIMD leg re-verifies bit-identity against the scalar kernel's output
// on every timed iteration.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/prefix.hpp"
#include "trie/lpm_index.hpp"
#include "trie/lpm_kernels.hpp"
#include "trie/prefix_trie.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace {

using namespace tass;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// RIB-shaped prefix table: bulk in /16../24 (half of a real table is /24),
// a few short covers, a thin tail of more-specifics.
std::vector<trie::LpmIndex::Entry> synthesize_table(std::size_t count,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trie::LpmIndex::Entry> table;
  table.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.03) {
      length = 8 + static_cast<int>(rng.bounded(7));
    } else if (roll < 0.45) {
      length = 15 + static_cast<int>(rng.bounded(7));
    } else if (roll < 0.98) {
      length = 22 + static_cast<int>(rng.bounded(3));
    } else {
      length = 25 + static_cast<int>(rng.bounded(8));
    }
    const auto network = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    table.push_back({net::Prefix(net::Ipv4Address(network), length),
                     static_cast<std::uint32_t>(i & 0xffffff)});
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t prefix_count = 700'000;
  std::size_t lookup_count = 5'000'000;
  std::uint64_t seed = 2016;
  std::string kernel_choice = "auto";
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for '%s'\n", argv[i]);
      return 2;
    }
    if (std::strcmp(argv[i], "--kernel") == 0) {
      kernel_choice = argv[i + 1];
      if (kernel_choice != "auto" && kernel_choice != "scalar" &&
          kernel_choice != "simd") {
        std::fprintf(stderr, "--kernel must be auto|scalar|simd, got '%s'\n",
                     argv[i + 1]);
        return 2;
      }
      continue;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0') {
      std::fprintf(stderr, "not a number: '%s'\n", argv[i + 1]);
      return 2;
    }
    if (std::strcmp(argv[i], "--prefixes") == 0) {
      prefix_count = value;
    } else if (std::strcmp(argv[i], "--lookups") == 0) {
      lookup_count = value;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: micro_lpm [--prefixes N] "
                   "[--lookups M] [--seed S] "
                   "[--kernel auto|scalar|simd]\n",
                   argv[i]);
      return 2;
    }
  }
  // Degenerate sizes would divide by zero-duration timings (and an empty
  // lookup set has no .back()); clamp to something measurable.
  if (prefix_count == 0) prefix_count = 1;
  if (lookup_count == 0) lookup_count = 1;

  const auto table = synthesize_table(prefix_count, seed);

  auto start = std::chrono::steady_clock::now();
  trie::PrefixTrie<std::uint32_t> legacy;
  for (const auto& entry : table) legacy.insert(entry.prefix, entry.value);
  const double legacy_build_ms = ms_since(start);

  start = std::chrono::steady_clock::now();
  const trie::LpmIndex index(table);
  const double lpm_build_ms = ms_since(start);

  // One shared address stream, pre-generated so the RNG is out of the
  // timed loops.
  util::Rng addr_rng(util::mix64(seed, 99));
  std::vector<std::uint32_t> addresses(lookup_count);
  for (auto& a : addresses) {
    a = static_cast<std::uint32_t>(addr_rng.bounded(1ULL << 32));
  }

  // Sampled agreement check before timing anything.
  for (std::size_t i = 0; i < addresses.size(); i += 37) {
    const net::Ipv4Address addr(addresses[i]);
    const auto match = legacy.longest_match(addr);
    const std::uint32_t want =
        match ? match->second : trie::LpmIndex::kNoMatch;
    if (index.lookup(addr) != want) {
      std::fprintf(stderr, "MISMATCH at %s: lpm=%u legacy=%u\n",
                   addr.to_string().c_str(), index.lookup(addr), want);
      return 1;
    }
  }

  std::uint64_t sink = 0;

  start = std::chrono::steady_clock::now();
  for (const std::uint32_t a : addresses) {
    const auto match = legacy.longest_match(net::Ipv4Address(a));
    sink += match ? match->second : 0;
  }
  const double legacy_lookup_ms = ms_since(start);

  start = std::chrono::steady_clock::now();
  for (const std::uint32_t a : addresses) {
    const std::uint32_t value = index.lookup(net::Ipv4Address(a));
    sink += value != trie::LpmIndex::kNoMatch ? value : 0;
  }
  const double lpm_lookup_ms = ms_since(start);

  // Kernel-table setup. `simd` means the AVX2 gather kernel for v4; it
  // needs both a binary built with AVX2 support and a CPU that has it.
  const auto& simd_table = trie::lpm_kernel_table<net::Ipv4Family>(
      util::cpu::SimdLevel::kAvx2);
  const bool simd_compiled = std::strcmp(simd_table.name, "avx2") == 0;
  const util::cpu::Features features = util::cpu::probe();
  bool run_simd = false;
  if (kernel_choice == "simd") {
    if (!simd_compiled || !features.avx2) {
      std::fprintf(stderr,
                   "SKIP: --kernel simd but the AVX2 kernel is "
                   "unavailable (compiled=%d, cpu avx2=%d)\n",
                   simd_compiled ? 1 : 0, features.avx2 ? 1 : 0);
      return 77;  // ctest SKIP_RETURN_CODE
    }
    run_simd = true;
  } else if (kernel_choice == "auto") {
    // Honour TASS_FORCE_SCALAR in auto mode so sanitizer jobs keep
    // exercising only the reference path; an explicit --kernel simd
    // overrides it.
    run_simd = simd_compiled && features.avx2 && !features.forced_scalar;
  }

  // Batched runs: the scalar and SIMD legs INTERLEAVE (scalar, simd,
  // scalar, simd, ...) so both kernels sample the same machine
  // conditions — on shared hardware, timing one leg after the other
  // folds frequency/steal-time drift into the ratio. Best of
  // kBatchIters per leg is the reported number, and the SIMD output is
  // compared word-for-word against the scalar kernel's on EVERY
  // iteration — the bench is also a differential test.
  constexpr int kBatchIters = 5;
  std::vector<std::uint32_t> batched(addresses.size());
  std::vector<std::uint32_t> simd_out;
  if (run_simd) simd_out.resize(addresses.size());
  double lpm_batch_ms = 0;
  double simd_batch_ms = 0;
  for (int iter = 0; iter < kBatchIters; ++iter) {
    start = std::chrono::steady_clock::now();
    index.lookup_many(addresses, batched, util::cpu::SimdLevel::kScalar);
    const double scalar_elapsed = ms_since(start);
    if (iter == 0 || scalar_elapsed < lpm_batch_ms) {
      lpm_batch_ms = scalar_elapsed;
    }
    if (!run_simd) continue;
    start = std::chrono::steady_clock::now();
    index.lookup_many(addresses, simd_out, util::cpu::SimdLevel::kAvx2);
    const double simd_elapsed = ms_since(start);
    if (iter == 0 || simd_elapsed < simd_batch_ms) {
      simd_batch_ms = simd_elapsed;
    }
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      if (simd_out[i] != batched[i]) {
        std::fprintf(stderr,
                     "SIMD MISMATCH (iter %d) at %s: avx2=%u scalar=%u\n",
                     iter,
                     net::Ipv4Address(addresses[i]).to_string().c_str(),
                     simd_out[i], batched[i]);
        return 1;
      }
    }
  }
  sink += batched.back();
  if (run_simd) sink += simd_out.back();

  const double n = static_cast<double>(lookup_count);
  const double legacy_rate = n / (legacy_lookup_ms / 1e3);
  const double lpm_rate = n / (lpm_lookup_ms / 1e3);
  const double batch_rate = n / (lpm_batch_ms / 1e3);
  const double simd_rate = run_simd ? n / (simd_batch_ms / 1e3) : 0;
  // The production batch path is whichever kernel dispatch would pick;
  // the scalar batch rate stays reported on its own key either way.
  const double headline_batch_rate = run_simd ? simd_rate : batch_rate;

  std::fprintf(stderr,
               "# %zu prefixes, %zu lookups (sink=%" PRIu64 ")\n"
               "# legacy trie : build %.1f ms, %.2f M lookups/s\n"
               "# LpmIndex    : build %.1f ms, %.2f M lookups/s "
               "(batched %.2f M/s), %.1f MiB, speedup %.1fx\n",
               prefix_count, lookup_count, sink, legacy_build_ms,
               legacy_rate / 1e6, lpm_build_ms, lpm_rate / 1e6,
               batch_rate / 1e6,
               static_cast<double>(index.memory_bytes()) / (1024 * 1024),
               lpm_rate / legacy_rate);
  if (run_simd) {
    std::fprintf(stderr,
                 "# %s kernel : batched %.2f M lookups/s, %.2fx over the "
                 "scalar batch (bit-identical on %d iterations)\n",
                 simd_table.name, simd_rate / 1e6, simd_rate / batch_rate,
                 kBatchIters);
  }

  // Machine-readable record for BENCH tracking (one JSON object). The
  // SIMD keys appear only when the SIMD leg actually ran, so a baseline
  // from a non-AVX2 host never carries misleading zeros.
  std::printf(
      "{\"bench\":\"micro_lpm\",\"prefixes\":%zu,\"lookups\":%zu,"
      "\"seed\":%" PRIu64 ",\"legacy_build_ms\":%.3f,"
      "\"legacy_lookups_per_sec\":%.0f,\"lpm_build_ms\":%.3f,"
      "\"lpm_lookups_per_sec\":%.0f,\"lpm_batch_lookups_per_sec\":%.0f,"
      "\"lpm_scalar_batch_lookups_per_sec\":%.0f,"
      "\"lpm_memory_bytes\":%zu,\"lpm_nodes\":%zu,\"lpm_leaves\":%zu,"
      "\"speedup\":%.2f",
      prefix_count, lookup_count, seed, legacy_build_ms, legacy_rate,
      lpm_build_ms, lpm_rate, headline_batch_rate, batch_rate,
      index.memory_bytes(), index.node_count(), index.leaf_count(),
      lpm_rate / legacy_rate);
  if (run_simd) {
    std::printf(",\"lpm_simd_lookups_per_sec\":%.0f,"
                "\"lpm_simd_speedup\":%.2f,\"simd_kernel\":\"%s\"",
                simd_rate, simd_rate / batch_rate, simd_table.name);
  }
  std::printf(",\"kernel\":\"%s\"}\n", run_simd ? simd_table.name : "scalar");
  return 0;
}
