// Ablation: is density the right ranking key? (DESIGN.md design-choice
// index.) The paper sorts prefixes by density (hosts per address); this
// bench compares, at equal host coverage, the address-space cost of
// alternative orderings:
//
//   * density      — the paper's choice (step 3 of the algorithm)
//   * host-count   — most responsive prefixes first, ignoring their size
//   * space-asc    — smallest prefixes first, ignoring their host count
//   * random       — no ordering information at all
//
// Expected: density dominates every alternative at every phi.
#include <cstdio>

#include "bench_common.hpp"
#include "core/ranking.hpp"
#include "core/selection.hpp"
#include "report/table.hpp"

int main() {
  using namespace tass;
  const auto config = bench::BenchConfig::from_env();
  const auto topology = bench::make_topology(config);
  bench::print_world_banner(config, *topology);
  std::printf("# Ablation: space coverage by ranking order (m-prefixes)\n\n");

  const struct {
    core::RankingOrder order;
    const char* name;
  } kOrders[] = {
      {core::RankingOrder::kDensity, "density (paper)"},
      {core::RankingOrder::kHostCount, "host-count"},
      {core::RankingOrder::kSpaceAscending, "space-asc"},
      {core::RankingOrder::kRandom, "random"},
  };

  for (const census::Protocol protocol : census::paper_protocols()) {
    const auto series = bench::make_series(topology, protocol, config);
    const auto ranking =
        core::rank_by_density(series.month(0), core::PrefixMode::kMore);

    report::Table table({"order", "phi=0.99", "phi=0.95", "phi=0.7",
                         "phi=0.5"});
    for (const auto& [order, name] : kOrders) {
      std::vector<std::string> row{name};
      for (const double phi : {0.99, 0.95, 0.7, 0.5}) {
        core::SelectionParams params;
        params.phi = phi;
        const auto selection =
            core::select_with_order(ranking, params, order, config.seed);
        row.push_back(report::Table::cell(selection.space_coverage(), 3));
      }
      table.add_row(std::move(row));
    }
    std::printf("[%s]\n%s\n", census::protocol_name(protocol).data(),
                table.to_text().c_str());
  }
  return 0;
}
