// Calibration suite: asserts the DESIGN.md section 5 shape-fidelity
// targets on a mid-size synthetic world, so regressions in the generative
// model (topology, population, churn) are caught by CI rather than by
// eyeballing bench output. Tolerances are deliberately loose — the paper's
// *shape* is the contract, not its third decimal.
#include <gtest/gtest.h>

#include <map>

#include "core/evaluate.hpp"

namespace tass {
namespace {

using census::Protocol;
using core::PrefixMode;

struct World {
  std::shared_ptr<const census::Topology> topology;
  std::map<Protocol, census::CensusSeries> series;
};

const World& world() {
  static const World instance = [] {
    census::TopologyParams topo_params;
    topo_params.seed = 2016;
    topo_params.l_prefix_count = 3000;
    World w{census::generate_topology(topo_params), {}};
    census::SeriesParams params;
    params.months = 7;
    params.host_scale = 0.008;
    params.seed = 2017;
    for (const Protocol protocol : census::paper_protocols()) {
      w.series.emplace(protocol, census::CensusSeries::generate(
                                     w.topology, protocol, params));
    }
    return w;
  }();
  return instance;
}

double space_at_phi(Protocol protocol, PrefixMode mode, double phi) {
  const auto ranking =
      core::rank_by_density(world().series.at(protocol).month(0), mode);
  core::SelectionParams params;
  params.phi = phi;
  return core::select_by_density(ranking, params).space_coverage();
}

TEST(Calibration, FullScanHitratesAreUnderTwoPercent) {
  // "Hitrates ... are very often under two percent" (section 1).
  for (const Protocol protocol : census::paper_protocols()) {
    const auto& seed = world().series.at(protocol).month(0);
    const double hitrate =
        static_cast<double>(seed.total_hosts()) /
        static_cast<double>(world().topology->advertised_addresses);
    EXPECT_LT(hitrate, 0.02) << census::protocol_name(protocol);
    EXPECT_GT(hitrate, 0.00001) << census::protocol_name(protocol);
  }
}

TEST(Calibration, Table1MorePrefixColumnTracksThePaper) {
  // Paper Table 1, m-prefixes; tolerance +-0.06 absolute.
  const struct {
    Protocol protocol;
    double phi;
    double paper;
  } targets[] = {
      {Protocol::kFtp, 1.0, 0.574},   {Protocol::kFtp, 0.99, 0.371},
      {Protocol::kFtp, 0.95, 0.206},  {Protocol::kFtp, 0.5, 0.006},
      {Protocol::kHttp, 1.0, 0.648},  {Protocol::kHttp, 0.95, 0.279},
      {Protocol::kHttps, 1.0, 0.645}, {Protocol::kHttps, 0.95, 0.262},
      {Protocol::kCwmp, 1.0, 0.332},  {Protocol::kCwmp, 0.95, 0.085},
  };
  for (const auto& target : targets) {
    EXPECT_NEAR(space_at_phi(target.protocol, PrefixMode::kMore, target.phi),
                target.paper, 0.06)
        << census::protocol_name(target.protocol) << " phi=" << target.phi;
  }
}

TEST(Calibration, LessPrefixColumnShape) {
  // l-granularity costs more space than m at the same phi (Table 1), by
  // roughly the paper's 15-20 points at phi=1.
  for (const Protocol protocol : census::paper_protocols()) {
    const double less = space_at_phi(protocol, PrefixMode::kLess, 1.0);
    const double more = space_at_phi(protocol, PrefixMode::kMore, 1.0);
    EXPECT_GT(less, more) << census::protocol_name(protocol);
    EXPECT_NEAR(less - more, 0.17, 0.12) << census::protocol_name(protocol);
  }
  // CWMP is the most concentrated protocol of the four.
  for (const Protocol protocol :
       {Protocol::kFtp, Protocol::kHttp, Protocol::kHttps}) {
    EXPECT_LT(space_at_phi(Protocol::kCwmp, PrefixMode::kLess, 1.0),
              space_at_phi(protocol, PrefixMode::kLess, 1.0));
  }
}

TEST(Calibration, CoverageKneeIsSteep) {
  // phi 1 -> 0.99 must shed >= 15 points of space (paper: 20-30%).
  for (const Protocol protocol : census::paper_protocols()) {
    const double full = space_at_phi(protocol, PrefixMode::kMore, 1.0);
    const double p99 = space_at_phi(protocol, PrefixMode::kMore, 0.99);
    EXPECT_GT(full - p99, 0.15) << census::protocol_name(protocol);
  }
}

TEST(Calibration, HitlistDecayMatchesFigure5) {
  for (const Protocol protocol : census::paper_protocols()) {
    const auto& series = world().series.at(protocol);
    const auto evaluation =
        core::evaluate(core::HitlistStrategy(series.month(0)), series);
    const double month1 = evaluation.cycles[1].hitrate();
    const double month6 = evaluation.cycles[6].hitrate();
    if (protocol == Protocol::kCwmp) {
      EXPECT_LT(month1, 0.70);
      EXPECT_NEAR(month6, 0.43, 0.07);
    } else {
      EXPECT_NEAR(month1, 0.80, 0.04) << census::protocol_name(protocol);
      EXPECT_NEAR(month6, 0.72, 0.05) << census::protocol_name(protocol);
    }
  }
}

TEST(Calibration, TassDecayMatchesFigure6) {
  for (const Protocol protocol : census::paper_protocols()) {
    const auto& series = world().series.at(protocol);
    core::SelectionParams params;
    params.phi = 1.0;

    const core::TassStrategy less(series.month(0), PrefixMode::kLess,
                                  params);
    const auto less_eval = core::evaluate(less, series);
    const double less_decay =
        (1.0 - less_eval.cycles[6].hitrate()) / 6.0;
    // "about 0.3 percent per month" for l-prefixes.
    EXPECT_GT(less_decay, 0.001) << census::protocol_name(protocol);
    EXPECT_LT(less_decay, 0.006) << census::protocol_name(protocol);

    const core::TassStrategy more(series.month(0), PrefixMode::kMore,
                                  params);
    const auto more_eval = core::evaluate(more, series);
    const double more_decay =
        (1.0 - more_eval.cycles[6].hitrate()) / 6.0;
    // m-prefixes decay faster, up to ~0.7%/month (CWMP).
    EXPECT_GE(more_decay, less_decay - 0.0005)
        << census::protocol_name(protocol);
    EXPECT_LT(more_decay, 0.009) << census::protocol_name(protocol);
    if (protocol == Protocol::kCwmp) {
      EXPECT_GT(more_decay, 0.005);
    }
  }
}

TEST(Calibration, Phi95BandMatchesFigure6b) {
  // phi = 0.95 keeps hitrate in the 0.90-0.96 band over six months.
  for (const Protocol protocol : census::paper_protocols()) {
    const auto& series = world().series.at(protocol);
    core::SelectionParams params;
    params.phi = 0.95;
    for (const PrefixMode mode : {PrefixMode::kLess, PrefixMode::kMore}) {
      const core::TassStrategy strategy(series.month(0), mode, params);
      const auto evaluation = core::evaluate(strategy, series);
      EXPECT_NEAR(evaluation.cycles[0].hitrate(), 0.95, 0.01);
      EXPECT_GT(evaluation.cycles[6].hitrate(), 0.88)
          << census::protocol_name(protocol);
      EXPECT_LT(evaluation.cycles[6].hitrate(), 0.96)
          << census::protocol_name(protocol);
    }
  }
}

TEST(Calibration, HeadlineEfficiencyBand) {
  // "1.25 to 10 times more efficient" at single-digit coverage loss.
  for (const Protocol protocol : census::paper_protocols()) {
    const auto& series = world().series.at(protocol);
    core::SelectionParams params;
    params.phi = 0.95;
    const core::TassStrategy strategy(series.month(0), PrefixMode::kMore,
                                      params);
    const auto evaluation = core::evaluate(strategy, series);
    EXPECT_GT(evaluation.efficiency_vs_full(), 1.25)
        << census::protocol_name(protocol);
    EXPECT_LT(evaluation.efficiency_vs_full(), 20.0)
        << census::protocol_name(protocol);
    EXPECT_GT(evaluation.cycles[6].hitrate(), 0.88);
  }
}

TEST(Calibration, Figure3HistogramsAreStableAcrossMonths) {
  const auto& series = world().series.at(Protocol::kFtp);
  const auto first =
      core::hosts_by_prefix_length(series.month(0), PrefixMode::kLess);
  const auto last =
      core::hosts_by_prefix_length(series.month(6), PrefixMode::kLess);
  for (int length = 8; length <= 24; ++length) {
    const auto index = static_cast<std::size_t>(length);
    if (first[index] < 500) continue;  // skip noise-dominated buckets
    const double drift =
        std::abs(static_cast<double>(last[index]) -
                 static_cast<double>(first[index])) /
        static_cast<double>(first[index]);
    EXPECT_LT(drift, 0.15) << "length /" << length;
  }
}

TEST(Calibration, Figure3MoreSpecificHistogramIsRightShifted) {
  const auto& seed = world().series.at(Protocol::kHttps).month(0);
  const auto less = core::hosts_by_prefix_length(seed, PrefixMode::kLess);
  const auto more = core::hosts_by_prefix_length(seed, PrefixMode::kMore);
  const auto mean_length = [](const std::array<std::uint64_t, 33>& hist) {
    double weighted = 0;
    double total = 0;
    for (std::size_t length = 0; length < hist.size(); ++length) {
      weighted += static_cast<double>(hist[length]) *
                  static_cast<double>(length);
      total += static_cast<double>(hist[length]);
    }
    return weighted / total;
  };
  EXPECT_GT(mean_length(more), mean_length(less) + 0.5);
}

}  // namespace
}  // namespace tass
