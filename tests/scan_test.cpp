// Tests for scan/blocklist, scan/scope and scan/engine: exclusion parsing,
// scope algebra and the simulated scan paths (permutation vs enumeration).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "census/population.hpp"
#include "core/attribution.hpp"
#include "scan/blocklist.hpp"
#include "scan/engine.hpp"
#include "scan/scope.hpp"
#include "util/error.hpp"

namespace tass::scan {
namespace {

using net::Ipv4Address;
using net::Prefix;

TEST(Blocklist, ParsesAllLineForms) {
  const Blocklist blocklist = Blocklist::parse(
      "# header comment\n"
      "192.0.2.0/24\n"
      "198.51.100.7       # single address\n"
      "10.0.0.0-10.0.0.255\n"
      "\n");
  EXPECT_TRUE(blocklist.blocks(Ipv4Address::parse_or_throw("192.0.2.99")));
  EXPECT_TRUE(blocklist.blocks(Ipv4Address::parse_or_throw("198.51.100.7")));
  EXPECT_FALSE(blocklist.blocks(Ipv4Address::parse_or_throw("198.51.100.8")));
  EXPECT_TRUE(blocklist.blocks(Ipv4Address::parse_or_throw("10.0.0.128")));
  EXPECT_FALSE(blocklist.blocks(Ipv4Address::parse_or_throw("10.0.1.0")));
  EXPECT_EQ(blocklist.blocked_addresses(), 256u + 1 + 256);
}

TEST(Blocklist, RejectsMalformedLines) {
  EXPECT_THROW(Blocklist::parse("not-an-entry"), ParseError);
  EXPECT_THROW(Blocklist::parse("10.0.0.9-10.0.0.1"), ParseError);
  EXPECT_THROW(Blocklist::parse("10.0.0.0/33"), ParseError);
}

TEST(Blocklist, DefaultBlocksSpecialUse) {
  const Blocklist blocklist = Blocklist::default_blocklist();
  EXPECT_TRUE(blocklist.blocks(Ipv4Address::parse_or_throw("10.1.2.3")));
  EXPECT_TRUE(blocklist.blocks(Ipv4Address::parse_or_throw("127.0.0.1")));
  EXPECT_TRUE(blocklist.blocks(Ipv4Address::parse_or_throw("224.0.0.1")));
  EXPECT_FALSE(blocklist.blocks(Ipv4Address::parse_or_throw("8.8.8.8")));
}

TEST(Blocklist, LoadsFromFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "tass_blocklist_test.txt";
  {
    std::ofstream out(path);
    out << "# test\n172.16.0.0/12\n";
  }
  const Blocklist blocklist = Blocklist::load(path.string());
  EXPECT_TRUE(blocklist.blocks(Ipv4Address::parse_or_throw("172.20.0.1")));
  std::filesystem::remove(path);
  EXPECT_THROW(Blocklist::load(path.string()), Error);
}

TEST(ScanScope, SubtractsBlocklistFromWhitelist) {
  Blocklist blocklist;
  blocklist.add(Prefix::parse_or_throw("10.0.0.0/10"));
  const std::vector<Prefix> whitelist = {
      Prefix::parse_or_throw("10.0.0.0/8")};
  const ScanScope scope(whitelist, blocklist);
  EXPECT_EQ(scope.address_count(), (1ULL << 24) - (1ULL << 22));
  EXPECT_FALSE(scope.contains(Ipv4Address::parse_or_throw("10.10.0.1")));
  EXPECT_TRUE(scope.contains(Ipv4Address::parse_or_throw("10.64.0.1")));
  EXPECT_FALSE(scope.contains(Ipv4Address::parse_or_throw("11.0.0.1")));
}

class CountingOracle final : public ProbeOracle {
 public:
  explicit CountingOracle(std::vector<std::uint32_t> responsive)
      : responsive_(std::move(responsive)) {}
  bool responds(Ipv4Address addr) const override {
    ++probes_;
    return std::binary_search(responsive_.begin(), responsive_.end(),
                              addr.value());
  }
  mutable std::uint64_t probes_ = 0;

 private:
  std::vector<std::uint32_t> responsive_;
};

TEST(ScanEngine, PermutationAndEnumerationAgree) {
  const std::vector<Prefix> whitelist = {
      Prefix::parse_or_throw("100.64.8.0/22"),
      Prefix::parse_or_throw("100.96.0.0/24")};
  const ScanScope scope(whitelist, Blocklist{});

  std::vector<std::uint32_t> responsive;
  for (std::uint32_t i = 0; i < 40; ++i) {
    // Offsets stay below the /22's 1024 addresses so every host is in
    // scope.
    responsive.push_back(
        Prefix::parse_or_throw("100.64.8.0/22").network().value() + i * 25);
  }
  std::sort(responsive.begin(), responsive.end());
  const CountingOracle oracle(responsive);

  EngineConfig permute;
  permute.order = EngineConfig::Order::kPermutation;
  EngineConfig enumerate;
  enumerate.order = EngineConfig::Order::kEnumerate;

  const ScanResult a = ScanEngine(permute).run(scope, oracle);
  const ScanResult b = ScanEngine(enumerate).run(scope, oracle);

  EXPECT_EQ(a.stats.probes_sent, scope.address_count());
  EXPECT_EQ(b.stats.probes_sent, scope.address_count());
  EXPECT_EQ(a.stats.responses, 40u);
  EXPECT_EQ(a.responsive, b.responsive);
  EXPECT_EQ(a.responsive, responsive);
}

TEST(ScanEngine, HitrateAndPackets) {
  const std::vector<Prefix> whitelist = {
      Prefix::parse_or_throw("100.64.0.0/24")};
  const ScanScope scope(whitelist, Blocklist{});
  std::vector<std::uint32_t> responsive = {
      Prefix::parse_or_throw("100.64.0.0/24").network().value() + 3};
  const CountingOracle oracle(responsive);

  EngineConfig config;
  config.order = EngineConfig::Order::kEnumerate;
  config.cost.handshake_packets_per_hit = 10.0;
  const ScanResult result = ScanEngine(config).run(scope, oracle);
  EXPECT_EQ(result.stats.probes_sent, 256u);
  EXPECT_EQ(result.stats.responses, 1u);
  EXPECT_DOUBLE_EQ(result.stats.hitrate(), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(result.stats.packets, 256.0 + 10.0);
  EXPECT_DOUBLE_EQ(result.stats.duration_seconds(128.0), 2.0);
}

TEST(ScanEngine, SnapshotOracleFindsExactlyTheGroundTruth) {
  census::TopologyParams topo_params;
  topo_params.seed = 3;
  topo_params.l_prefix_count = 60;
  const auto topology = census::generate_topology(topo_params);
  census::PopulationParams pop_params;
  pop_params.host_scale = 0.0005;
  const census::Snapshot snapshot = census::generate_population(
      topology, census::protocol_profile(census::Protocol::kHttp),
      pop_params);

  // Scan one occupied cell; the engine must find exactly its hosts.
  const auto counts = snapshot.counts_per_cell();
  std::uint32_t cell = 0;
  while (cell < counts.size() && counts[cell] == 0) ++cell;
  ASSERT_LT(cell, counts.size());
  const net::Prefix target = topology->m_partition.prefix(cell);

  const ScanScope scope(std::vector<net::Prefix>{target}, Blocklist{});
  const SnapshotOracle oracle(snapshot);
  EngineConfig config;
  config.order = EngineConfig::Order::kEnumerate;
  const ScanResult result = ScanEngine(config).run(scope, oracle);
  EXPECT_EQ(result.stats.responses, counts[cell]);
  for (const std::uint32_t addr : result.responsive) {
    EXPECT_TRUE(snapshot.contains(Ipv4Address(addr)));
  }
}

TEST(ScanEngine, AutoModePicksByScopeSize) {
  // Below the threshold kAuto permutes; above it enumerates. Both yield
  // identical results, so we verify via probe ordering: enumeration emits
  // ascending addresses, permutation does not (overwhelmingly likely).
  class OrderRecorder final : public ProbeOracle {
   public:
    bool responds(Ipv4Address addr) const override {
      ordered_ = ordered_ && (probes_.empty() || probes_.back() <= addr.value());
      probes_.push_back(addr.value());
      return false;
    }
    mutable std::vector<std::uint32_t> probes_;
    mutable bool ordered_ = true;
  };

  const ScanScope small_scope(
      std::vector<Prefix>{Prefix::parse_or_throw("100.64.0.0/22")},
      Blocklist{});
  EngineConfig config;
  config.order = EngineConfig::Order::kAuto;
  config.permutation_threshold = 1 << 8;  // 256: the /22 exceeds it

  const OrderRecorder above;
  ScanEngine(config).run(small_scope, above);
  EXPECT_TRUE(above.ordered_);  // enumerated in address order

  config.permutation_threshold = 1 << 20;  // now the /22 is below
  const OrderRecorder below;
  ScanEngine(config).run(small_scope, below);
  EXPECT_FALSE(below.ordered_);  // permuted
  EXPECT_EQ(below.probes_.size(), small_scope.address_count());
}

TEST(ScanEngine, EnumeratedResultsAreSortNormalized) {
  // The enumerate and permutation paths must be interchangeable: both
  // emit `responsive` in ascending order whatever the probe order was.
  census::TopologyParams topo_params;
  topo_params.seed = 12;
  topo_params.l_prefix_count = 70;
  const auto topology = census::generate_topology(topo_params);
  census::PopulationParams pop_params;
  pop_params.host_scale = 0.0008;
  const census::Snapshot snapshot = census::generate_population(
      topology, census::protocol_profile(census::Protocol::kHttp),
      pop_params);

  std::vector<net::Prefix> some_cells;
  for (std::uint32_t cell = 0;
       cell < topology->m_partition.size() && some_cells.size() < 40;
       cell += 3) {
    some_cells.push_back(topology->m_partition.prefix(cell));
  }
  const ScanScope scope(some_cells, Blocklist{});
  const SnapshotOracle oracle(snapshot);

  EngineConfig enumerate;
  enumerate.order = EngineConfig::Order::kEnumerate;
  EngineConfig permute;
  permute.order = EngineConfig::Order::kPermutation;
  const ScanResult a = ScanEngine(enumerate).run(scope, oracle);
  const ScanResult b = ScanEngine(permute).run(scope, oracle);
  EXPECT_TRUE(std::is_sorted(a.responsive.begin(), a.responsive.end()));
  EXPECT_TRUE(std::is_sorted(b.responsive.begin(), b.responsive.end()));
  EXPECT_EQ(a.responsive, b.responsive);
}

TEST(ScanEngine, ResultsAreBitIdenticalAcrossThreadCounts) {
  // The sharded enumerate path must reproduce the sequential result
  // exactly for any thread count: shard boundaries depend only on the
  // scope, and per-shard slots merge in shard order.
  census::TopologyParams topo_params;
  topo_params.seed = 77;
  topo_params.l_prefix_count = 90;
  const auto topology = census::generate_topology(topo_params);
  census::PopulationParams pop_params;
  pop_params.host_scale = 0.001;
  pop_params.seed = 5;
  const census::Snapshot snapshot = census::generate_population(
      topology, census::protocol_profile(census::Protocol::kSsh),
      pop_params);

  // A multi-interval scope: every third m-cell.
  std::vector<net::Prefix> cells;
  for (std::uint32_t cell = 0; cell < topology->m_partition.size();
       cell += 3) {
    cells.push_back(topology->m_partition.prefix(cell));
  }
  const ScanScope scope(cells, Blocklist{});
  const SnapshotOracle oracle(snapshot);

  // Legacy reference: one virtual membership probe per in-scope address.
  ScanResult reference;
  for (const net::Interval& interval : scope.targets().intervals()) {
    const std::uint64_t last = interval.last.value();
    for (std::uint64_t value = interval.first.value(); value <= last;
         ++value) {
      const net::Ipv4Address addr(static_cast<std::uint32_t>(value));
      ++reference.stats.probes_sent;
      if (snapshot.contains(addr)) {
        ++reference.stats.responses;
        reference.responsive.push_back(addr.value());
      }
    }
  }

  EngineConfig config;
  config.order = EngineConfig::Order::kEnumerate;
  config.min_addresses_per_shard = 1 << 10;  // force many shards
  for (const unsigned threads : {1u, 2u, 8u}) {
    config.threads = threads;
    const ScanResult result = ScanEngine(config).run(scope, oracle);
    EXPECT_EQ(result.responsive, reference.responsive)
        << "threads=" << threads;
    EXPECT_EQ(result.stats.probes_sent, reference.stats.probes_sent);
    EXPECT_EQ(result.stats.responses, reference.stats.responses);
  }
}

TEST(ScanEngine, EstimateMatchesRunStats) {
  // estimate() is the count-only twin of the enumerate path: identical
  // probe/hit/packet accounting, no hitlist, any thread count.
  census::TopologyParams topo_params;
  topo_params.seed = 31;
  topo_params.l_prefix_count = 70;
  const auto topology = census::generate_topology(topo_params);
  census::PopulationParams pop_params;
  pop_params.host_scale = 0.001;
  const census::Snapshot snapshot = census::generate_population(
      topology, census::protocol_profile(census::Protocol::kHttps),
      pop_params);

  std::vector<net::Prefix> cells;
  for (std::uint32_t cell = 0; cell < topology->m_partition.size();
       cell += 2) {
    cells.push_back(topology->m_partition.prefix(cell));
  }
  const ScanScope scope(cells, Blocklist{});
  const SnapshotOracle oracle(snapshot);

  EngineConfig config;
  config.order = EngineConfig::Order::kEnumerate;
  config.min_addresses_per_shard = 1 << 10;
  const ScanResult full = ScanEngine(config).run(scope, oracle);
  for (const unsigned threads : {1u, 2u, 8u}) {
    config.threads = threads;
    const ScanStats stats = ScanEngine(config).estimate(scope, oracle);
    EXPECT_EQ(stats.probes_sent, full.stats.probes_sent);
    EXPECT_EQ(stats.responses, full.stats.responses);
    EXPECT_DOUBLE_EQ(stats.packets, full.stats.packets);
  }
}

TEST(ScanEngine, RunAttributedMatchesRunPlusAttribute) {
  // The fused scan+attribution path must produce the same responsive list
  // as run() and the same per-cell counts as a separate core::attribute
  // pass — for any thread count.
  census::TopologyParams topo_params;
  topo_params.seed = 83;
  topo_params.l_prefix_count = 80;
  const auto topology = census::generate_topology(topo_params);
  census::PopulationParams pop_params;
  pop_params.host_scale = 0.001;
  pop_params.seed = 11;
  const census::Snapshot snapshot = census::generate_population(
      topology, census::protocol_profile(census::Protocol::kHttp),
      pop_params);

  std::vector<net::Prefix> cells;
  for (std::uint32_t cell = 0; cell < topology->m_partition.size();
       cell += 2) {
    cells.push_back(topology->m_partition.prefix(cell));
  }
  const ScanScope scope(cells, Blocklist{});
  const SnapshotOracle oracle(snapshot);

  EngineConfig config;
  config.order = EngineConfig::Order::kEnumerate;
  config.min_addresses_per_shard = 1 << 10;
  const ScanResult plain = ScanEngine(config).run(scope, oracle);
  const core::Attribution reference =
      core::attribute(plain.responsive, topology->m_partition);

  for (const unsigned threads : {1u, 2u, 8u}) {
    config.threads = threads;
    const AttributedScanResult attributed =
        ScanEngine(config).run_attributed(scope, oracle,
                                          topology->m_partition);
    EXPECT_EQ(attributed.result.responsive, plain.responsive)
        << "threads=" << threads;
    EXPECT_EQ(attributed.attributed, reference.attributed);
    EXPECT_EQ(attributed.unattributed, reference.unattributed);
    ASSERT_EQ(attributed.cell_counts.size(), reference.counts.size());
    for (std::size_t i = 0; i < reference.counts.size(); ++i) {
      EXPECT_EQ(attributed.cell_counts[i], reference.counts[i])
          << "cell=" << i << " threads=" << threads;
    }
  }
}

TEST(ScanEngine, DefaultOracleBatchingPreservesPerProbeCounting) {
  // Oracles that do not override the batched API still see exactly one
  // responds() call per in-scope address on the enumerate path.
  const std::vector<Prefix> whitelist = {
      Prefix::parse_or_throw("100.64.0.0/20")};
  const ScanScope scope(whitelist, Blocklist{});
  const CountingOracle oracle({});
  EngineConfig config;
  config.order = EngineConfig::Order::kEnumerate;
  const ScanResult result = ScanEngine(config).run(scope, oracle);
  EXPECT_EQ(oracle.probes_, scope.address_count());
  EXPECT_EQ(result.stats.probes_sent, scope.address_count());
}

TEST(ScanScope, HandlesTopOfAddressSpace) {
  // Regression for inclusive-upper-bound handling: a scope ending at
  // 255.255.255.255 must be containable, countable, and enumerable
  // without the probe loop or the LpmIndex wrapping around.
  net::IntervalSet targets;
  targets.insert(net::Interval{Ipv4Address(0xffffff00u),
                               Ipv4Address(0xffffffffu)});
  const ScanScope scope(targets);
  EXPECT_EQ(scope.address_count(), 256u);
  EXPECT_TRUE(scope.contains(Ipv4Address(0xffffffffu)));
  EXPECT_TRUE(scope.contains(Ipv4Address(0xffffff00u)));
  EXPECT_FALSE(scope.contains(Ipv4Address(0xfffffeffu)));

  const CountingOracle oracle({0xffffff05u, 0xffffffffu});
  EngineConfig config;
  config.order = EngineConfig::Order::kEnumerate;
  const ScanResult result = ScanEngine(config).run(scope, oracle);
  EXPECT_EQ(result.stats.probes_sent, 256u);
  EXPECT_EQ(result.responsive,
            (std::vector<std::uint32_t>{0xffffff05u, 0xffffffffu}));
}

TEST(CostModel, PerProtocolHandshakes) {
  const CostModel ftp = CostModel::for_protocol(census::Protocol::kFtp);
  const CostModel https = CostModel::for_protocol(census::Protocol::kHttps);
  EXPECT_GT(https.handshake_packets_per_hit,
            ftp.handshake_packets_per_hit);  // TLS costs more
  EXPECT_DOUBLE_EQ(ftp.packets(100, 0), 100.0);
}

}  // namespace
}  // namespace tass::scan
