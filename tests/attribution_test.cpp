// Tests for core/attribution and bgp/aggregate: the scan-result-to-prefix
// bridge and CIDR re-aggregation.
#include "bgp/aggregate.hpp"
#include "core/attribution.hpp"
#include "core/selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "census/population.hpp"
#include "census/topology.hpp"
#include "scan/engine.hpp"

namespace tass {
namespace {

using net::Prefix;

Prefix pfx(const char* text) { return Prefix::parse_or_throw(text); }

TEST(Attribution, CountsPerCellAndUnattributed) {
  const bgp::PrefixPartition partition(
      {pfx("10.0.0.0/24"), pfx("10.0.1.0/24")});
  const std::vector<std::uint32_t> addresses = {
      pfx("10.0.0.0/24").network().value() + 1,
      pfx("10.0.0.0/24").network().value() + 2,
      pfx("10.0.1.0/24").network().value() + 9,
      pfx("192.0.2.0/24").network().value(),  // outside the partition
  };
  const auto result = core::attribute(addresses, partition);
  ASSERT_EQ(result.counts.size(), 2u);
  EXPECT_EQ(result.counts[0], 2u);
  EXPECT_EQ(result.counts[1], 1u);
  EXPECT_EQ(result.attributed, 3u);
  EXPECT_EQ(result.unattributed, 1u);
}

TEST(Attribution, RankScanResultsMatchesSnapshotPath) {
  // Ranking a simulated scan's raw address list must equal ranking the
  // snapshot's own counts: the two public pipelines are interchangeable.
  census::TopologyParams params;
  params.seed = 17;
  params.l_prefix_count = 80;
  const auto topo = census::generate_topology(params);
  census::PopulationParams pop;
  pop.host_scale = 0.0005;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(census::Protocol::kFtp), pop);

  const auto addresses = snapshot.addresses();
  const auto from_scan = core::rank_scan_results(
      addresses, topo->m_partition, core::PrefixMode::kMore);
  const auto from_census =
      core::rank_by_density(snapshot, core::PrefixMode::kMore);

  ASSERT_EQ(from_scan.ranked.size(), from_census.ranked.size());
  EXPECT_EQ(from_scan.total_hosts, from_census.total_hosts);
  for (std::size_t i = 0; i < from_scan.ranked.size(); ++i) {
    EXPECT_EQ(from_scan.ranked[i].prefix, from_census.ranked[i].prefix);
    EXPECT_EQ(from_scan.ranked[i].hosts, from_census.ranked[i].hosts);
  }
}

TEST(Attribution, ParallelShardingMatchesSequential) {
  // Per-shard count vectors merged in shard order must equal the
  // single-threaded tally for any thread count.
  census::TopologyParams params;
  params.seed = 29;
  params.l_prefix_count = 100;
  const auto topo = census::generate_topology(params);
  census::PopulationParams pop;
  pop.host_scale = 0.001;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(census::Protocol::kHttps), pop);
  auto addresses = snapshot.addresses();
  // Sprinkle in unrouted addresses so the unattributed tally is exercised.
  addresses.push_back(0x01000001u);
  addresses.push_back(0xFFFFFF01u);
  std::sort(addresses.begin(), addresses.end());

  core::AttributionConfig sequential;
  sequential.threads = 1;
  const auto reference =
      core::attribute(addresses, topo->m_partition, sequential);

  for (const unsigned threads : {0u, 2u, 8u}) {
    core::AttributionConfig config;
    config.threads = threads;
    config.min_addresses_per_shard = 64;  // force real sharding
    const auto parallel =
        core::attribute(addresses, topo->m_partition, config);
    EXPECT_EQ(parallel.counts, reference.counts) << "threads=" << threads;
    EXPECT_EQ(parallel.attributed, reference.attributed);
    EXPECT_EQ(parallel.unattributed, reference.unattributed);
  }
}

TEST(Aggregate, MergesSiblingsAndNesting) {
  const std::vector<Prefix> input = {
      pfx("10.0.0.0/9"), pfx("10.128.0.0/9"),  // siblings -> /8
      pfx("10.0.0.0/16"),                      // nested, absorbed
      pfx("192.168.0.0/24"),
      pfx("192.168.1.0/24"),                   // siblings -> /23
      pfx("172.16.0.0/12"),
  };
  const auto merged = bgp::aggregate(input);
  const std::vector<Prefix> expected = {
      pfx("10.0.0.0/8"), pfx("172.16.0.0/12"), pfx("192.168.0.0/23")};
  EXPECT_EQ(merged, expected);
}

TEST(Aggregate, IdempotentAndExact) {
  const std::vector<Prefix> input = {
      pfx("10.0.0.0/24"), pfx("10.0.2.0/24"), pfx("10.0.1.0/24")};
  const auto once = bgp::aggregate(input);
  const auto twice = bgp::aggregate(once);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(bgp::union_size(input), bgp::union_size(once));
  EXPECT_EQ(bgp::union_size(once), 768u);
  // 10.0.0.0/24 + 10.0.1.0/24 merge to /23; 10.0.2.0/24 stays.
  ASSERT_EQ(once.size(), 2u);
  EXPECT_EQ(once[0], pfx("10.0.0.0/23"));
  EXPECT_EQ(once[1], pfx("10.0.2.0/24"));
}

TEST(Aggregate, UnionSizeDeduplicates) {
  const std::vector<Prefix> overlapping = {
      pfx("10.0.0.0/8"), pfx("10.0.0.0/16"), pfx("10.0.0.0/8")};
  EXPECT_EQ(bgp::union_size(overlapping), 1ULL << 24);
}

TEST(Aggregate, SelectionCompactionPreservesTheScope) {
  // Aggregating a TASS selection must not change the scanned address set.
  census::TopologyParams params;
  params.seed = 23;
  params.l_prefix_count = 120;
  const auto topo = census::generate_topology(params);
  census::PopulationParams pop;
  pop.host_scale = 0.0005;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(census::Protocol::kHttp), pop);
  const auto ranking =
      core::rank_by_density(snapshot, core::PrefixMode::kMore);
  core::SelectionParams sel;
  sel.phi = 0.9;
  const auto selection = core::select_by_density(ranking, sel);

  const auto compact = bgp::aggregate(selection.prefixes);
  EXPECT_LE(compact.size(), selection.prefixes.size());
  EXPECT_EQ(bgp::union_size(compact), selection.selected_addresses);
  EXPECT_EQ(net::IntervalSet::of_prefixes(compact),
            net::IntervalSet::of_prefixes(selection.prefixes));
}

}  // namespace
}  // namespace tass
