// Fault-injection and politeness-budget tests for the stream ingest
// path: MrtFramer resync behaviour under truncation, corruption and
// inter-record garbage, the reactor's classification of hostile or noisy
// updates (overlaps, noops), mid-record EOF on a file-tail source, and
// per-AS pacing with an injected clock.
//
// The framing contract under corruption: for arbitrary feed bytes the
// framer never throws and never crashes; every intact BGP4MP record
// surrounded by corruption is still decoded (resync), and everything
// that is dropped is accounted — decode_errors, resyncs,
// bytes_discarded, truncated_tail — never silently skipped.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bgp/rib_delta.hpp"
#include "net/interval.hpp"
#include "scan/engine.hpp"
#include "stream/framer.hpp"
#include "stream/reactor.hpp"
#include "stream/source.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::stream {
namespace {

bgp::RibDelta announce_delta(
    std::initializer_list<std::pair<const char*, std::uint32_t>> entries) {
  bgp::RibDelta delta;
  for (const auto& [text, origin] : entries) {
    delta.announce.push_back(
        {net::Prefix::parse_or_throw(text), {origin}});
  }
  return delta;
}

bgp::RibDelta withdraw_delta(std::initializer_list<const char*> prefixes) {
  bgp::RibDelta delta;
  for (const char* text : prefixes) {
    delta.withdraw.push_back(net::Prefix::parse_or_throw(text));
  }
  std::sort(delta.withdraw.begin(), delta.withdraw.end());
  return delta;
}

std::vector<std::byte> wire_of(const bgp::RibDelta& delta,
                               std::uint32_t timestamp = 1441584000) {
  return bgp::encode_mrt_updates(delta, timestamp);
}

/// End offsets of every MRT record in `wire` (walking the length fields
/// of a known-good stream).
std::vector<std::size_t> record_boundaries(
    std::span<const std::byte> wire) {
  std::vector<std::size_t> boundaries;
  std::size_t offset = 0;
  while (offset + 12 <= wire.size()) {
    const std::size_t body =
        (std::to_integer<std::size_t>(wire[offset + 8]) << 24) |
        (std::to_integer<std::size_t>(wire[offset + 9]) << 16) |
        (std::to_integer<std::size_t>(wire[offset + 10]) << 8) |
        std::to_integer<std::size_t>(wire[offset + 11]);
    offset += 12 + body;
    boundaries.push_back(offset);
  }
  return boundaries;
}

/// Drains a framer completely, returning the decoded deltas.
std::vector<bgp::RibDelta> drain_all(MrtFramer& framer) {
  std::vector<bgp::RibDelta> out;
  while (auto delta = framer.next()) out.push_back(std::move(*delta));
  return out;
}

// --- Framer: truncation at every byte boundary -------------------------

TEST(StreamFramerTest, EveryTruncationYieldsCleanPrefixOfRecords) {
  std::vector<std::byte> wire = wire_of(
      announce_delta({{"10.0.0.0/24", 64500}, {"10.0.1.0/24", 64501}}));
  const auto more =
      wire_of(withdraw_delta({"10.0.0.0/24", "192.0.2.0/24"}), 1441584001);
  wire.insert(wire.end(), more.begin(), more.end());
  const std::vector<std::size_t> boundaries = record_boundaries(wire);
  ASSERT_GE(boundaries.size(), 2u);
  ASSERT_EQ(boundaries.back(), wire.size());

  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    MrtFramer framer;
    framer.push(std::span<const std::byte>(wire.data(), cut));
    const auto decoded = drain_all(framer);
    framer.finish();
    // Exactly the records fully contained in the cut are decoded...
    const auto complete = static_cast<std::size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), cut) -
        boundaries.begin());
    EXPECT_EQ(decoded.size(), complete) << "cut " << cut;
    const FramerStats& stats = framer.stats();
    EXPECT_EQ(stats.records, complete) << "cut " << cut;
    // ...a partial tail is accounted, never silently dropped...
    const std::size_t last_boundary = complete == 0
                                          ? 0
                                          : boundaries[complete - 1];
    EXPECT_EQ(stats.truncated_tail, cut > last_boundary ? 1u : 0u)
        << "cut " << cut;
    // ...and a pure truncation never looks like corruption.
    EXPECT_EQ(stats.decode_errors, 0u) << "cut " << cut;
    EXPECT_EQ(stats.resyncs, 0u) << "cut " << cut;
  }
}

TEST(StreamFramerTest, SingleByteFragmentsReassemble) {
  // One shared origin set -> one attribute group -> a single MRT record.
  const auto wire = wire_of(
      announce_delta({{"10.0.0.0/24", 64500}, {"10.9.0.0/16", 64500}}));
  MrtFramer framer;
  std::vector<bgp::RibDelta> decoded;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    framer.push(std::span<const std::byte>(wire.data() + i, 1));
    for (auto delta = framer.next(); delta; delta = framer.next()) {
      decoded.push_back(std::move(*delta));
    }
  }
  framer.finish();
  ASSERT_EQ(decoded.size(), 1u);  // one origin group -> one record
  ASSERT_EQ(decoded[0].announce.size(), 2u);
  EXPECT_EQ(framer.stats().truncated_tail, 0u);
}

// --- Framer: corruption between and inside records ---------------------

TEST(StreamFramerTest, GarbageBetweenRecordsIsSkippedNotFatal) {
  const auto first = wire_of(announce_delta({{"10.0.0.0/24", 64500}}));
  const auto second = wire_of(withdraw_delta({"192.0.2.0/24"}));
  // 0xAA never forms a plausible MRT type, so the garbage span is
  // unambiguous; the framer must discard exactly it and resync.
  std::vector<std::byte> wire = first;
  wire.insert(wire.end(), 37, std::byte{0xAA});
  wire.insert(wire.end(), second.begin(), second.end());

  MrtFramer framer;
  framer.push(wire);
  const auto decoded = drain_all(framer);
  framer.finish();
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].announce.size(), 1u);
  EXPECT_EQ(decoded[1].withdraw.size(), 1u);
  const FramerStats& stats = framer.stats();
  EXPECT_GE(stats.resyncs, 1u);
  EXPECT_EQ(stats.bytes_discarded, 37u);
  EXPECT_EQ(stats.truncated_tail, 0u);
}

TEST(StreamFramerTest, CorruptMiddleRecordResyncsToNextIntactRecord) {
  const auto first = wire_of(announce_delta({{"10.0.0.0/24", 64500}}));
  const auto third = wire_of(withdraw_delta({"192.0.2.0/24"}));
  // A record with a plausible BGP4MP header but a corrupt body: a copy
  // of a real record with one BGP-marker byte flipped (offset 12 MRT
  // header + 20 BGP4MP_AS4 preamble). The decoder throws FormatError,
  // and the framer must resync to the intact record after it without
  // losing it.
  std::vector<std::byte> bogus = wire_of(withdraw_delta({"198.18.0.0/15"}));
  bogus[32] ^= std::byte{0x01};

  std::vector<std::byte> wire = first;
  wire.insert(wire.end(), bogus.begin(), bogus.end());
  wire.insert(wire.end(), third.begin(), third.end());

  MrtFramer framer;
  framer.push(wire);
  const auto decoded = drain_all(framer);
  framer.finish();
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].announce.size(), 1u);
  EXPECT_EQ(decoded[1].withdraw.size(), 1u);
  const FramerStats& stats = framer.stats();
  EXPECT_GE(stats.decode_errors, 1u);
  EXPECT_GE(stats.resyncs, 1u);
  // Exactly the bogus record's bytes are discarded; no intact byte is.
  EXPECT_EQ(stats.bytes_discarded, bogus.size());
}

TEST(StreamFramerTest, OversizedLengthFieldIsCorruptionNotAStall) {
  // A corrupted length field larger than kMaxRecordBytes must be treated
  // as an implausible header immediately — not awaited forever.
  std::vector<std::byte> bogus(12, std::byte{0});
  bogus[5] = std::byte{16};
  bogus[7] = std::byte{4};
  bogus[8] = std::byte{0x7f};  // ~2 GiB "body"
  const auto real = wire_of(withdraw_delta({"192.0.2.0/24"}));
  std::vector<std::byte> wire = bogus;
  wire.insert(wire.end(), real.begin(), real.end());

  MrtFramer framer;
  framer.push(wire);
  const auto decoded = drain_all(framer);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].withdraw.size(), 1u);
  EXPECT_GE(framer.stats().resyncs, 1u);
}

TEST(StreamFramerTest, SeededByteFlipsNeverCrashAndAccountEveryByte) {
  std::vector<std::byte> pristine = wire_of(announce_delta(
      {{"10.0.0.0/24", 64500}, {"10.0.1.0/24", 64501}, {"10.2.0.0/16", 9}}));
  const auto more = wire_of(
      withdraw_delta({"10.0.0.0/24", "172.16.0.0/12", "192.0.2.0/24"}));
  pristine.insert(pristine.end(), more.begin(), more.end());

  for (const std::uint64_t seed : {23ull, 46ull, 92ull, 184ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 200; ++round) {
      auto wire = pristine;
      const std::size_t flips = 1 + rng.bounded(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const auto pos =
            static_cast<std::size_t>(rng.bounded(wire.size()));
        wire[pos] = static_cast<std::byte>(rng.bounded(256));
      }
      MrtFramer framer;
      // Random fragmentation while corrupted, for good measure.
      std::size_t offset = 0;
      std::size_t surfaced = 0;
      while (offset < wire.size()) {
        const std::size_t take = std::min<std::size_t>(
            wire.size() - offset, 1 + rng.bounded(61));
        framer.push(std::span<const std::byte>(wire.data() + offset, take));
        while (auto delta = framer.next()) {
          // Whatever survives decoding must be structurally sane.
          for (const auto& record : delta->announce) {
            EXPECT_LE(record.prefix.length(), 32);
            EXPECT_FALSE(record.origins.empty());
          }
          ++surfaced;
        }
        offset += take;
      }
      framer.finish();
      const FramerStats& stats = framer.stats();
      EXPECT_EQ(stats.bytes_in, wire.size());
      EXPECT_EQ(stats.records, surfaced);
    }
  }
}

// --- Reactor classification of hostile / noisy updates -----------------

struct SmallWorld {
  std::vector<bgp::Pfx2AsRecord> table;
  std::vector<std::uint32_t> counts;
};

SmallWorld small_world() {
  SmallWorld world;
  for (std::uint32_t i = 0; i < 6; ++i) {
    world.table.push_back(
        {net::Prefix(net::Ipv4Address(0x0a000000u + (i << 8)), 24),
         {100 + i}});
    world.counts.push_back(4 * (i + 1));
  }
  return world;
}

TEST(StreamReactorTest, OverlappingAnnouncesAreRejectedNotApplied) {
  SmallWorld world = small_world();
  StreamReactor reactor(world.table, world.counts);
  const std::uint64_t before =
      bgp::partition_fingerprint(reactor.partition());

  // Overlaps a live cell (10.0.0.0/24), contains one, and a batch-internal
  // pair where the second add nests inside the first.
  reactor.feed(wire_of(announce_delta({{"10.0.0.128/25", 999}})));
  reactor.feed(wire_of(announce_delta({{"10.0.0.0/16", 999}})));
  reactor.feed(wire_of(announce_delta({{"12.0.0.0/24", 999}})));
  reactor.feed(wire_of(announce_delta({{"12.0.0.0/25", 999}})));
  reactor.flush();

  const ReactorStats stats = reactor.stats();
  EXPECT_EQ(stats.rejected_overlaps, 3u);
  EXPECT_EQ(stats.applied_announces, 1u);  // 12.0.0.0/24 is disjoint
  EXPECT_NE(bgp::partition_fingerprint(reactor.partition()), before);
  EXPECT_TRUE(reactor.partition()
                  .index_of(net::Prefix::parse_or_throw("12.0.0.0/24"))
                  .has_value());
  EXPECT_FALSE(reactor.partition()
                   .index_of(net::Prefix::parse_or_throw("10.0.0.128/25"))
                   .has_value());
  // The rejected overlaps never entered the routing table either.
  EXPECT_EQ(reactor.table().size(), world.table.size() + 1);
}

TEST(StreamReactorTest, WireChatterIsCountedAsNoops) {
  SmallWorld world = small_world();
  StreamReactor reactor(world.table, world.counts);

  // Withdraw of an absent prefix + re-announcement with unchanged
  // origins: both legitimate chatter, neither may change or publish.
  std::uint64_t published = 0;
  reactor.set_publisher([&](PublishedPlan) { ++published; });
  reactor.feed(wire_of(withdraw_delta({"203.0.113.0/24"})));
  reactor.feed(wire_of(announce_delta({{"10.0.0.0/24", 100}})));
  reactor.flush();

  const ReactorStats stats = reactor.stats();
  EXPECT_EQ(stats.noop_updates, 2u);
  EXPECT_EQ(stats.applied_announces, 0u);
  EXPECT_EQ(stats.applied_withdraws, 0u);
  EXPECT_EQ(stats.plans_published, 0u);
  EXPECT_EQ(published, 0u);
  EXPECT_EQ(reactor.table(), world.table);
}

TEST(StreamReactorTest, ReoriginUpdatesTableWithoutRepublishing) {
  SmallWorld world = small_world();
  StreamReactor reactor(world.table, world.counts);
  std::uint64_t published = 0;
  reactor.set_publisher([&](PublishedPlan) { ++published; });

  reactor.feed(wire_of(announce_delta({{"10.0.0.0/24", 4242}})));
  reactor.flush();

  EXPECT_EQ(reactor.stats().applied_reorigins, 1u);
  EXPECT_EQ(published, 0u);  // topology and ranking are unchanged
  const auto& record = reactor.table().front();
  EXPECT_EQ(record.prefix, net::Prefix::parse_or_throw("10.0.0.0/24"));
  EXPECT_EQ(record.origins, (std::vector<std::uint32_t>{4242}));
}

// --- Mid-record EOF on a file-tail source ------------------------------

std::string temp_path(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = dir != nullptr && *dir != '\0' ? dir : "/tmp";
  return base + "/" + stem + "." + std::to_string(::getpid());
}

TEST(StreamReactorTest, MidRecordEofOnFileTailIsAccountedNotFatal) {
  const auto complete = wire_of(withdraw_delta({"10.0.1.0/24"}));
  const auto truncated = wire_of(announce_delta({{"12.0.0.0/24", 999}}));
  std::vector<std::byte> file_bytes = complete;
  // Cut the second record mid-body: a collector crash mid-write.
  file_bytes.insert(file_bytes.end(), truncated.begin(),
                    truncated.begin() + 17);

  const std::string path = temp_path("tass_stream_feed");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(file_bytes.data()),
              static_cast<std::streamsize>(file_bytes.size()));
  }

  SmallWorld world = small_world();
  StreamReactor reactor(world.table, world.counts);
  reactor.start(make_update_source(path, /*follow=*/false));
  reactor.join();
  std::remove(path.c_str());

  const ReactorStats stats = reactor.stats();
  EXPECT_EQ(stats.applied_withdraws, 1u);  // the complete record landed
  EXPECT_EQ(stats.applied_announces, 0u);  // the truncated one did not
  EXPECT_EQ(stats.framer.truncated_tail, 1u);
  EXPECT_EQ(stats.framer.records, 1u);
  EXPECT_FALSE(reactor.partition()
                   .index_of(net::Prefix::parse_or_throw("10.0.1.0/24"))
                   .has_value());
}

TEST(StreamReactorTest, MissingFeedFileIsATypedError) {
  EXPECT_THROW(make_update_source(temp_path("tass_no_such_feed"), false),
               Error);
}

// --- Per-AS politeness pacing (injected clock) -------------------------

class RangeOracle final : public scan::ProbeOracle {
 public:
  bool responds(net::Ipv4Address addr) const override {
    return addr.value() % 4 == 0;  // deterministic quarter density
  }
  std::uint64_t count_responsive(net::Interval interval) const override {
    const std::uint64_t first = (interval.first.value() + 3ull) / 4;
    const std::uint64_t last = interval.last.value() / 4;
    return last >= first ? last - first + 1 : 0;
  }
  void collect_responsive(net::Interval interval,
                          std::vector<std::uint32_t>& out) const override {
    for (std::uint64_t a = interval.first.value();
         a <= interval.last.value(); ++a) {
      if (a % 4 == 0) out.push_back(static_cast<std::uint32_t>(a));
    }
  }
};

TEST(StreamReactorTest, AsBudgetDefersAndLaterRescansCells) {
  SmallWorld world = small_world();
  double now = 1000.0;
  ReactorOptions options;
  options.as_probes_per_second = 1.0;
  options.as_probe_burst = 1.0;
  options.clock = [&now] { return now; };
  StreamReactor reactor(world.table, world.counts, options);

  RangeOracle oracle;
  scan::EngineConfig config;
  config.threads = 1;
  const scan::ScanEngine engine(config);
  reactor.set_rescanner(&oracle, &engine);

  // Two new prefixes from the same origin AS in one batch: the bucket
  // (burst 1.0, full) covers the first rescan; the second must defer.
  reactor.feed(wire_of(
      announce_delta({{"12.0.0.0/24", 500}, {"12.0.1.0/24", 500}})));
  reactor.flush();

  ReactorStats stats = reactor.stats();
  EXPECT_EQ(stats.applied_announces, 2u);
  EXPECT_EQ(stats.paced_deferrals, 1u);
  EXPECT_EQ(stats.deferred_pending, 1u);

  const auto cell_hosts = [&](const char* text) {
    const auto cell =
        reactor.partition().index_of(net::Prefix::parse_or_throw(text));
    return cell ? reactor.counts()[*cell] : 0u;
  };
  EXPECT_EQ(cell_hosts("12.0.0.0/24"), 64u);  // rescanned: 256/4 hosts
  EXPECT_EQ(cell_hosts("12.0.1.0/24"), 0u);   // deferred: scored zero

  // Budget still dry at the same instant: polling does nothing.
  EXPECT_FALSE(reactor.poll());

  // Refill the bucket and poll: the deferred cell is rescanned and the
  // plan republished with its real score.
  now += 60.0;
  EXPECT_TRUE(reactor.poll());
  stats = reactor.stats();
  EXPECT_EQ(stats.deferred_pending, 0u);
  EXPECT_EQ(cell_hosts("12.0.1.0/24"), 64u);
}

TEST(StreamReactorTest, WithdrawnDeferredCellIsDroppedNotRescanned) {
  SmallWorld world = small_world();
  double now = 1000.0;
  ReactorOptions options;
  options.as_probes_per_second = 1.0;
  options.as_probe_burst = 1.0;
  options.clock = [&now] { return now; };
  StreamReactor reactor(world.table, world.counts, options);

  RangeOracle oracle;
  scan::EngineConfig config;
  config.threads = 1;
  const scan::ScanEngine engine(config);
  reactor.set_rescanner(&oracle, &engine);

  reactor.feed(wire_of(
      announce_delta({{"12.0.0.0/24", 500}, {"12.0.1.0/24", 500}})));
  reactor.flush();
  ASSERT_EQ(reactor.stats().deferred_pending, 1u);

  // The deferred prefix is withdrawn before its budget arrives: the
  // deferral must be dropped against the post-delta partition, never
  // rescanned into a dead (or reused) slot.
  reactor.feed(wire_of(withdraw_delta({"12.0.1.0/24"})));
  reactor.flush();
  now += 60.0;
  reactor.poll();

  const ReactorStats stats = reactor.stats();
  EXPECT_EQ(stats.deferred_pending, 0u);
  EXPECT_FALSE(reactor.partition()
                   .index_of(net::Prefix::parse_or_throw("12.0.1.0/24"))
                   .has_value());
}

}  // namespace
}  // namespace tass::stream
