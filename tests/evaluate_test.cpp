// Tests for core/evaluate: the longitudinal (section 4) evaluator.
#include "core/evaluate.hpp"

#include <gtest/gtest.h>

namespace tass::core {
namespace {

using census::Protocol;

census::CensusSeries make_series(Protocol protocol, int months) {
  census::TopologyParams topo_params;
  topo_params.seed = 61;
  topo_params.l_prefix_count = 400;
  const auto topo = census::generate_topology(topo_params);
  census::SeriesParams params;
  params.months = months;
  params.host_scale = 0.002;
  params.seed = 16;
  return census::CensusSeries::generate(topo, protocol, params);
}

TEST(Evaluate, FullScanIsTheUnitBaseline) {
  const auto series = make_series(Protocol::kHttp, 4);
  const auto evaluation =
      evaluate(FullScanStrategy(series.month(0)), series);
  ASSERT_EQ(evaluation.cycles.size(), 4u);
  EXPECT_DOUBLE_EQ(evaluation.space_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(evaluation.mean_hitrate(), 1.0);
  EXPECT_DOUBLE_EQ(evaluation.efficiency_vs_full(), 1.0);
  EXPECT_EQ(evaluation.cycles[0].month, "09/15");
  EXPECT_EQ(evaluation.cycles[3].month, "12/15");
  for (const auto& cycle : evaluation.cycles) {
    EXPECT_DOUBLE_EQ(cycle.hitrate(), 1.0);
    EXPECT_GT(cycle.packets, static_cast<double>(cycle.scanned_addresses));
  }
}

TEST(Evaluate, TassIsMoreEfficientThanFull) {
  const auto series = make_series(Protocol::kFtp, 5);
  SelectionParams params;
  params.phi = 0.95;
  const TassStrategy strategy(series.month(0), PrefixMode::kMore, params);
  const auto evaluation = evaluate(strategy, series);
  // The headline claim: TASS (phi<1) beats full scanning by >1.25x.
  EXPECT_GT(evaluation.efficiency_vs_full(), 1.25);
  EXPECT_LT(evaluation.space_fraction(), 0.5);
  // Hitrate at seed is ~phi and decays gently.
  EXPECT_NEAR(evaluation.cycles[0].hitrate(), 0.95, 0.01);
  EXPECT_GT(evaluation.cycles.back().hitrate(), 0.85);
  for (std::size_t i = 1; i < evaluation.cycles.size(); ++i) {
    EXPECT_LE(evaluation.cycles[i].hitrate(),
              evaluation.cycles[i - 1].hitrate() + 0.01);
  }
}

TEST(Evaluate, HitlistEfficiencyIsHighButAccuracyCollapses) {
  const auto series = make_series(Protocol::kCwmp, 6);
  const auto evaluation =
      evaluate(HitlistStrategy(series.month(0)), series);
  // Probing only known-good addresses is extremely efficient per probe...
  EXPECT_GT(evaluation.efficiency_vs_full(), 10.0);
  // ...but accuracy is unacceptable for periodic scanning (paper 4.1).
  EXPECT_LT(evaluation.cycles.back().hitrate(), 0.65);
}

TEST(Evaluate, PaperComparisonBundlesAllStrategies) {
  const auto series = make_series(Protocol::kHttps, 3);
  const double phis[] = {1.0, 0.95};
  const auto comparison = evaluate_paper_strategies(series, phis);
  EXPECT_EQ(comparison.full.cycles.size(), 3u);
  EXPECT_EQ(comparison.hitlist.cycles.size(), 3u);
  ASSERT_EQ(comparison.tass.size(), 4u);  // 2 modes x 2 phis
  for (const auto& evaluation : comparison.tass) {
    EXPECT_EQ(evaluation.cycles.size(), 3u);
    EXPECT_GT(evaluation.cycles[0].hitrate(), 0.94);
  }
  // TASS at phi=1 scans less than full at equal month-0 accuracy.
  EXPECT_LT(comparison.tass[0].space_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(comparison.tass[0].cycles[0].hitrate(), 1.0);
}

TEST(Evaluate, ParallelCycleLoopMatchesSequential) {
  // The per-month fan-out writes into deterministic slots, so any thread
  // count reproduces the sequential evaluation exactly.
  const auto series = make_series(Protocol::kFtp, 5);
  SelectionParams params;
  params.phi = 0.95;
  const TassStrategy strategy(series.month(0), PrefixMode::kMore, params);

  EvaluationConfig sequential;
  sequential.threads = 1;
  const auto reference = evaluate(strategy, series, sequential);
  ASSERT_EQ(reference.cycles.size(), 5u);

  for (const unsigned threads : {0u, 2u, 8u}) {
    EvaluationConfig config;
    config.threads = threads;
    const auto parallel = evaluate(strategy, series, config);
    ASSERT_EQ(parallel.cycles.size(), reference.cycles.size());
    for (std::size_t i = 0; i < reference.cycles.size(); ++i) {
      EXPECT_EQ(parallel.cycles[i].month_index,
                reference.cycles[i].month_index);
      EXPECT_EQ(parallel.cycles[i].month, reference.cycles[i].month);
      EXPECT_EQ(parallel.cycles[i].found_hosts,
                reference.cycles[i].found_hosts);
      EXPECT_EQ(parallel.cycles[i].total_hosts,
                reference.cycles[i].total_hosts);
      EXPECT_EQ(parallel.cycles[i].scanned_addresses,
                reference.cycles[i].scanned_addresses);
      EXPECT_DOUBLE_EQ(parallel.cycles[i].packets,
                       reference.cycles[i].packets);
    }
  }
}

TEST(Evaluate, CycleAccountingIsConsistent) {
  const auto series = make_series(Protocol::kSsh, 3);
  SelectionParams params;
  params.phi = 0.9;
  const TassStrategy strategy(series.month(0), PrefixMode::kLess, params);
  const auto evaluation = evaluate(strategy, series);
  for (const auto& cycle : evaluation.cycles) {
    EXPECT_LE(cycle.found_hosts, cycle.total_hosts);
    EXPECT_EQ(cycle.scanned_addresses, strategy.scanned_addresses());
    EXPECT_EQ(cycle.month, census::month_label(cycle.month_index));
  }
}

}  // namespace
}  // namespace tass::core
