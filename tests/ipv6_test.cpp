// Tests for net/ipv6: RFC 4291 parsing, RFC 5952 formatting, and prefix
// containment — the groundwork for the paper's IPv6 outlook (§6).
#include "net/ipv6.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tass::net {
namespace {

TEST(Ipv6Address, ParsesFullForm) {
  const auto addr =
      Ipv6Address::parse("2001:0db8:0000:0000:0000:ff00:0042:8329");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(addr->lo(), 0x0000ff0000428329ULL);
}

TEST(Ipv6Address, ParsesCompressedForms) {
  EXPECT_EQ(Ipv6Address::parse("::")->hi(), 0u);
  EXPECT_EQ(Ipv6Address::parse("::")->lo(), 0u);
  EXPECT_EQ(Ipv6Address::parse("::1")->lo(), 1u);
  EXPECT_EQ(Ipv6Address::parse("1::")->hi(), 0x0001000000000000ULL);
  const auto mid = Ipv6Address::parse("2001:db8::42:8329");
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(mid->lo(), 0x0000000000428329ULL);
  // Trailing-run compression.
  const auto trailing = Ipv6Address::parse("1:2:3:4:5:6:7::");
  ASSERT_TRUE(trailing.has_value());
  EXPECT_EQ(trailing->group(6), 7u);
  EXPECT_EQ(trailing->group(7), 0u);
}

TEST(Ipv6Address, ParsesEmbeddedIpv4) {
  const auto mapped = Ipv6Address::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->lo(), 0x0000ffffc0000201ULL);
  const auto nat64 = Ipv6Address::parse("64:ff9b::192.0.2.33");
  ASSERT_TRUE(nat64.has_value());
  EXPECT_EQ(nat64->hi(), 0x0064ff9b00000000ULL);
  EXPECT_EQ(nat64->lo(), 0x00000000c0000221ULL);
  // Full 8-group count with trailing v4 and no compression.
  EXPECT_TRUE(Ipv6Address::parse("1:2:3:4:5:6:192.0.2.1").has_value());
}

TEST(Ipv6Address, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv6Address::parse("").has_value());
  EXPECT_FALSE(Ipv6Address::parse(":::").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1::2::3").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7::8").has_value());
  EXPECT_FALSE(Ipv6Address::parse("12345::").has_value());
  EXPECT_FALSE(Ipv6Address::parse("g::1").has_value());
  EXPECT_FALSE(Ipv6Address::parse("192.0.2.1::1").has_value());
  EXPECT_FALSE(Ipv6Address::parse("::192.0.2.256").has_value());
  EXPECT_THROW(Ipv6Address::parse_or_throw("nope"), ParseError);
}

TEST(Ipv6Address, FormatsRfc5952) {
  const struct {
    const char* in;
    const char* out;
  } cases[] = {
      {"2001:0db8:0000:0000:0000:ff00:0042:8329", "2001:db8::ff00:42:8329"},
      {"::1", "::1"},
      {"::", "::"},
      {"1::", "1::"},
      {"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"},  // leftmost-longest
      {"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
      {"0:0:1:0:0:0:0:1", "0:0:1::1"},
      {"ABCD::EF01", "abcd::ef01"},  // lower case
  };
  for (const auto& test_case : cases) {
    const auto addr = Ipv6Address::parse(test_case.in);
    ASSERT_TRUE(addr.has_value()) << test_case.in;
    EXPECT_EQ(addr->to_string(), test_case.out) << test_case.in;
  }
}

TEST(Ipv6Address, RoundTripsThroughText) {
  for (const char* text :
       {"2001:db8::1", "fe80::204:61ff:fe9d:f156", "::ffff:c000:201",
        "2606:4700:4700::1111", "ff02::2"}) {
    const auto addr = Ipv6Address::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(Ipv6Address::parse(addr->to_string()), addr) << text;
  }
}

TEST(Ipv6Address, BitAndGroupAccess) {
  const auto addr = Ipv6Address::parse_or_throw("8000::1");
  EXPECT_EQ(addr.bit(0), 1);
  EXPECT_EQ(addr.bit(1), 0);
  EXPECT_EQ(addr.bit(127), 1);
  EXPECT_EQ(addr.group(0), 0x8000u);
  EXPECT_EQ(addr.group(7), 1u);
}

TEST(Ipv6Address, OrdersNumerically) {
  EXPECT_LT(Ipv6Address::parse_or_throw("2001:db7::"),
            Ipv6Address::parse_or_throw("2001:db8::"));
  EXPECT_LT(Ipv6Address::parse_or_throw("2001:db8::1"),
            Ipv6Address::parse_or_throw("2001:db8::2"));
}

TEST(Ipv6Prefix, CanonicalisesAndContains) {
  const auto prefix = Ipv6Prefix::parse("2001:db8:aaaa::1/48");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->to_string(), "2001:db8:aaaa::/48");
  EXPECT_TRUE(
      prefix->contains(Ipv6Address::parse_or_throw("2001:db8:aaaa::42")));
  EXPECT_TRUE(prefix->contains(
      Ipv6Address::parse_or_throw("2001:db8:aaaa:ffff::")));
  EXPECT_FALSE(
      prefix->contains(Ipv6Address::parse_or_throw("2001:db8:aaab::")));
}

TEST(Ipv6Prefix, BoundaryLengths) {
  const Ipv6Prefix all = Ipv6Prefix::parse_or_throw("::/0");
  EXPECT_TRUE(all.contains(Ipv6Address::parse_or_throw("ffff::")));
  EXPECT_EQ(all.size_bits(), 128);

  const Ipv6Prefix host =
      Ipv6Prefix::parse_or_throw("2001:db8::7/128");
  EXPECT_TRUE(host.contains(Ipv6Address::parse_or_throw("2001:db8::7")));
  EXPECT_FALSE(host.contains(Ipv6Address::parse_or_throw("2001:db8::8")));
  EXPECT_EQ(host.size_bits(), 0);

  // Mask across the 64-bit half boundary.
  const Ipv6Prefix deep = Ipv6Prefix::parse_or_throw("2001:db8::ff00:0/100");
  EXPECT_EQ(deep.to_string(), "2001:db8::f000:0/100");
}

TEST(Ipv6Prefix, ContainsPrefix) {
  const Ipv6Prefix outer = Ipv6Prefix::parse_or_throw("2001:db8::/32");
  const Ipv6Prefix inner = Ipv6Prefix::parse_or_throw("2001:db8:1::/48");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Ipv6Prefix, RejectsMalformed) {
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("nope/64").has_value());
}

}  // namespace
}  // namespace tass::net
