// End-to-end coverage of the family-generic IPv6 pipeline: pfx2as6
// ingest, l/m classification and 128-bit deaggregation, partition
// attribution and churn, density ranking and selection, blocklist and
// scan scope, and the TSIM image round-trip — every stage through the
// same library types the v4 pipeline uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "bgp/deaggregate.hpp"
#include "bgp/pfx2as.hpp"
#include "bgp/table6.hpp"
#include "census/hitlist6.hpp"
#include "core/ranking.hpp"
#include "core/selection.hpp"
#include "net/family.hpp"
#include "scan/blocklist.hpp"
#include "scan/scope6.hpp"
#include "state/image.hpp"
#include "util/rng.hpp"

namespace tass {
namespace {

net::Ipv6Prefix p6(const char* text) {
  return net::Ipv6Prefix::parse_or_throw(text);
}
net::Ipv6Address a6(const char* text) {
  return net::Ipv6Address::parse_or_throw(text);
}

constexpr const char* kTable =
    "2001:db8::\t32\t64500\n"
    "2001:db8:1000::\t36\t64501\n"
    "2001:db8:5000::\t48\t64505\n"
    "2001:db8:8000::\t33\t64508\n"
    "# comment line\n"
    "\n"
    "2620:1::\t48\t64509,64510\n";

TEST(Pfx2As6, ParsesRecordsSkipsCommentsAndMultiOrigin) {
  const auto records = bgp::parse_pfx2as6(kTable);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].prefix, p6("2001:db8::/32"));
  EXPECT_EQ(records[0].origins, (std::vector<std::uint32_t>{64500}));
  EXPECT_EQ(records[4].origins, (std::vector<std::uint32_t>{64509, 64510}));
}

TEST(Pfx2As6, StrictRejectsV4AndMalformed) {
  EXPECT_THROW(bgp::parse_pfx2as6("1.2.3.0\t24\t65000\n"), ParseError);
  EXPECT_THROW(bgp::parse_pfx2as6("2001:db8::\t129\t65000\n"), ParseError);
  EXPECT_THROW(bgp::parse_pfx2as6("2001:db8::\t32\n"), ParseError);
  std::size_t skipped = 0;
  const auto records = bgp::parse_pfx2as6(
      "2001:db8::\t32\t65000\n1.2.3.0\t24\t65000\n", /*strict=*/false,
      &skipped);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(skipped, 1u);
}

TEST(Pfx2As6, FormatRoundTrips) {
  const auto records = bgp::parse_pfx2as6(kTable);
  const auto echoed = bgp::parse_pfx2as6(bgp::format_pfx2as6(records));
  EXPECT_EQ(records, echoed);
}

TEST(GenericPrefix, ParsesBothFamiliesAndConverts) {
  const auto v4 = net::GenericPrefix::parse_or_throw("10.0.0.0/8");
  EXPECT_EQ(v4.family(), net::AddressFamily::kIpv4);
  EXPECT_EQ(*v4.v4(), net::Prefix::parse_or_throw("10.0.0.0/8"));
  EXPECT_FALSE(v4.v6().has_value());

  const auto v6 = net::GenericPrefix::parse_or_throw("2001:db8::/32");
  EXPECT_EQ(v6.family(), net::AddressFamily::kIpv6);
  EXPECT_EQ(*v6.v6(), p6("2001:db8::/32"));
  EXPECT_EQ(v6.to_string(), "2001:db8::/32");

  // Bare addresses are full-length prefixes.
  EXPECT_EQ(net::GenericPrefix::parse_or_throw("2001:db8::1").length(), 128);
  EXPECT_EQ(net::GenericPrefix::parse_or_throw("192.0.2.1").length(), 32);
  EXPECT_FALSE(net::GenericPrefix::parse("not-an-address").has_value());
}

TEST(Ipv6PrefixContract, ParseCanonicalisesParseStrictRejects) {
  // The v4/v6 parse contracts are aligned: parse() canonicalises host
  // bits away, parse_strict() rejects them.
  EXPECT_EQ(p6("2001:db8::1/64"), p6("2001:db8::/64"));
  EXPECT_FALSE(net::Ipv6Prefix::parse_strict("2001:db8::1/64").has_value());
  EXPECT_TRUE(net::Ipv6Prefix::parse_strict("2001:db8::/64").has_value());
  EXPECT_FALSE(net::Ipv6Prefix::parse_strict("2001:db8::/129").has_value());
}

TEST(Deaggregate6, Figure2OnV6Prefixes) {
  // The paper's /8-with-/12 example, transposed: a /32 with an announced
  // /36 deaggregates into {/33, /34, /35, /36-sibling, /36}.
  const auto tiles =
      bgp::deaggregate(p6("2001:db8::/32"),
                       std::vector<net::Ipv6Prefix>{p6("2001:db8:1000::/36")});
  const std::vector<net::Ipv6Prefix> expected = {
      p6("2001:db8::/36"),     p6("2001:db8:1000::/36"),
      p6("2001:db8:2000::/35"), p6("2001:db8:4000::/34"),
      p6("2001:db8:8000::/33")};
  EXPECT_EQ(tiles, expected);
}

TEST(RoutingTable6, ClassifiesAndPartitions) {
  const auto table =
      bgp::RoutingTable6::from_pfx2as(bgp::parse_pfx2as6(kTable));
  // 2001:db8::/32 covers the /36, /48 and /33; 2620:1::/48 stands alone.
  EXPECT_EQ(table.l_prefixes(),
            (std::vector<net::Ipv6Prefix>{p6("2001:db8::/32"),
                                          p6("2620:1::/48")}));
  EXPECT_EQ(table.m_prefixes().size(), 3u);

  const bgp::PrefixPartition6 l = table.l_partition();
  EXPECT_EQ(l.size(), 2u);

  const bgp::PrefixPartition6 m = table.m_partition();
  // Every announced more-specific is a whole cell of the m-partition.
  for (const net::Ipv6Prefix announced : table.m_prefixes()) {
    EXPECT_TRUE(m.index_of(announced).has_value())
        << announced.to_string();
  }
  // The partition tiles the l-space: locate resolves inside, not outside.
  EXPECT_TRUE(m.locate(a6("2001:db8:5000::1")).has_value());
  EXPECT_EQ(m.prefix(*m.locate(a6("2001:db8:5000::1"))),
            p6("2001:db8:5000::/48"));
  EXPECT_FALSE(m.locate(a6("2001:db7::1")).has_value());
}

TEST(PrefixPartition6, LocateManyAndUnits) {
  bgp::PrefixPartition6 partition(
      {p6("2001:db8::/36"), p6("2001:db8:1000::/36"), p6("2620:1::/64"),
       p6("2620:2::/72")});
  // /36 covers 2^28 /64s; /64 is one; /72 floors to one unit.
  EXPECT_EQ(net::Ipv6Family::prefix_units(p6("2001:db8::/36")),
            std::uint64_t{1} << 28);
  EXPECT_EQ(net::Ipv6Family::prefix_units(p6("2620:1::/64")), 1u);
  EXPECT_EQ(net::Ipv6Family::prefix_units(p6("2620:2::/72")), 1u);
  EXPECT_EQ(partition.address_count(), (std::uint64_t{1} << 29) + 2);

  const std::vector<net::Ipv6Address> addresses = {
      a6("2001:db8::1"), a6("2001:db8:1000::2"), a6("2620:1::3"),
      a6("2620:2:0:0:ff00::1"), a6("::1")};
  std::vector<std::uint32_t> cells(addresses.size());
  partition.locate_many(addresses, cells);
  EXPECT_EQ(cells[0], 0u);
  EXPECT_EQ(cells[1], 1u);
  EXPECT_EQ(cells[2], 2u);
  EXPECT_EQ(cells[3], bgp::PrefixPartition6::kNoCell);  // outside the /72
  EXPECT_EQ(cells[4], bgp::PrefixPartition6::kNoCell);

  EXPECT_THROW(bgp::PrefixPartition6(
                   {p6("2001:db8::/36"), p6("2001:db8::/40")}),
               Error);
}

TEST(PrefixPartition6, ApplyDeltaAndRerankMatchFromScratch) {
  util::Rng rng(2026);
  std::vector<net::Ipv6Prefix> prefixes;
  for (std::uint64_t i = 0; i < 48; ++i) {
    prefixes.emplace_back(
        net::Ipv6Address(0x2001000000000000ULL | (i << 40), 0), 28);
  }
  bgp::PrefixPartition6 partition(prefixes);
  std::vector<std::uint32_t> counts(partition.size());
  for (auto& count : counts) {
    count = static_cast<std::uint32_t>(rng.bounded(50));
  }
  auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);

  bgp::PartitionDelta6 delta;
  delta.remove.push_back(partition.prefix(5));
  delta.remove.push_back(partition.prefix(11));
  delta.add.push_back(partition.prefix(5).lower_half());
  delta.add.push_back(partition.prefix(5).upper_half());
  const auto result = partition.apply_delta(delta);
  EXPECT_EQ(result.removed_cells.size(), 2u);
  EXPECT_EQ(result.added_cells.size(), 2u);
  EXPECT_EQ(partition.live_cells(), 48u);
  EXPECT_EQ(partition.free_cells(), 0u);

  result.reindex(counts);
  for (const std::uint32_t cell : result.added_cells) {
    counts[cell] = static_cast<std::uint32_t>(1 + rng.bounded(20));
  }
  core::rerank_cells(ranking, counts, partition, result);

  // Bit-identical to the from-scratch ranking (the same contract the v4
  // delta differential suite enforces).
  const auto fresh =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);
  ASSERT_EQ(ranking.ranked.size(), fresh.ranked.size());
  for (std::size_t i = 0; i < fresh.ranked.size(); ++i) {
    EXPECT_EQ(ranking.ranked[i].prefix, fresh.ranked[i].prefix);
    EXPECT_EQ(ranking.ranked[i].hosts, fresh.ranked[i].hosts);
    EXPECT_EQ(ranking.ranked[i].density, fresh.ranked[i].density);
    EXPECT_EQ(ranking.ranked[i].host_share, fresh.ranked[i].host_share);
  }
}

TEST(Ranking6, DensityIsPerSlash64AndSelectionStops) {
  bgp::PrefixPartition6 partition(
      {p6("2001:db8::/48"), p6("2001:db9::/32"), p6("2001:dba::/64")});
  // 10 hosts in a /48 (65536 /64s), 10 in a /32 (2^32 /64s), 3 in a /64.
  const std::vector<std::uint32_t> counts = {10, 10, 3};
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kLess);
  ASSERT_EQ(ranking.ranked.size(), 3u);
  EXPECT_EQ(ranking.ranked[0].prefix, p6("2001:dba::/64"));  // 3 per /64
  EXPECT_DOUBLE_EQ(ranking.ranked[0].density, 3.0);
  EXPECT_EQ(ranking.ranked[1].prefix, p6("2001:db8::/48"));
  EXPECT_DOUBLE_EQ(ranking.ranked[1].density, 10.0 / 65536.0);
  EXPECT_EQ(ranking.total_hosts, 23u);

  core::SelectionParams params;
  params.phi = 0.5;  // 12 of 23 hosts: the /64 plus the /48
  const auto selection = core::select_by_density(ranking, params);
  EXPECT_EQ(selection.k(), 2u);
  EXPECT_EQ(selection.covered_hosts, 13u);
  EXPECT_EQ(selection.selected_addresses, 65537u);
  EXPECT_GT(selection.host_coverage(), 0.5);
}

TEST(Blocklist6, ParsesBothFamiliesAndThrowsOnMalformed) {
  const auto blocklist = scan::Blocklist::parse(
      "192.0.2.0/24\n"
      "2001:db8:dead::/48  # v6 prefix\n"
      "2001:db8:beef::7    # single v6 address\n"
      "198.51.100.7\n");
  EXPECT_TRUE(blocklist.blocks(net::Ipv4Address::parse_or_throw("192.0.2.9")));
  EXPECT_TRUE(blocklist.blocks(a6("2001:db8:dead::1")));
  EXPECT_TRUE(blocklist.blocks(a6("2001:db8:beef::7")));
  EXPECT_FALSE(blocklist.blocks(a6("2001:db8:beef::8")));
  EXPECT_FALSE(blocklist.blocks(a6("2001:db8::1")));
  EXPECT_EQ(blocklist.blocked6().size(), 2u);

  // Malformed lines of either family keep parse-or-throw semantics —
  // nothing is silently dropped.
  EXPECT_THROW(scan::Blocklist::parse("2001:zz8::/32\n"), ParseError);
  EXPECT_THROW(scan::Blocklist::parse("2001:db8::/200\n"), ParseError);
  EXPECT_THROW(scan::Blocklist::parse("2001:db8::-2001:db9::\n"),
               ParseError);
  EXPECT_THROW(scan::Blocklist::parse("999.0.0.1\n"), ParseError);
}

TEST(ScanScope6, FiltersCandidatesAndPermutesExactlyOnce) {
  scan::Blocklist blocklist;
  blocklist.add(p6("2001:db8:5000:bad::/64"));
  const std::vector<net::Ipv6Prefix> selected = {p6("2001:db8:5000::/48"),
                                                 p6("2001:db8:f000::/52")};
  scan::ScanScope6 scope(selected, blocklist);

  EXPECT_TRUE(scope.contains(a6("2001:db8:5000::1")));
  EXPECT_FALSE(scope.contains(a6("2001:db8:5000:bad::1")));  // blocked
  EXPECT_FALSE(scope.contains(a6("2001:db8:6000::1")));      // unselected

  std::vector<net::Ipv6Address> hitlist;
  for (std::uint64_t i = 0; i < 200; ++i) {
    hitlist.emplace_back(0x20010db850000000ULL, i);        // in scope
  }
  hitlist.push_back(a6("2001:db8:5000:bad::1"));           // blocked
  hitlist.push_back(a6("2001:db8:6000::1"));               // outside
  EXPECT_EQ(scope.add_candidates(hitlist), 200u);
  EXPECT_EQ(scope.candidate_count(), 200u);

  // The cyclic-group permutation visits every candidate exactly once,
  // for any shard split.
  std::set<std::string> seen;
  auto permutation = scope.permutation(/*seed=*/42);
  while (const auto target = scope.next_target(permutation)) {
    EXPECT_TRUE(seen.insert(target->to_string()).second);
  }
  EXPECT_EQ(seen.size(), 200u);

  std::set<std::string> sharded;
  for (std::uint32_t shard = 0; shard < 3; ++shard) {
    auto it = scope.permutation_shard(/*seed=*/42, shard, 3);
    while (const auto target = scope.next_target(it)) {
      EXPECT_TRUE(sharded.insert(target->to_string()).second);
    }
  }
  EXPECT_EQ(sharded, seen);
}

TEST(Hitlist6, ParsesStrictAndLenient) {
  const auto strict = census::parse_hitlist6(
      "# seeds\n2001:db8::1\n\n2001:db8::2\n");
  EXPECT_EQ(strict,
            (std::vector<net::Ipv6Address>{a6("2001:db8::1"),
                                           a6("2001:db8::2")}));
  EXPECT_THROW(census::parse_hitlist6("garbage\n"), ParseError);
  std::size_t skipped = 0;
  const auto lenient =
      census::parse_hitlist6("2001:db8::1\ngarbage\n", false, &skipped);
  EXPECT_EQ(lenient.size(), 1u);
  EXPECT_EQ(skipped, 1u);
}

TEST(StateImage6, RoundTripsBitIdenticallyWithFamilyInfo) {
  const auto table =
      bgp::RoutingTable6::from_pfx2as(bgp::parse_pfx2as6(kTable));
  const bgp::PrefixPartition6 partition = table.m_partition();
  std::vector<std::uint32_t> counts(partition.size(), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>(1 + (i * 31) % 97);
  }
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);

  const auto bytes = state::encode_image(partition, ranking);
  EXPECT_EQ(state::image_family(bytes), net::AddressFamily::kIpv6);

  const auto image = state::StateImage6::attach(bytes);
  image.verify();
  EXPECT_EQ(image.info().family, net::AddressFamily::kIpv6);
  EXPECT_EQ(image.info().cell_count, partition.size());
  EXPECT_EQ(image.info().total_hosts, ranking.total_hosts);

  // Borrowed structures answer identically to the originals...
  for (std::size_t i = 0; i < partition.size(); ++i) {
    EXPECT_EQ(image.partition().prefix(i), partition.prefix(i));
  }
  util::Rng rng(7);
  for (int probe = 0; probe < 2000; ++probe) {
    const net::Ipv6Address addr(0x2001000000000000ULL | (rng() >> 16),
                                rng());
    EXPECT_EQ(image.partition().locate(addr), partition.locate(addr));
  }
  // ...and reject mutation (borrowed storage).
  bgp::PartitionDelta6 delta;
  delta.remove.push_back(partition.prefix(0));
  auto borrowed = bgp::PrefixPartition6::from_raw(
      image.partition().raw(), image.index());
  EXPECT_THROW(borrowed.apply_delta(delta), Error);

  // Re-encoding the attached state reproduces the file bit for bit.
  const auto reencoded = state::encode_image(
      image.partition(), image.ranking().materialize());
  EXPECT_EQ(bytes, reencoded);

  // Selection straight off the borrowed ranking view.
  core::SelectionParams params;
  params.phi = 0.9;
  const auto from_image = core::select_by_density(image.ranking(), params);
  const auto from_fresh = core::select_by_density(ranking, params);
  EXPECT_EQ(from_image.prefixes, from_fresh.prefixes);
  EXPECT_EQ(from_image.covered_hosts, from_fresh.covered_hosts);
}

TEST(StateImage6, FingerprintBindsTopology) {
  bgp::PrefixPartition6 partition({p6("2001:db8::/32")});
  const std::vector<std::uint32_t> counts = {5};
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kLess);
  const auto bytes = state::encode_image(partition, ranking);
  const std::uint64_t fingerprint = bgp::partition_fingerprint(partition);
  EXPECT_NO_THROW(state::StateImage6::attach(bytes, fingerprint));
  EXPECT_THROW(state::StateImage6::attach(bytes, fingerprint ^ 1),
               FormatError);
}

}  // namespace
}  // namespace tass
