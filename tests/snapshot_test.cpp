// Tests for census/snapshot: the ground-truth container.
#include "census/snapshot.hpp"

#include <gtest/gtest.h>

#include "census/topology.hpp"

namespace tass::census {
namespace {

std::shared_ptr<const Topology> small_topology() {
  const std::vector<bgp::Pfx2AsRecord> records = {
      {net::Prefix::parse_or_throw("10.0.0.0/8"), {100}},
      {net::Prefix::parse_or_throw("10.0.0.0/9"), {101}},
      {net::Prefix::parse_or_throw("20.0.0.0/16"), {200}},
  };
  return topology_from_table(bgp::RoutingTable::from_pfx2as(records), 1);
}

Snapshot make_snapshot(std::shared_ptr<const Topology> topo) {
  // Cells (ascending): 10.0.0.0/9, 10.128.0.0/9, 20.0.0.0/16.
  std::vector<CellPopulation> cells(topo->m_partition.size());
  cells[0].stable = {0, 5, 100};
  cells[0].volatile_hosts = {7};
  cells[1].stable = {1};
  cells[2].volatile_hosts = {65535};
  return Snapshot(std::move(topo), Protocol::kHttp, 0, std::move(cells));
}

TEST(Snapshot, CountsAndTotals) {
  const auto topo = small_topology();
  const Snapshot snapshot = make_snapshot(topo);
  EXPECT_EQ(snapshot.total_hosts(), 6u);
  EXPECT_EQ(snapshot.protocol(), Protocol::kHttp);
  EXPECT_EQ(snapshot.month_index(), 0);

  const auto counts = snapshot.counts_per_cell();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);

  const auto l_counts = snapshot.counts_per_l();
  ASSERT_EQ(l_counts.size(), 2u);
  EXPECT_EQ(l_counts[0], 5u);  // 10/8 = both /9 cells
  EXPECT_EQ(l_counts[1], 1u);  // 20.0/16
}

TEST(Snapshot, ContainsQueriesBothPopulations) {
  const Snapshot snapshot = make_snapshot(small_topology());
  EXPECT_TRUE(snapshot.contains(net::Ipv4Address::parse_or_throw("10.0.0.0")));
  EXPECT_TRUE(snapshot.contains(net::Ipv4Address::parse_or_throw("10.0.0.7")));
  EXPECT_TRUE(
      snapshot.contains(net::Ipv4Address::parse_or_throw("10.128.0.1")));
  EXPECT_TRUE(
      snapshot.contains(net::Ipv4Address::parse_or_throw("20.0.255.255")));
  EXPECT_FALSE(
      snapshot.contains(net::Ipv4Address::parse_or_throw("10.0.0.1")));
  EXPECT_FALSE(
      snapshot.contains(net::Ipv4Address::parse_or_throw("30.0.0.1")));
}

TEST(Snapshot, AddressesSortedAndComplete) {
  const Snapshot snapshot = make_snapshot(small_topology());
  const auto addresses = snapshot.addresses();
  ASSERT_EQ(addresses.size(), 6u);
  EXPECT_TRUE(std::is_sorted(addresses.begin(), addresses.end()));
  for (const std::uint32_t addr : addresses) {
    EXPECT_TRUE(snapshot.contains(net::Ipv4Address(addr)));
  }
}

TEST(Snapshot, ForEachAddressVisitsInOrder) {
  const Snapshot snapshot = make_snapshot(small_topology());
  std::vector<std::uint32_t> visited;
  snapshot.for_each_address(
      [&](net::Ipv4Address addr) { visited.push_back(addr.value()); });
  EXPECT_EQ(visited.size(), 6u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
  // Stable/volatile interleaving preserved order: 0,5,7,100 in cell 0.
  EXPECT_EQ(visited[0], net::Ipv4Address::parse_or_throw("10.0.0.0").value());
  EXPECT_EQ(visited[2], net::Ipv4Address::parse_or_throw("10.0.0.7").value());
}

TEST(Snapshot, MonthLabelsMatchThePaperAxis) {
  EXPECT_EQ(month_label(0), "09/15");
  EXPECT_EQ(month_label(1), "10/15");
  EXPECT_EQ(month_label(3), "12/15");
  EXPECT_EQ(month_label(4), "01/16");
  EXPECT_EQ(month_label(6), "03/16");
  EXPECT_EQ(month_label(16), "01/17");
}

}  // namespace
}  // namespace tass::census
