// Tests for trie/prefix_trie and trie/prefix_set: exact operations plus a
// randomized property sweep against the linear-scan oracle.
#include "trie/prefix_set.hpp"
#include "trie/prefix_trie.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tass::trie {
namespace {

using net::Ipv4Address;
using net::Prefix;

Prefix pfx(const char* text) { return Prefix::parse_or_throw(text); }

TEST(PrefixTrie, InsertFindOverwrite) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(pfx("10.0.0.0/8"), 2));  // overwrite
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(pfx("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.find(pfx("10.0.0.0/9")), nullptr);
  EXPECT_EQ(trie.find(pfx("11.0.0.0/8")), nullptr);
}

TEST(PrefixTrie, RootPrefixWorks) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 7);
  const auto match = trie.longest_match(Ipv4Address(12345));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, pfx("0.0.0.0/0"));
  EXPECT_EQ(match->second, 7);
}

TEST(PrefixTrie, HostRouteWorks) {
  PrefixTrie<int> trie;
  trie.insert(pfx("1.2.3.4/32"), 9);
  EXPECT_TRUE(trie.contains(pfx("1.2.3.4/32")));
  const auto match =
      trie.longest_match(Ipv4Address::parse_or_throw("1.2.3.4"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first.length(), 32);
}

TEST(PrefixTrie, LongestAndShortestMatch) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.32.0.0/11"), 11);
  trie.insert(pfx("10.32.0.0/16"), 16);

  const Ipv4Address inner = Ipv4Address::parse_or_throw("10.32.0.5");
  EXPECT_EQ(trie.longest_match(inner)->second, 16);
  EXPECT_EQ(trie.shortest_match(inner)->second, 8);

  const Ipv4Address mid = Ipv4Address::parse_or_throw("10.33.0.1");
  EXPECT_EQ(trie.longest_match(mid)->second, 11);

  const Ipv4Address outer = Ipv4Address::parse_or_throw("10.128.0.1");
  EXPECT_EQ(trie.longest_match(outer)->second, 8);

  EXPECT_FALSE(
      trie.longest_match(Ipv4Address::parse_or_throw("11.0.0.0")));
}

TEST(PrefixTrie, AllMatchesLeastSpecificFirst) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.32.0.0/11"), 11);
  trie.insert(pfx("10.32.0.0/16"), 16);
  const auto matches =
      trie.all_matches(Ipv4Address::parse_or_throw("10.32.0.99"));
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].second, 8);
  EXPECT_EQ(matches[1].second, 11);
  EXPECT_EQ(matches[2].second, 16);
}

TEST(PrefixTrie, HasStrictAncestor) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 0);
  EXPECT_FALSE(trie.has_strict_ancestor(pfx("10.0.0.0/8")));  // self only
  EXPECT_TRUE(trie.has_strict_ancestor(pfx("10.0.0.0/9")));
  EXPECT_TRUE(trie.has_strict_ancestor(pfx("10.200.0.0/16")));
  EXPECT_FALSE(trie.has_strict_ancestor(pfx("11.0.0.0/9")));
  EXPECT_FALSE(trie.has_strict_ancestor(pfx("0.0.0.0/0")));
}

TEST(PrefixTrie, EntriesWithinScope) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.0.0.0/12"), 2);
  trie.insert(pfx("10.64.0.0/12"), 3);
  trie.insert(pfx("11.0.0.0/8"), 4);

  const auto within = trie.entries_within(pfx("10.0.0.0/8"));
  ASSERT_EQ(within.size(), 3u);
  EXPECT_EQ(within[0].second, 1);  // the scope itself, then ascending
  EXPECT_EQ(within[1].second, 2);
  EXPECT_EQ(within[2].second, 3);

  EXPECT_TRUE(trie.entries_within(pfx("12.0.0.0/8")).empty());
  EXPECT_EQ(trie.entries().size(), 4u);
}

TEST(PrefixTrie, EraseRemovesOnlyExact) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.0.0.0/12"), 2);
  EXPECT_FALSE(trie.erase(pfx("10.0.0.0/10")));
  EXPECT_TRUE(trie.erase(pfx("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(pfx("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_FALSE(trie.contains(pfx("10.0.0.0/8")));
  EXPECT_TRUE(trie.contains(pfx("10.0.0.0/12")));
  // LPM no longer sees the erased ancestor.
  const auto match =
      trie.longest_match(Ipv4Address::parse_or_throw("10.200.0.1"));
  EXPECT_FALSE(match.has_value());
}

TEST(PrefixTrie, ClearResets) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.contains(pfx("10.0.0.0/8")));
  trie.insert(pfx("12.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixSet, BasicSetSemantics) {
  PrefixSet set;
  EXPECT_TRUE(set.insert(pfx("10.0.0.0/8")));
  EXPECT_FALSE(set.insert(pfx("10.0.0.0/8")));
  EXPECT_TRUE(set.contains(pfx("10.0.0.0/8")));
  EXPECT_TRUE(set.covers(Ipv4Address::parse_or_throw("10.9.9.9")));
  EXPECT_FALSE(set.covers(Ipv4Address::parse_or_throw("11.0.0.1")));
  EXPECT_TRUE(set.erase(pfx("10.0.0.0/8")));
  EXPECT_TRUE(set.empty());
}

TEST(PrefixSet, ToVectorAscending) {
  PrefixSet set;
  set.insert(pfx("192.168.0.0/16"));
  set.insert(pfx("10.0.0.0/8"));
  set.insert(pfx("10.0.0.0/12"));
  const auto sorted = set.to_vector();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], pfx("10.0.0.0/8"));
  EXPECT_EQ(sorted[1], pfx("10.0.0.0/12"));
  EXPECT_EQ(sorted[2], pfx("192.168.0.0/16"));
}

// Property sweep: random insert/erase/query workloads must match the
// linear-scan oracle exactly.
class TriePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriePropertyTest, MatchesLinearOracle) {
  util::Rng rng(GetParam());
  PrefixSet fast;
  LinearPrefixSet slow;

  const auto random_prefix = [&] {
    // Cluster prefixes in a narrow space so containment is common.
    const int length = 6 + static_cast<int>(rng.bounded(20));
    const auto base = static_cast<std::uint32_t>(rng.bounded(1ULL << 12))
                      << 20;
    return Prefix(Ipv4Address(base), length);
  };

  for (int step = 0; step < 3000; ++step) {
    const Prefix prefix = random_prefix();
    const double action = rng.uniform();
    if (action < 0.55) {
      fast.insert(prefix);
      slow.insert(prefix);
    } else if (action < 0.75) {
      EXPECT_EQ(fast.erase(prefix), slow.erase(prefix));
    } else {
      EXPECT_EQ(fast.contains(prefix), slow.contains(prefix));
      EXPECT_EQ(fast.has_strict_ancestor(prefix),
                slow.has_strict_ancestor(prefix));
      const Ipv4Address addr(
          static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
      EXPECT_EQ(fast.longest_match(addr), slow.longest_match(addr));
      EXPECT_EQ(fast.shortest_match(addr), slow.shortest_match(addr));
      EXPECT_EQ(fast.within(prefix), slow.within(prefix));
    }
    ASSERT_EQ(fast.size(), slow.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace tass::trie
