// Tests for scan/target_iterator: the number-theoretic helpers and the
// ZMap-style full-cycle permutation, including exact full-cycle coverage
// on small universes.
#include "scan/target_iterator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace tass::scan {
namespace {

TEST(PowMod, MatchesKnownValues) {
  EXPECT_EQ(pow_mod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(pow_mod(2, 0, 97), 1u);
  EXPECT_EQ(pow_mod(5, 96, 97), 1u);  // Fermat's little theorem
  EXPECT_EQ(mul_mod(1ULL << 62, 8, (1ULL << 62) + 1),
            pow_mod(2, 65, (1ULL << 62) + 1));
}

TEST(IsPrime, ClassifiesCorrectly) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(561));  // Carmichael number
  EXPECT_TRUE(is_prime(kPermutationPrime));
  EXPECT_FALSE(is_prime((1ULL << 32) + 1));
  EXPECT_TRUE(is_prime(1000000007));
  EXPECT_TRUE(is_prime(18446744073709551557ULL));  // largest 64-bit prime
}

TEST(LeastPrimeAbove, FindsTheClassicModulus) {
  EXPECT_EQ(least_prime_above(1ULL << 32), kPermutationPrime);
  EXPECT_EQ(least_prime_above(1), 2u);
  EXPECT_EQ(least_prime_above(2), 3u);
  EXPECT_EQ(least_prime_above(10), 11u);
  EXPECT_EQ(least_prime_above(13), 17u);
}

TEST(Factorisation, DistinctPrimes) {
  EXPECT_EQ(distinct_prime_factors(1), std::vector<std::uint64_t>{});
  EXPECT_EQ(distinct_prime_factors(12), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(distinct_prime_factors(97), std::vector<std::uint64_t>{97});
  EXPECT_EQ(distinct_prime_factors(2 * 2 * 3 * 5 * 5 * 7),
            (std::vector<std::uint64_t>{2, 3, 5, 7}));
}

TEST(Factorisation, GroupOrderOfTheZmapPrime) {
  const auto factors = distinct_prime_factors(kPermutationPrime - 1);
  ASSERT_FALSE(factors.empty());
  std::uint64_t remainder = kPermutationPrime - 1;
  for (const std::uint64_t factor : factors) {
    EXPECT_EQ(remainder % factor, 0u);
    while (remainder % factor == 0) remainder /= factor;
  }
  EXPECT_EQ(remainder, 1u);
}

TEST(PrimitiveRoot, KnownSmallPrime) {
  // Z_7*: 3 and 5 are generators; 2 and 4 are not (2^3 = 1 mod 7).
  const auto factors = distinct_prime_factors(6);
  EXPECT_TRUE(is_primitive_root(3, 7, factors));
  EXPECT_TRUE(is_primitive_root(5, 7, factors));
  EXPECT_FALSE(is_primitive_root(2, 7, factors));
  EXPECT_FALSE(is_primitive_root(4, 7, factors));
  EXPECT_FALSE(is_primitive_root(7, 7, factors));  // 0 mod p
}

TEST(TargetIterator, UsesTheClassicModulusForFullSpace) {
  const TargetIterator iterator(42);
  EXPECT_EQ(iterator.modulus(), kPermutationPrime);
  const auto factors = distinct_prime_factors(kPermutationPrime - 1);
  EXPECT_TRUE(
      is_primitive_root(iterator.generator(), kPermutationPrime, factors));
}

TEST(TargetIterator, FullCycleCoversSmallUniverseExactlyOnce) {
  for (const std::uint64_t universe : {1ULL, 2ULL, 3ULL, 1000ULL, 4096ULL,
                                       10007ULL}) {
    TargetIterator iterator(17, universe);
    std::vector<bool> seen(universe, false);
    std::uint64_t count = 0;
    while (const auto value = iterator.next_value()) {
      ASSERT_LT(*value, universe);
      ASSERT_FALSE(seen[*value]) << "duplicate in universe " << universe;
      seen[*value] = true;
      ++count;
    }
    EXPECT_EQ(count, universe);
    EXPECT_TRUE(iterator.done());
    EXPECT_EQ(iterator.emitted(), universe);
  }
}

TEST(TargetIterator, DeterministicPerSeedAndDistinctAcrossSeeds) {
  TargetIterator a(7);
  TargetIterator b(7);
  TargetIterator c(8);
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const auto av = a.next();
    const auto bv = b.next();
    const auto cv = c.next();
    ASSERT_TRUE(av && bv && cv);
    EXPECT_EQ(*av, *bv);
    differs = differs || (*av != *cv);
  }
  EXPECT_TRUE(differs);
}

TEST(TargetIterator, FullSpaceEmitsUniqueAddresses) {
  TargetIterator iterator(99);
  std::unordered_set<std::uint32_t> seen;
  for (int i = 0; i < 200000; ++i) {
    const auto addr = iterator.next();
    ASSERT_TRUE(addr.has_value());
    EXPECT_TRUE(seen.insert(addr->value()).second)
        << "duplicate after " << i << " draws";
  }
  EXPECT_EQ(iterator.emitted(), 200000u);
  EXPECT_FALSE(iterator.done());
}

TEST(TargetIterator, ShardsPartitionTheUniverse) {
  constexpr std::uint32_t kShards = 3;
  constexpr std::uint64_t kUniverse = 9001;
  std::vector<int> seen(kUniverse, 0);
  std::uint64_t total = 0;
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    TargetIterator iterator =
        TargetIterator::shard(5, shard, kShards, kUniverse);
    while (const auto value = iterator.next_value()) {
      ++seen[*value];
      ++total;
    }
  }
  EXPECT_EQ(total, kUniverse);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int count) { return count == 1; }));
}

TEST(TargetIterator, ShardCycleLengthsSumToGroupOrder) {
  constexpr std::uint32_t kShards = 7;
  const std::uint64_t order = kPermutationPrime - 1;
  std::uint64_t total = 0;
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    total += (order - shard + kShards - 1) / kShards;
  }
  EXPECT_EQ(total, order);
}

TEST(TargetIterator, AddressesCoverLowAndHighSpace) {
  // The permutation must not be biased away from any region: after a
  // modest number of draws we should have seen all 8 top-octant classes.
  TargetIterator iterator(3);
  std::unordered_set<std::uint32_t> octants;
  for (int i = 0; i < 1000 && octants.size() < 8; ++i) {
    const auto addr = iterator.next();
    ASSERT_TRUE(addr.has_value());
    octants.insert(addr->value() >> 29);
  }
  EXPECT_EQ(octants.size(), 8u);
}

}  // namespace
}  // namespace tass::scan
