// Tests for bgp/deaggregate: the Figure 2 minimal-partition algorithm.
#include "bgp/deaggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::bgp {
namespace {

using net::Ipv4Address;
using net::Prefix;

Prefix pfx(const char* text) { return Prefix::parse_or_throw(text); }

// Checks the partition property: tiles are disjoint, sorted ascending and
// exactly cover `covering`.
void expect_tiles_partition(Prefix covering,
                            const std::vector<Prefix>& tiles) {
  ASSERT_FALSE(tiles.empty());
  std::uint64_t expected_next = covering.network().value();
  std::uint64_t total = 0;
  for (const Prefix tile : tiles) {
    EXPECT_EQ(tile.network().value(), expected_next) << tile.to_string();
    expected_next += tile.size();
    total += tile.size();
    EXPECT_TRUE(covering.contains(tile));
  }
  EXPECT_EQ(total, covering.size());
}

TEST(Deaggregate, PaperFigure2Example) {
  // /8 around an announced /12 -> {/12, /12-sibling, /11, /10, /9}.
  const auto tiles = deaggregate(pfx("100.0.0.0/8"), {{pfx("100.0.0.0/12")}});
  const std::vector<Prefix> expected = {
      pfx("100.0.0.0/12"), pfx("100.16.0.0/12"), pfx("100.32.0.0/11"),
      pfx("100.64.0.0/10"), pfx("100.128.0.0/9")};
  EXPECT_EQ(tiles, expected);
}

TEST(Deaggregate, NoMoreSpecificsYieldsTheCoveringItself) {
  const auto tiles = deaggregate(pfx("10.0.0.0/8"), {});
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], pfx("10.0.0.0/8"));
}

TEST(Deaggregate, MoreSpecificEqualToAHalf) {
  const auto tiles = deaggregate(pfx("10.0.0.0/8"), {{pfx("10.128.0.0/9")}});
  const std::vector<Prefix> expected = {pfx("10.0.0.0/9"),
                                        pfx("10.128.0.0/9")};
  EXPECT_EQ(tiles, expected);
}

TEST(Deaggregate, MiddleOfThePrefix) {
  const auto tiles = deaggregate(pfx("10.0.0.0/8"), {{pfx("10.64.0.0/10")}});
  const std::vector<Prefix> expected = {
      pfx("10.0.0.0/10"), pfx("10.64.0.0/10"), pfx("10.128.0.0/9")};
  EXPECT_EQ(tiles, expected);
}

TEST(Deaggregate, MultipleDisjointMoreSpecifics) {
  const auto tiles = deaggregate(
      pfx("10.0.0.0/8"), {{pfx("10.0.0.0/10"), pfx("10.192.0.0/10")}});
  const std::vector<Prefix> expected = {
      pfx("10.0.0.0/10"), pfx("10.64.0.0/10"), pfx("10.128.0.0/10"),
      pfx("10.192.0.0/10")};
  EXPECT_EQ(tiles, expected);
}

TEST(Deaggregate, NestedMoreSpecificsRefineRecursively) {
  // /16 inside /12 inside /8: the /12 region is itself split around /16.
  const auto tiles = deaggregate(
      pfx("10.0.0.0/8"), {{pfx("10.0.0.0/12"), pfx("10.0.0.0/16")}});
  expect_tiles_partition(pfx("10.0.0.0/8"), tiles);
  EXPECT_TRUE(std::find(tiles.begin(), tiles.end(), pfx("10.0.0.0/16")) !=
              tiles.end());
  // The /12 itself must NOT survive whole: its /16 subset is a cell.
  EXPECT_TRUE(std::find(tiles.begin(), tiles.end(), pfx("10.0.0.0/12")) ==
              tiles.end());
}

TEST(Deaggregate, DuplicatesAreIgnored) {
  const auto once = deaggregate(pfx("10.0.0.0/8"), {{pfx("10.0.0.0/12")}});
  const auto twice = deaggregate(
      pfx("10.0.0.0/8"), {{pfx("10.0.0.0/12"), pfx("10.0.0.0/12")}});
  EXPECT_EQ(once, twice);
}

TEST(Deaggregate, Host32InsideSmallPrefix) {
  const auto tiles =
      deaggregate(pfx("192.0.2.0/30"), {{pfx("192.0.2.2/32")}});
  const std::vector<Prefix> expected = {
      pfx("192.0.2.0/31"), pfx("192.0.2.2/32"), pfx("192.0.2.3/32")};
  EXPECT_EQ(tiles, expected);
}

TEST(Deaggregate, RejectsNonContainedInput) {
  EXPECT_THROW(deaggregate(pfx("10.0.0.0/8"), {{pfx("11.0.0.0/9")}}),
               Error);
  // Equal prefix is not *strictly* contained.
  EXPECT_THROW(deaggregate(pfx("10.0.0.0/8"), {{pfx("10.0.0.0/8")}}),
               Error);
  // Shorter prefix containing the covering.
  EXPECT_THROW(deaggregate(pfx("10.0.0.0/8"), {{pfx("0.0.0.0/4")}}), Error);
}

// Property sweep: random more-specific sets produce valid minimal
// partitions containing every maximal announced more-specific as a cell.
class DeaggregateProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DeaggregateProperty, PartitionInvariants) {
  util::Rng rng(GetParam());
  const Prefix covering = pfx("10.0.0.0/8");

  for (int round = 0; round < 100; ++round) {
    std::vector<Prefix> inside;
    const int count = 1 + static_cast<int>(rng.bounded(12));
    for (int i = 0; i < count; ++i) {
      const int length =
          covering.length() + 1 + static_cast<int>(rng.bounded(10));
      const std::uint64_t slots = 1ULL << (length - covering.length());
      const std::uint64_t slot = rng.bounded(slots);
      inside.emplace_back(
          Ipv4Address(covering.network().value() |
                      static_cast<std::uint32_t>(slot << (32 - length))),
          length);
    }
    const auto tiles = deaggregate(covering, inside);
    expect_tiles_partition(covering, tiles);

    // An announced more-specific appears as an exact output cell iff no
    // other announced prefix is strictly contained in it (otherwise the
    // partition refines it further).
    for (const Prefix m : inside) {
      const bool refined =
          std::any_of(inside.begin(), inside.end(), [&](Prefix other) {
            return other != m && m.contains(other);
          });
      const bool is_cell =
          std::find(tiles.begin(), tiles.end(), m) != tiles.end();
      EXPECT_EQ(is_cell, !refined) << m.to_string();
    }

    // Minimality: two sibling tiles may both exist only if merging them
    // would swallow (strictly contain) an announced more-specific.
    for (const Prefix tile : tiles) {
      if (tile.length() == covering.length()) continue;
      const Prefix sibling = tile.sibling();
      if (std::find(tiles.begin(), tiles.end(), sibling) == tiles.end()) {
        continue;
      }
      const Prefix parent = tile.parent();
      const bool parent_would_swallow =
          std::any_of(inside.begin(), inside.end(), [&](Prefix m) {
            return parent.contains(m) && m != parent;
          });
      EXPECT_TRUE(parent_would_swallow)
          << "siblings " << tile.to_string() << " and "
          << sibling.to_string() << " should have been merged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeaggregateProperty,
                         ::testing::Values(7, 14, 21, 28));

}  // namespace
}  // namespace tass::bgp
