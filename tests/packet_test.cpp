// Tests for scan/packet: internet checksums, SYN probe synthesis and
// ZMap-style stateless response validation.
#include "scan/packet.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tass::scan {
namespace {

using net::Ipv4Address;

TEST(InternetChecksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::byte data[] = {std::byte{0x00}, std::byte{0x01},
                            std::byte{0xf2}, std::byte{0x03},
                            std::byte{0xf4}, std::byte{0xf5},
                            std::byte{0xf6}, std::byte{0xf7}};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::byte odd[] = {std::byte{0xab}};
  // 0xab00 -> ~0xab00 = 0x54ff.
  EXPECT_EQ(internet_checksum(odd), 0x54ff);
}

TEST(InternetChecksum, EmptyIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(ProbeBuilder, ProducesVerifiableHeaders) {
  const ProbeBuilder builder(Ipv4Address::parse_or_throw("198.51.100.9"),
                             443, /*validation_key=*/0x1234);
  const Ipv4Address target = Ipv4Address::parse_or_throw("93.184.216.34");
  const ProbePacket packet = builder.build(target);

  // decode_probe verifies both checksums.
  const DecodedProbe decoded = decode_probe(packet.bytes);
  EXPECT_EQ(decoded.ip.source.to_string(), "198.51.100.9");
  EXPECT_EQ(decoded.ip.destination, target);
  EXPECT_EQ(decoded.ip.protocol, 6);
  EXPECT_EQ(decoded.ip.total_length, 40);
  EXPECT_EQ(decoded.tcp.destination_port, 443);
  EXPECT_EQ(decoded.tcp.flags, TcpHeader::kFlagSyn);
  EXPECT_EQ(decoded.tcp.source_port, builder.source_port_for(target));
  EXPECT_EQ(decoded.tcp.sequence, builder.sequence_for(target));
  // Ephemeral port range.
  EXPECT_GE(decoded.tcp.source_port, 32768);
}

TEST(ProbeBuilder, DeterministicPerTargetDistinctAcrossTargets) {
  const ProbeBuilder builder(Ipv4Address(1), 80, 42);
  const Ipv4Address a = Ipv4Address::parse_or_throw("10.0.0.1");
  const Ipv4Address b = Ipv4Address::parse_or_throw("10.0.0.2");
  EXPECT_EQ(builder.build(a).bytes, builder.build(a).bytes);
  EXPECT_NE(builder.build(a).bytes, builder.build(b).bytes);
  EXPECT_NE(builder.sequence_for(a), builder.sequence_for(b));
}

TEST(ProbeBuilder, ValidatesGenuineResponses) {
  const ProbeBuilder builder(Ipv4Address(7), 22, 0xfeed);
  const Ipv4Address target = Ipv4Address::parse_or_throw("203.0.113.99");

  // A well-formed SYN-ACK: from (target, 22) to our MAC'd source port,
  // acking sequence+1.
  EXPECT_TRUE(builder.validate_response(target, 22,
                                        builder.source_port_for(target),
                                        builder.sequence_for(target) + 1));
  // Wrong ack (blind spoofing without knowing the key).
  EXPECT_FALSE(builder.validate_response(target, 22,
                                         builder.source_port_for(target),
                                         builder.sequence_for(target) + 2));
  // Wrong destination port (not ours).
  EXPECT_FALSE(builder.validate_response(
      target, 22, builder.source_port_for(target) ^ 1,
      builder.sequence_for(target) + 1));
  // Wrong source port on the responder side.
  EXPECT_FALSE(builder.validate_response(target, 23,
                                         builder.source_port_for(target),
                                         builder.sequence_for(target) + 1));
  // A different host cannot replay another target's validation values.
  const Ipv4Address other = Ipv4Address::parse_or_throw("203.0.113.100");
  EXPECT_FALSE(builder.validate_response(other, 22,
                                         builder.source_port_for(target),
                                         builder.sequence_for(target) + 1));
}

TEST(ProbeBuilder, KeysSeparateScans) {
  const Ipv4Address target = Ipv4Address::parse_or_throw("10.9.8.7");
  const ProbeBuilder a(Ipv4Address(1), 80, 1);
  const ProbeBuilder b(Ipv4Address(1), 80, 2);
  EXPECT_NE(a.sequence_for(target), b.sequence_for(target));
  EXPECT_FALSE(b.validate_response(target, 80, a.source_port_for(target),
                                   a.sequence_for(target) + 1));
}

TEST(DecodeProbe, RejectsCorruption) {
  const ProbeBuilder builder(Ipv4Address(5), 80, 9);
  ProbePacket packet =
      builder.build(Ipv4Address::parse_or_throw("192.0.2.55"));

  auto bad_ip = packet.bytes;
  bad_ip[8] = std::byte{1};  // TTL change invalidates the IP checksum
  EXPECT_THROW(decode_probe(bad_ip), FormatError);

  auto bad_tcp = packet.bytes;
  bad_tcp[Ipv4Header::kSize + 4] ^= std::byte{0xff};  // sequence byte
  EXPECT_THROW(decode_probe(bad_tcp), FormatError);

  EXPECT_THROW(decode_probe(std::span(packet.bytes).first(39)),
               FormatError);
}

TEST(EncodeHeaders, ChecksumsSelfVerify) {
  // An encoded IPv4 header checksums to zero over its own bytes.
  Ipv4Header ip;
  ip.source = Ipv4Address::parse_or_throw("10.0.0.1");
  ip.destination = Ipv4Address::parse_or_throw("10.0.0.2");
  ip.total_length = 40;
  std::array<std::byte, Ipv4Header::kSize> ip_bytes{};
  encode_ipv4_header(ip, ip_bytes);
  EXPECT_EQ(internet_checksum(ip_bytes), 0);
}

}  // namespace
}  // namespace tass::scan
