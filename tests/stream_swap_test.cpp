// TSan stress: the stream reactor publishing generations into a
// serve::GenerationStore while reader threads serve from it — the
// full live-churn serving path. The reactor's pipeline thread is the
// store's single writer (install + retire per published plan); four
// reader threads continuously acquire the current generation and verify
// every answer against the generation its own header names: the sealed
// TSIM image must attach, carry the fingerprint the publisher claimed,
// and answer locate() consistently with its own partition — no torn
// images, no use-after-retire, no generation ever dropped. The CI tsan
// job runs this suite to certify the RCU-style swap under churn.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "bgp/rib_delta.hpp"
#include "net/prefix.hpp"
#include "serve/generation.hpp"
#include "state/image.hpp"
#include "stream/reactor.hpp"
#include "stream/source.hpp"
#include "util/rng.hpp"

namespace tass {
namespace {

constexpr std::size_t kReaders = 4;
constexpr std::size_t kPrefixes = 160;
constexpr int kSteps = 48;

/// One published plan as the serving side sees it: the sealed image
/// bytes plus the metadata the publisher claimed for them.
struct PlanImage {
  std::uint64_t plan_seq = 0;
  std::uint64_t fingerprint = 0;
  std::vector<std::byte> bytes;
};

net::Prefix nth_prefix(std::size_t i) {
  return net::Prefix(
      net::Ipv4Address(0x0a000000u + (static_cast<std::uint32_t>(i) << 8)),
      24);
}

TEST(StreamSwapTest, ReactorPublishesGenerationsUnderConcurrentReaders) {
  std::vector<bgp::Pfx2AsRecord> table;
  std::vector<std::uint32_t> counts;
  for (std::size_t i = 0; i < kPrefixes; ++i) {
    table.push_back({nth_prefix(i), {static_cast<std::uint32_t>(100 + i)}});
    counts.push_back(static_cast<std::uint32_t>(i % 7));
  }

  serve::GenerationStore<PlanImage> store(kReaders);
  std::atomic<std::uint64_t> installs{0};
  std::atomic<std::uint64_t> retired{0};

  stream::ReactorOptions options;
  options.max_batch_delay_seconds = 0.002;
  stream::StreamReactor reactor(table, counts, options);
  // Publisher runs on the pipeline thread — the store's single writer.
  reactor.set_publisher([&](stream::PublishedPlan plan) {
    PlanImage image;
    image.plan_seq = plan.seq;
    image.fingerprint = plan.fingerprint;
    image.bytes = std::move(plan.image);
    const auto* displaced = store.install(std::move(image));
    installs.fetch_add(1, std::memory_order_relaxed);
    if (displaced != nullptr) {
      store.retire(displaced);
      retired.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::atomic<bool> done{false};
  std::vector<std::set<std::uint64_t>> seen(kReaders);
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(0xfeed + r);
      std::uint64_t last_seq = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto ref = store.acquire(r);
        if (!ref) {
          std::this_thread::yield();
          continue;
        }
        // Store sequence numbers only move forward.
        ASSERT_GE(ref.seq(), last_seq);
        last_seq = ref.seq();
        seen[r].insert(ref.seq());
        // Verify the response against the generation its header names:
        // the image must attach (magic, checksum, structural audit)
        // and carry exactly the fingerprint the publisher sealed.
        const PlanImage& plan = ref.image();
        const state::StateImage image = state::StateImage::attach(
            plan.bytes, plan.fingerprint);
        ASSERT_EQ(image.info().fingerprint, plan.fingerprint);
        // And it must answer from its own consistent topology: any
        // address an image locates maps back to a cell whose prefix
        // contains it.
        for (int probe = 0; probe < 32; ++probe) {
          const net::Ipv4Address addr(static_cast<std::uint32_t>(
              0x0a000000u + rng.bounded(kPrefixes << 8)));
          if (const auto cell = image.partition().locate(addr)) {
            ASSERT_TRUE(image.partition().prefix(*cell).contains(addr));
          }
        }
      }
    });
  }

  // Feed churn: withdraw and re-announce a rotating window of prefixes,
  // streamed through a BufferSource in bounded chunks.
  auto source = std::make_unique<stream::BufferSource>(
      std::vector<std::byte>{}, /*max_chunk=*/256);
  stream::BufferSource* feed = source.get();
  reactor.start(std::move(source));

  for (int step = 0; step < kSteps; ++step) {
    bgp::RibDelta delta;
    const std::size_t victim = static_cast<std::size_t>(step) % kPrefixes;
    if (step % 2 == 0) {
      delta.withdraw.push_back(nth_prefix(victim));
    } else {
      const std::size_t back =
          static_cast<std::size_t>(step - 1) % kPrefixes;
      delta.announce.push_back(
          {nth_prefix(back), {static_cast<std::uint32_t>(7000 + step)}});
    }
    const auto wire = bgp::encode_mrt_updates(
        delta, static_cast<std::uint32_t>(1441584000 + step));
    feed->append(wire);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  feed->close();
  reactor.join();
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  const stream::ReactorStats stats = reactor.stats();
  // Every topology change was published and installed; none dropped.
  EXPECT_EQ(installs.load(), stats.plans_published);
  EXPECT_GE(installs.load(), 2u);
  EXPECT_EQ(retired.load(), installs.load() - 1);
  EXPECT_EQ(store.current_seq(), installs.load());
  EXPECT_EQ(stats.queue.dropped, 0u);
  EXPECT_EQ(stats.framer.decode_errors, 0u);
  // The readers raced real swaps, not one static generation.
  std::set<std::uint64_t> all_seen;
  for (const auto& per_reader : seen) {
    all_seen.insert(per_reader.begin(), per_reader.end());
  }
  EXPECT_GE(all_seen.size(), 2u);
  // With kSteps even the trace ends on a re-announce, so every
  // withdrawn prefix came back: the full table is live again.
  EXPECT_EQ(reactor.partition().live_cells(), kPrefixes);
}

}  // namespace
}  // namespace tass
