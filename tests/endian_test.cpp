// Tests for util/endian: big-endian codecs and the bounds-checked
// reader/writer used by the MRT implementation.
#include "util/endian.hpp"

#include <gtest/gtest.h>

namespace tass::util {
namespace {

TEST(Endian, Load16) {
  const std::byte data[] = {std::byte{0x12}, std::byte{0x34}};
  EXPECT_EQ(load_be16(data), 0x1234u);
}

TEST(Endian, Load32) {
  const std::byte data[] = {std::byte{0xDE}, std::byte{0xAD},
                            std::byte{0xBE}, std::byte{0xEF}};
  EXPECT_EQ(load_be32(data), 0xDEADBEEFu);
}

TEST(Endian, RoundTrip64) {
  std::byte buffer[8];
  store_be64(0x0123456789ABCDEFULL, buffer);
  EXPECT_EQ(load_be64(buffer), 0x0123456789ABCDEFULL);
  EXPECT_EQ(std::to_integer<int>(buffer[0]), 0x01);  // big-endian order
  EXPECT_EQ(std::to_integer<int>(buffer[7]), 0xEF);
}

TEST(ByteWriter, AppendsNetworkOrder) {
  ByteWriter writer;
  writer.u8(0xAA);
  writer.u16(0x1234);
  writer.u32(0xCAFEBABE);
  ASSERT_EQ(writer.size(), 7u);
  const auto view = writer.view();
  EXPECT_EQ(std::to_integer<int>(view[0]), 0xAA);
  EXPECT_EQ(std::to_integer<int>(view[1]), 0x12);
  EXPECT_EQ(std::to_integer<int>(view[2]), 0x34);
  EXPECT_EQ(std::to_integer<int>(view[3]), 0xCA);
  EXPECT_EQ(std::to_integer<int>(view[6]), 0xBE);
}

TEST(ByteWriter, PatchRewritesLengthFields) {
  ByteWriter writer;
  writer.u16(0);  // placeholder
  writer.u32(0);  // placeholder
  writer.u8(7);
  writer.patch_u16(0, 0xBEEF);
  writer.patch_u32(2, 0x11223344);
  ByteReader reader(writer.view());
  EXPECT_EQ(reader.u16(), 0xBEEFu);
  EXPECT_EQ(reader.u32(), 0x11223344u);
  EXPECT_EQ(reader.u8(), 7u);
}

TEST(ByteReader, ReadsSequentially) {
  ByteWriter writer;
  writer.u32(42);
  writer.u64(1ULL << 40);
  ByteReader reader(writer.view());
  EXPECT_EQ(reader.remaining(), 12u);
  EXPECT_EQ(reader.u32(), 42u);
  EXPECT_EQ(reader.u64(), 1ULL << 40);
  EXPECT_TRUE(reader.done());
}

TEST(ByteReader, ThrowsOnTruncation) {
  ByteWriter writer;
  writer.u16(1);
  ByteReader reader(writer.view());
  EXPECT_EQ(reader.u8(), 0u);
  EXPECT_THROW(reader.u32(), FormatError);
}

TEST(ByteReader, SubReaderConsumesParent) {
  ByteWriter writer;
  writer.u32(0xAABBCCDD);
  writer.u8(0x99);
  ByteReader reader(writer.view());
  ByteReader sub = reader.sub(4);
  EXPECT_EQ(sub.u32(), 0xAABBCCDDu);
  EXPECT_TRUE(sub.done());
  EXPECT_EQ(reader.u8(), 0x99u);
  EXPECT_THROW(reader.sub(1), FormatError);
}

TEST(ByteReader, BytesViewsWithoutCopy) {
  ByteWriter writer;
  writer.u32(0x01020304);
  ByteReader reader(writer.view());
  const auto bytes = reader.bytes(2);
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 0x01);
  EXPECT_EQ(std::to_integer<int>(bytes[1]), 0x02);
  EXPECT_EQ(reader.remaining(), 2u);
}

}  // namespace
}  // namespace tass::util
