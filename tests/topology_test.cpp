// Tests for census/topology: the buddy allocator and the synthetic
// BGP-table generator.
#include "census/topology.hpp"

#include <gtest/gtest.h>

#include "net/special_use.hpp"
#include "trie/prefix_set.hpp"

namespace tass::census {
namespace {

TEST(BuddyAllocator, AllocatesRequestedSizeDisjointly) {
  util::Rng rng(1);
  const std::vector<net::Prefix> pool = {
      net::Prefix::parse_or_throw("10.0.0.0/8")};
  BuddyAllocator allocator(pool);
  EXPECT_EQ(allocator.free_addresses(), 1ULL << 24);

  trie::PrefixSet used;
  std::uint64_t allocated = 0;
  for (int i = 0; i < 64; ++i) {
    const auto block = allocator.allocate(14, rng);
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(block->length(), 14);
    EXPECT_TRUE(net::Prefix::parse_or_throw("10.0.0.0/8").contains(*block));
    EXPECT_FALSE(used.has_strict_ancestor(*block));
    EXPECT_FALSE(used.contains(*block));
    EXPECT_TRUE(used.within(*block).empty());
    used.insert(*block);
    allocated += block->size();
  }
  // 64 x /14 exactly exhausts a /8.
  EXPECT_EQ(allocated, 1ULL << 24);
  EXPECT_EQ(allocator.free_addresses(), 0u);
  EXPECT_FALSE(allocator.allocate(14, rng).has_value());
}

TEST(BuddyAllocator, SplitsLargerBlocks) {
  util::Rng rng(2);
  BuddyAllocator allocator(
      std::vector<net::Prefix>{net::Prefix::parse_or_throw("10.0.0.0/8")});
  const auto small = allocator.allocate(24, rng);
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(small->length(), 24);
  EXPECT_EQ(allocator.free_addresses(), (1ULL << 24) - 256);
}

TEST(BuddyAllocator, MixedSizesNeverOverlap) {
  util::Rng rng(3);
  BuddyAllocator allocator(net::scannable_space().to_prefixes());
  trie::PrefixSet used;
  for (int i = 0; i < 500; ++i) {
    const int length = 10 + static_cast<int>(rng.bounded(14));
    const auto block = allocator.allocate(length, rng);
    ASSERT_TRUE(block.has_value());
    EXPECT_FALSE(used.has_strict_ancestor(*block));
    EXPECT_TRUE(used.within(*block).empty());
    used.insert(*block);
    // Never allocates reserved space.
    EXPECT_FALSE(net::reserved_space().contains(block->network()));
  }
}

TEST(Topology, DeterministicInSeed) {
  TopologyParams params;
  params.seed = 99;
  params.l_prefix_count = 200;
  const auto a = generate_topology(params);
  const auto b = generate_topology(params);
  ASSERT_EQ(a->table.size(), b->table.size());
  EXPECT_TRUE(std::equal(a->table.routes().begin(), a->table.routes().end(),
                         b->table.routes().begin()));
  EXPECT_EQ(a->l_types, b->l_types);
  EXPECT_EQ(a->l_origin_as, b->l_origin_as);

  params.seed = 100;
  const auto c = generate_topology(params);
  EXPECT_FALSE(a->table.size() == c->table.size() &&
               std::equal(a->table.routes().begin(),
                          a->table.routes().end(),
                          c->table.routes().begin()));
}

TEST(Topology, StructuralInvariants) {
  TopologyParams params;
  params.seed = 5;
  params.l_prefix_count = 300;
  const auto topo = generate_topology(params);

  EXPECT_EQ(topo->l_partition.size(), 300u);
  EXPECT_EQ(topo->advertised_addresses, topo->l_partition.address_count());
  EXPECT_EQ(topo->advertised_addresses, topo->m_partition.address_count());
  EXPECT_EQ(topo->cell_to_l.size(), topo->m_partition.size());
  EXPECT_EQ(topo->l_types.size(), topo->l_partition.size());
  EXPECT_EQ(topo->l_origin_as.size(), topo->l_partition.size());

  // Every m-cell maps to the l-cell that contains it.
  for (std::uint32_t cell = 0; cell < topo->m_partition.size(); ++cell) {
    const net::Prefix cell_prefix = topo->m_partition.prefix(cell);
    const net::Prefix l_prefix =
        topo->l_partition.prefix(topo->cell_to_l[cell]);
    EXPECT_TRUE(l_prefix.contains(cell_prefix));
  }

  // cells_of_l is the inverse mapping, and covers each l exactly.
  for (std::uint32_t l = 0; l < topo->l_partition.size(); ++l) {
    std::uint64_t covered = 0;
    for (const std::uint32_t cell : topo->cells_of_l(l)) {
      EXPECT_EQ(topo->cell_to_l[cell], l);
      covered += topo->m_partition.prefix(cell).size();
    }
    EXPECT_EQ(covered, topo->l_partition.prefix(l).size());
  }
}

TEST(Topology, StatsTrackThePaperScale) {
  TopologyParams params;
  params.seed = 2016;
  params.l_prefix_count = 2000;
  const auto topo = generate_topology(params);
  const auto stats = topo->table.stats();
  // The calibration targets (paper section 3.2): 54% m-prefixes holding
  // ~34% of the advertised space. Generous tolerances; exact values are
  // asserted at full scale by the calibration suite.
  EXPECT_GT(stats.m_prefix_fraction, 0.40);
  EXPECT_LT(stats.m_prefix_fraction, 0.65);
  EXPECT_GT(stats.m_prefix_space_fraction, 0.20);
  EXPECT_LT(stats.m_prefix_space_fraction, 0.45);
  // No prefixes longer than the cap.
  for (const bgp::RouteEntry& route : topo->table.routes()) {
    EXPECT_LE(route.prefix.length(), params.max_prefix_length);
  }
}

TEST(Topology, AnnouncedSpaceAvoidsReservedRanges) {
  TopologyParams params;
  params.seed = 8;
  params.l_prefix_count = 500;
  const auto topo = generate_topology(params);
  const auto advertised = topo->l_partition.to_interval_set();
  EXPECT_TRUE(advertised.intersect(net::reserved_space()).empty());
}

TEST(TopologyFromTable, DerivesStructuresFromExternalRib) {
  const std::vector<bgp::Pfx2AsRecord> records = {
      {net::Prefix::parse_or_throw("10.0.0.0/8"), {100}},
      {net::Prefix::parse_or_throw("10.0.0.0/12"), {101}},
      {net::Prefix::parse_or_throw("20.0.0.0/8"), {200}},
  };
  const auto topo =
      topology_from_table(bgp::RoutingTable::from_pfx2as(records), 1);
  EXPECT_EQ(topo->l_partition.size(), 2u);
  EXPECT_GT(topo->m_partition.size(), 2u);
  EXPECT_EQ(topo->advertised_addresses, 2ULL << 24);
  // Deterministic type assignment from the seed.
  const auto topo2 =
      topology_from_table(bgp::RoutingTable::from_pfx2as(records), 1);
  EXPECT_EQ(topo->l_types, topo2->l_types);
}

}  // namespace
}  // namespace tass::census
