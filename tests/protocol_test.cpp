// Tests for census/protocol: registry consistency and the structural
// sanity of every calibrated preset.
#include "census/protocol.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace tass::census {
namespace {

TEST(Protocol, NamesAndPorts) {
  EXPECT_EQ(protocol_name(Protocol::kFtp), "ftp");
  EXPECT_EQ(protocol_port(Protocol::kFtp), 21);
  EXPECT_EQ(protocol_name(Protocol::kCwmp), "cwmp");
  EXPECT_EQ(protocol_port(Protocol::kCwmp), 7547);
  EXPECT_EQ(protocol_port(Protocol::kHttps), 443);
}

TEST(Protocol, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_protocol("ftp"), Protocol::kFtp);
  EXPECT_EQ(parse_protocol("HTTP"), Protocol::kHttp);
  EXPECT_EQ(parse_protocol("Cwmp"), Protocol::kCwmp);
  EXPECT_THROW(parse_protocol("gopher"), ParseError);
}

TEST(Protocol, PaperSetIsTheEvaluatedFour) {
  const auto paper = paper_protocols();
  ASSERT_EQ(paper.size(), 4u);
  EXPECT_EQ(paper[0], Protocol::kFtp);
  EXPECT_EQ(paper[1], Protocol::kHttp);
  EXPECT_EQ(paper[2], Protocol::kHttps);
  EXPECT_EQ(paper[3], Protocol::kCwmp);
  EXPECT_EQ(all_protocols().size(), kProtocolCount);
}

TEST(Protocol, NetworkTypeNames) {
  EXPECT_EQ(network_type_name(NetworkType::kEyeball), "eyeball");
  EXPECT_EQ(network_type_name(NetworkType::kHosting), "hosting");
}

class ProfileSanity : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProfileSanity, StructurallyValid) {
  const ProtocolProfile& profile = protocol_profile(GetParam());
  EXPECT_EQ(profile.protocol, GetParam());
  EXPECT_GT(profile.base_hosts, 0.0);

  // Tier host shares must sum to 1 (all hosts accounted for) and space
  // shares must leave room for a zero tier.
  double host_sum = 0;
  double space_sum = 0;
  double previous_density = std::numeric_limits<double>::infinity();
  for (const DensityTier& tier : profile.tiers) {
    EXPECT_GT(tier.space_share, 0.0);
    EXPECT_GE(tier.host_share, 0.0);
    host_sum += tier.host_share;
    space_sum += tier.space_share;
    // Tiers must be ordered densest-first.
    const double density = tier.host_share / tier.space_share;
    EXPECT_LT(density, previous_density);
    previous_density = density;
  }
  EXPECT_NEAR(host_sum, 1.0, 1e-9);
  EXPECT_LT(space_sum, 1.0);

  // The fully-empty-l share fits inside the zero tier.
  EXPECT_LE(profile.empty_l_space_share, 1.0 - space_sum + 1e-9);

  // Churn rates are probabilities / monthly fractions.
  for (const double rate :
       {profile.volatile_fraction, profile.volatile_cross_cell,
        profile.monthly_death_rate, profile.empty_m_birth_rate,
        profile.empty_l_birth_rate}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LT(rate, 1.0);
  }
  // Births into empty cells must fit inside the monthly birth budget.
  EXPECT_LT(profile.empty_m_birth_rate + profile.empty_l_birth_rate,
            profile.monthly_death_rate);

  // Affinity must be positive somewhere.
  const double affinity_sum = std::accumulate(
      profile.affinity.begin(), profile.affinity.end(), 0.0);
  EXPECT_GT(affinity_sum, 0.0);
  EXPECT_GT(profile.handshake_packets, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProfileSanity,
    ::testing::Values(Protocol::kFtp, Protocol::kHttp, Protocol::kHttps,
                      Protocol::kCwmp, Protocol::kSsh, Protocol::kTelnet),
    [](const ::testing::TestParamInfo<Protocol>& param_info) {
      return std::string(protocol_name(param_info.param));
    });

TEST(ProfileCalibration, CwmpIsTheVolatileOutlier) {
  // Figure 5's contrast: residential gateways churn much harder.
  const auto& cwmp = protocol_profile(Protocol::kCwmp);
  for (const Protocol p :
       {Protocol::kFtp, Protocol::kHttp, Protocol::kHttps}) {
    EXPECT_GT(cwmp.volatile_fraction,
              protocol_profile(p).volatile_fraction);
    EXPECT_GT(cwmp.monthly_death_rate,
              protocol_profile(p).monthly_death_rate);
    EXPECT_GT(cwmp.empty_m_birth_rate,
              protocol_profile(p).empty_m_birth_rate);
  }
  // And it concentrates in eyeball space.
  EXPECT_GT(cwmp.affinity[static_cast<std::size_t>(NetworkType::kEyeball)],
            cwmp.affinity[static_cast<std::size_t>(NetworkType::kHosting)]);
}

}  // namespace
}  // namespace tass::census
