// Tests for census/import: ingesting real scan exports as snapshots.
#include "census/import.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "census/population.hpp"
#include "core/ranking.hpp"
#include "util/error.hpp"

namespace tass::census {
namespace {

std::shared_ptr<const Topology> test_topology() {
  static const auto topo = [] {
    TopologyParams params;
    params.seed = 1212;
    params.l_prefix_count = 60;
    return generate_topology(params);
  }();
  return topo;
}

TEST(AddressList, ParsesPlainAndCsvLines) {
  const auto addresses = parse_address_list(
      "# zmap output\n"
      "192.0.2.1\n"
      "  192.0.2.2  \n"
      "192.0.2.3,443,2015-09-07\n"
      "\n");
  ASSERT_EQ(addresses.size(), 3u);
  EXPECT_EQ(net::Ipv4Address(addresses[2]).to_string(), "192.0.2.3");
}

TEST(AddressList, StrictVsLenient) {
  const std::string text = "192.0.2.1\nnot-an-ip\n192.0.2.2\n";
  EXPECT_THROW(parse_address_list(text, /*strict=*/true), ParseError);
  std::size_t skipped = 0;
  const auto addresses =
      parse_address_list(text, /*strict=*/false, &skipped);
  EXPECT_EQ(addresses.size(), 2u);
  EXPECT_EQ(skipped, 1u);
}

TEST(AddressList, FileLoading) {
  const auto path =
      std::filesystem::temp_directory_path() / "tass_import_test.txt";
  {
    std::ofstream out(path);
    out << "8.8.8.8\n1.1.1.1\n";
  }
  EXPECT_EQ(load_address_list(path.string()).size(), 2u);
  std::filesystem::remove(path);
  EXPECT_THROW(load_address_list(path.string()), Error);
}

TEST(SnapshotImport, PlacesDropsAndDeduplicates) {
  const auto topo = test_topology();
  // Two addresses inside the topology (one duplicated) and one outside.
  const net::Prefix inside = topo->m_partition.prefix(0);
  std::vector<std::uint32_t> addresses = {
      inside.network().value() + 1, inside.network().value() + 1,
      inside.network().value() + 2};
  // Find an address outside the advertised space.
  std::uint32_t outside = 0;
  while (topo->m_partition.locate(net::Ipv4Address(outside)).has_value()) {
    outside += 1 << 24;
  }
  addresses.push_back(outside);

  ImportStats stats;
  const Snapshot snapshot = snapshot_from_addresses(
      topo, Protocol::kHttp, 0, addresses, &stats);
  EXPECT_EQ(stats.imported, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.outside_topology, 1u);
  EXPECT_EQ(snapshot.total_hosts(), 2u);
  EXPECT_TRUE(
      snapshot.contains(net::Ipv4Address(inside.network().value() + 1)));
  EXPECT_FALSE(snapshot.contains(net::Ipv4Address(outside)));
}

TEST(SnapshotImport, RoundTripsThroughExportText) {
  // Export a synthetic snapshot as text, re-import it, and verify the
  // density ranking is identical — the full real-data path.
  PopulationParams pop;
  pop.host_scale = 0.0005;
  const Snapshot original = generate_population(
      test_topology(), protocol_profile(Protocol::kFtp), pop);

  std::string exported;
  original.for_each_address([&](net::Ipv4Address addr) {
    exported += addr.to_string();
    exported += '\n';
  });
  const auto addresses = parse_address_list(exported);
  const Snapshot imported = snapshot_from_addresses(
      test_topology(), Protocol::kFtp, 0, addresses);

  EXPECT_EQ(imported.total_hosts(), original.total_hosts());
  EXPECT_EQ(imported.addresses(), original.addresses());

  const auto rank_a =
      core::rank_by_density(original, core::PrefixMode::kMore);
  const auto rank_b =
      core::rank_by_density(imported, core::PrefixMode::kMore);
  ASSERT_EQ(rank_a.ranked.size(), rank_b.ranked.size());
  for (std::size_t i = 0; i < rank_a.ranked.size(); ++i) {
    EXPECT_EQ(rank_a.ranked[i].prefix, rank_b.ranked[i].prefix);
    EXPECT_EQ(rank_a.ranked[i].hosts, rank_b.ranked[i].hosts);
  }
}

}  // namespace
}  // namespace tass::census
