// Unit tests for the incremental churn pipeline's delta layer:
// bgp::RibDelta (diff / apply / MRT update codec) and
// bgp::PrefixPartition::apply_delta with its PartitionDelta projection.
#include "bgp/rib_delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bgp/partition.hpp"
#include "util/error.hpp"

namespace tass::bgp {
namespace {

net::Prefix pfx(std::string_view text) {
  return net::Prefix::parse_or_throw(text);
}

std::vector<Pfx2AsRecord> base_table() {
  return {
      {pfx("10.0.0.0/8"), {100}},
      {pfx("10.64.0.0/10"), {200}},
      {pfx("172.16.0.0/12"), {300, 301}},
      {pfx("192.0.2.0/24"), {400}},
  };
}

// ---- diff / apply ----------------------------------------------------

TEST(RibDeltaTest, DiffDetectsAllThreeChangeKinds) {
  const auto from = base_table();
  std::vector<Pfx2AsRecord> to = {
      {pfx("10.0.0.0/8"), {100}},           // unchanged
      {pfx("10.64.0.0/10"), {250}},         // reorigin
      {pfx("192.0.2.0/24"), {400}},         // unchanged
      {pfx("198.51.100.0/24"), {500}},      // announce
  };                                        // 172.16/12 withdrawn
  const RibDelta delta = RibDelta::diff(from, to);
  ASSERT_EQ(delta.announce.size(), 1u);
  EXPECT_EQ(delta.announce[0].prefix, pfx("198.51.100.0/24"));
  ASSERT_EQ(delta.withdraw.size(), 1u);
  EXPECT_EQ(delta.withdraw[0], pfx("172.16.0.0/12"));
  ASSERT_EQ(delta.reorigin.size(), 1u);
  EXPECT_EQ(delta.reorigin[0].origins, (std::vector<std::uint32_t>{250}));
  EXPECT_NO_THROW(delta.validate());

  // diff . apply round-trips to the target table (sorted by prefix).
  auto applied = delta.apply(from);
  std::sort(to.begin(), to.end(),
            [](const Pfx2AsRecord& a, const Pfx2AsRecord& b) {
              return a.prefix < b.prefix;
            });
  EXPECT_EQ(applied, to);
}

TEST(RibDeltaTest, DiffOfIdenticalTablesIsEmpty) {
  const auto table = base_table();
  const RibDelta delta = RibDelta::diff(table, table);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.change_count(), 0u);
  // Applying the empty delta returns the table, sorted by prefix.
  const auto applied = delta.apply(table);
  EXPECT_EQ(applied.size(), table.size());
  EXPECT_TRUE(std::is_sorted(applied.begin(), applied.end(),
                             [](const Pfx2AsRecord& a, const Pfx2AsRecord& b) {
                               return a.prefix < b.prefix;
                             }));
}

TEST(RibDeltaTest, DiffRejectsDuplicatePrefixesInEitherTable) {
  auto table = base_table();
  table.push_back({pfx("10.0.0.0/8"), {999}});
  EXPECT_THROW(RibDelta::diff(table, base_table()), Error);
  EXPECT_THROW(RibDelta::diff(base_table(), table), Error);
}

TEST(RibDeltaTest, ValidateRejectsCorruptAndDuplicateDeltas) {
  {
    RibDelta delta;  // duplicate within a section
    delta.withdraw = {pfx("10.0.0.0/8"), pfx("10.0.0.0/8")};
    EXPECT_THROW(delta.validate(), Error);
  }
  {
    RibDelta delta;  // same prefix in two sections
    delta.announce = {{pfx("10.0.0.0/8"), {1}}};
    delta.withdraw = {pfx("10.0.0.0/8")};
    EXPECT_THROW(delta.validate(), Error);
  }
  {
    RibDelta delta;  // announce without an origin
    delta.announce = {{pfx("10.0.0.0/8"), {}}};
    EXPECT_THROW(delta.validate(), Error);
  }
  {
    RibDelta delta;  // reorigin without an origin
    delta.reorigin = {{pfx("10.0.0.0/8"), {}}};
    EXPECT_THROW(delta.validate(), Error);
  }
}

TEST(RibDeltaTest, ApplyRejectsDeltasThatDoNotFitTheTable) {
  const auto table = base_table();
  {
    RibDelta delta;  // withdraw of an unknown prefix
    delta.withdraw = {pfx("203.0.113.0/24")};
    EXPECT_THROW(delta.apply(table), Error);
  }
  {
    RibDelta delta;  // announce of an existing prefix
    delta.announce = {{pfx("10.0.0.0/8"), {1}}};
    EXPECT_THROW(delta.apply(table), Error);
  }
  {
    RibDelta delta;  // reorigin of an unknown prefix
    delta.reorigin = {{pfx("203.0.113.0/24"), {1}}};
    EXPECT_THROW(delta.apply(table), Error);
  }
}

// ---- MRT update stream round-trip ------------------------------------

TEST(RibDeltaTest, MrtUpdateStreamRoundTripsThroughRebase) {
  const auto table = base_table();
  RibDelta delta;  // sections ascending by prefix (the canonical form
                   // diff/decode/rebased produce)
  delta.announce = {{pfx("198.18.0.0/15"), {600, 601}},  // multi-origin
                    {pfx("198.51.100.0/24"), {500}},
                    {pfx("203.0.113.0/24"), {500}}};     // same origin group
  delta.withdraw = {pfx("172.16.0.0/12"), pfx("192.0.2.0/24")};
  delta.reorigin = {{pfx("10.64.0.0/10"), {250}}};

  const auto wire = encode_mrt_updates(delta, 1441584000);
  std::size_t skipped = 7;
  const RibDelta decoded = decode_mrt_updates(wire, &skipped);
  EXPECT_EQ(skipped, 0u);
  // On the wire a reorigin is just a re-announcement; rebasing against the
  // pre-delta table recovers the three-way split exactly.
  EXPECT_TRUE(decoded.reorigin.empty());
  EXPECT_EQ(decoded.announce.size(),
            delta.announce.size() + delta.reorigin.size());
  const RibDelta rebased_delta = rebased(decoded, table);
  EXPECT_EQ(rebased_delta, delta);
}

TEST(RibDeltaTest, MrtUpdateStreamChunksLargeDeltas) {
  // More prefixes than fit one UPDATE message: forces the chunking path.
  RibDelta delta;
  for (std::uint32_t i = 0; i < 300; ++i) {
    delta.announce.push_back(
        {net::Prefix(net::Ipv4Address(0x0a000000u + (i << 8)), 24), {i + 1}});
  }
  const auto wire = encode_mrt_updates(delta, 0);
  const RibDelta decoded = decode_mrt_updates(wire);
  EXPECT_EQ(decoded.announce.size(), 300u);
  EXPECT_TRUE(decoded.withdraw.empty());
  EXPECT_EQ(decoded.announce, delta.announce);  // both ascending by prefix
}

TEST(RibDeltaTest, DecodeCoalescesRepeatedUpdatesLastOneWins) {
  // announce P, then withdraw P, then announce P again with new origins:
  // stream order must collapse to the final announcement.
  RibDelta first;
  first.announce = {{pfx("198.51.100.0/24"), {1}}};
  RibDelta second;
  second.withdraw = {pfx("198.51.100.0/24")};
  RibDelta third;
  third.announce = {{pfx("198.51.100.0/24"), {2}}};
  std::vector<std::byte> wire;
  for (const RibDelta* d : {&first, &second, &third}) {
    const auto part = encode_mrt_updates(*d, 0);
    wire.insert(wire.end(), part.begin(), part.end());
  }
  const RibDelta decoded = decode_mrt_updates(wire);
  ASSERT_EQ(decoded.announce.size(), 1u);
  EXPECT_EQ(decoded.announce[0].origins, (std::vector<std::uint32_t>{2}));
  EXPECT_TRUE(decoded.withdraw.empty());
}

TEST(RibDeltaTest, RebasedDropsNoOpReannouncements) {
  const auto table = base_table();
  RibDelta delta;
  delta.announce = {{pfx("10.0.0.0/8"), {100}},   // identical: drop
                    {pfx("10.64.0.0/10"), {9}},   // differs: reorigin
                    {pfx("198.51.100.0/24"), {5}}};  // new: announce
  const RibDelta result = rebased(delta, table);
  ASSERT_EQ(result.announce.size(), 1u);
  EXPECT_EQ(result.announce[0].prefix, pfx("198.51.100.0/24"));
  ASSERT_EQ(result.reorigin.size(), 1u);
  EXPECT_EQ(result.reorigin[0].prefix, pfx("10.64.0.0/10"));
  EXPECT_TRUE(result.withdraw.empty());

  RibDelta bad;
  bad.withdraw = {pfx("203.0.113.0/24")};
  EXPECT_THROW(rebased(bad, table), Error);
}

// ---- partition delta projection and in-place apply -------------------

std::vector<net::Prefix> disjoint_prefixes() {
  return {pfx("10.0.0.0/16"), pfx("10.1.0.0/16"), pfx("172.16.0.0/16"),
          pfx("192.0.2.0/24"), pfx("198.51.100.0/24")};
}

TEST(PartitionDeltaTest, PartitionDeltaIsTheSetDiffOfLiveCells) {
  const PrefixPartition partition(disjoint_prefixes());
  const std::vector<net::Prefix> target{
      pfx("10.0.0.0/16"), pfx("10.1.0.0/16"), pfx("192.0.2.0/24"),
      pfx("203.0.113.0/24")};
  const PartitionDelta delta = partition_delta(partition, target);
  EXPECT_EQ(delta.remove, (std::vector<net::Prefix>{
                              pfx("172.16.0.0/16"), pfx("198.51.100.0/24")}));
  EXPECT_EQ(delta.add, (std::vector<net::Prefix>{pfx("203.0.113.0/24")}));

  const std::vector<net::Prefix> duplicated{pfx("10.0.0.0/16"),
                                            pfx("10.0.0.0/16")};
  EXPECT_THROW(partition_delta(partition, duplicated), Error);
}

TEST(PartitionDeltaTest, ApplyDeltaKeepsSurvivingCellIndicesStable) {
  PrefixPartition partition(disjoint_prefixes());
  PartitionDelta delta;
  delta.remove = {pfx("10.1.0.0/16")};
  delta.add = {pfx("203.0.113.0/24"), pfx("198.18.0.0/15")};
  const PartitionApplyResult result = partition.apply_delta(delta);

  EXPECT_EQ(result.old_cell_count, 5u);
  EXPECT_EQ(result.new_cell_count, 6u);
  EXPECT_EQ(result.removed_cells, (std::vector<std::uint32_t>{1}));
  // First addition reuses the freed slot 1, second appends as slot 5.
  EXPECT_EQ(result.added_cells, (std::vector<std::uint32_t>{1, 5}));

  // Survivors: same index, same prefix, same locate().
  EXPECT_EQ(partition.prefix(0), pfx("10.0.0.0/16"));
  EXPECT_EQ(partition.prefix(2), pfx("172.16.0.0/16"));
  EXPECT_EQ(partition.locate(net::Ipv4Address::parse_or_throw("10.0.5.5")),
            std::optional<std::uint32_t>{0});
  // The withdrawn space no longer locates anywhere...
  EXPECT_EQ(partition.locate(net::Ipv4Address::parse_or_throw("10.1.5.5")),
            std::nullopt);
  // ...and the new cells do.
  EXPECT_EQ(
      partition.locate(net::Ipv4Address::parse_or_throw("203.0.113.9")),
      std::optional<std::uint32_t>{1});
  EXPECT_EQ(
      partition.locate(net::Ipv4Address::parse_or_throw("198.19.0.1")),
      std::optional<std::uint32_t>{5});
  EXPECT_EQ(partition.index_of(pfx("203.0.113.0/24")),
            std::optional<std::uint32_t>{1});
  EXPECT_EQ(partition.live_cells(), 6u);
  EXPECT_EQ(partition.free_cells(), 0u);
}

TEST(PartitionDeltaTest, SurplusRemovalsLeaveReusableFreeSlots) {
  PrefixPartition partition(disjoint_prefixes());
  PartitionDelta shrink;
  shrink.remove = {pfx("10.0.0.0/16"), pfx("192.0.2.0/24")};
  const auto first = partition.apply_delta(shrink);
  EXPECT_EQ(first.removed_cells, (std::vector<std::uint32_t>{0, 3}));
  EXPECT_TRUE(first.added_cells.empty());
  EXPECT_EQ(partition.size(), 5u);        // slots stay
  EXPECT_EQ(partition.live_cells(), 3u);  // cells do not
  EXPECT_EQ(partition.free_cells(), 2u);
  EXPECT_FALSE(partition.live(0));
  EXPECT_TRUE(partition.live(1));
  EXPECT_EQ(partition.address_count(),
            pfx("10.1.0.0/16").size() + pfx("172.16.0.0/16").size() +
                pfx("198.51.100.0/24").size());

  PartitionDelta grow;
  grow.add = {pfx("203.0.113.0/24")};
  const auto second = partition.apply_delta(grow);
  EXPECT_EQ(second.added_cells, (std::vector<std::uint32_t>{0}));  // reused
  EXPECT_EQ(partition.prefix(0), pfx("203.0.113.0/24"));
  EXPECT_EQ(partition.free_cells(), 1u);
}

TEST(PartitionDeltaTest, ApplyDeltaValidationIsStrongAndPreMutation) {
  PrefixPartition partition(disjoint_prefixes());
  {
    PartitionDelta delta;  // removing a non-cell
    delta.remove = {pfx("203.0.113.0/24")};
    EXPECT_THROW(partition.apply_delta(delta), Error);
  }
  {
    PartitionDelta delta;  // removing the same cell twice
    delta.remove = {pfx("10.0.0.0/16"), pfx("10.0.0.0/16")};
    EXPECT_THROW(partition.apply_delta(delta), Error);
  }
  {
    PartitionDelta delta;  // addition overlapping a surviving cell
    delta.add = {pfx("10.0.0.0/8")};
    EXPECT_THROW(partition.apply_delta(delta), Error);
  }
  {
    PartitionDelta delta;  // addition nested inside a surviving cell
    delta.add = {pfx("10.0.99.0/24")};
    EXPECT_THROW(partition.apply_delta(delta), Error);
  }
  {
    PartitionDelta delta;  // additions overlapping each other
    delta.add = {pfx("203.0.113.0/24"), pfx("203.0.113.128/25")};
    EXPECT_THROW(partition.apply_delta(delta), Error);
  }
  // All rejections happened before any mutation.
  EXPECT_EQ(partition.live_cells(), 5u);
  EXPECT_EQ(partition.free_cells(), 0u);
  for (std::size_t i = 0; i < partition.size(); ++i) {
    EXPECT_EQ(partition.prefix(i), disjoint_prefixes()[i]);
  }
}

TEST(PartitionDeltaTest, RemoveAndReAddSamePrefixIsAllowed) {
  PrefixPartition partition(disjoint_prefixes());
  PartitionDelta delta;
  delta.remove = {pfx("10.1.0.0/16")};
  delta.add = {pfx("10.1.0.0/16")};
  const auto result = partition.apply_delta(delta);
  EXPECT_EQ(result.added_cells, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(partition.locate(net::Ipv4Address::parse_or_throw("10.1.2.3")),
            std::optional<std::uint32_t>{1});
  EXPECT_EQ(partition.live_cells(), 5u);
}

TEST(PartitionDeltaTest, SplittingACellMirrorsDeaggregationChurn) {
  PrefixPartition partition(disjoint_prefixes());
  PartitionDelta delta;
  delta.remove = {pfx("172.16.0.0/16")};
  delta.add = {pfx("172.16.0.0/17"), pfx("172.16.128.0/17")};
  const auto result = partition.apply_delta(delta);
  EXPECT_EQ(result.added_cells, (std::vector<std::uint32_t>{2, 5}));
  EXPECT_EQ(
      partition.locate(net::Ipv4Address::parse_or_throw("172.16.1.1")),
      std::optional<std::uint32_t>{2});
  EXPECT_EQ(
      partition.locate(net::Ipv4Address::parse_or_throw("172.16.200.1")),
      std::optional<std::uint32_t>{5});
  EXPECT_EQ(partition.address_count(),
            PrefixPartition(disjoint_prefixes()).address_count());
}

TEST(PartitionDeltaTest, ReindexPatchesPerCellVectors) {
  PartitionApplyResult result;
  result.old_cell_count = 4;
  result.new_cell_count = 5;
  result.removed_cells = {1};
  result.added_cells = {1, 4};
  std::vector<std::uint32_t> counts{10, 20, 30, 40};
  result.reindex(counts);
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{10, 0, 30, 40, 0}));
}

}  // namespace
}  // namespace tass::bgp
