// Tests for core/reseed: the Delta-t reseeding policy evaluation.
#include "core/reseed.hpp"

#include <gtest/gtest.h>

namespace tass::core {
namespace {

census::CensusSeries make_series(int months) {
  census::TopologyParams topo_params;
  topo_params.seed = 83;
  topo_params.l_prefix_count = 400;
  const auto topo = census::generate_topology(topo_params);
  census::SeriesParams params;
  params.months = months;
  params.host_scale = 0.002;
  params.seed = 19;
  return census::CensusSeries::generate(topo, census::Protocol::kCwmp,
                                        params);
}

TEST(Reseed, NeverReseedingMatchesPlainTass) {
  const auto series = make_series(6);
  SelectionParams params;
  params.phi = 0.95;
  ReseedPolicy never;
  never.interval_months = 0;
  const auto outcome =
      evaluate_with_reseed(series, PrefixMode::kMore, params, never);
  ASSERT_EQ(outcome.cycles.size(), 6u);
  EXPECT_EQ(outcome.reseed_count, 1);  // only the month-0 seed scan

  // Months 1+ must match a plain TassStrategy seeded at month 0.
  const TassStrategy plain(series.month(0), PrefixMode::kMore, params);
  for (int month = 1; month < 6; ++month) {
    EXPECT_EQ(outcome.cycles[static_cast<std::size_t>(month)].found_hosts,
              plain.found_hosts(series.month(month)));
  }
  // The seeding month is accounted as a full scan.
  EXPECT_DOUBLE_EQ(outcome.cycles[0].hitrate(), 1.0);
  EXPECT_EQ(outcome.cycles[0].scanned_addresses,
            series.topology().advertised_addresses);
}

TEST(Reseed, EveryMonthIsAFullScanSchedule) {
  const auto series = make_series(4);
  SelectionParams params;
  params.phi = 0.95;
  ReseedPolicy monthly;
  monthly.interval_months = 1;
  const auto outcome =
      evaluate_with_reseed(series, PrefixMode::kMore, params, monthly);
  EXPECT_EQ(outcome.reseed_count, 4);
  EXPECT_DOUBLE_EQ(outcome.mean_hitrate(), 1.0);
  EXPECT_DOUBLE_EQ(outcome.traffic_vs_monthly_full(
                       series.topology().advertised_addresses),
                   1.0);
}

TEST(Reseed, ShorterIntervalsBuyAccuracyWithTraffic) {
  const auto series = make_series(13);
  SelectionParams params;
  params.phi = 0.95;
  double previous_hitrate = 0.0;
  double previous_traffic = 0.0;
  // Walk from rare to frequent reseeding: both accuracy and traffic must
  // rise monotonically.
  for (const int interval : {0, 6, 3}) {
    ReseedPolicy policy;
    policy.interval_months = interval;
    const auto outcome =
        evaluate_with_reseed(series, PrefixMode::kMore, params, policy);
    const double traffic = outcome.traffic_vs_monthly_full(
        series.topology().advertised_addresses);
    EXPECT_GT(outcome.mean_hitrate(), previous_hitrate);
    EXPECT_GT(traffic, previous_traffic);
    EXPECT_LT(traffic, 1.0);  // always cheaper than monthly full scans
    previous_hitrate = outcome.mean_hitrate();
    previous_traffic = traffic;
  }
}

TEST(Reseed, ReseedRecoversAccuracy) {
  const auto series = make_series(13);
  SelectionParams params;
  params.phi = 1.0;
  ReseedPolicy policy;
  policy.interval_months = 6;
  const auto outcome =
      evaluate_with_reseed(series, PrefixMode::kMore, params, policy);
  // Months 0, 6 and 12 are reseeds with hitrate 1; month 7's hitrate must
  // beat month 5's (fresh selection vs a 5-month-old one).
  EXPECT_DOUBLE_EQ(outcome.cycles[6].hitrate(), 1.0);
  EXPECT_GT(outcome.cycles[7].hitrate(), outcome.cycles[5].hitrate());
  EXPECT_EQ(outcome.reseed_count, 3);
}

}  // namespace
}  // namespace tass::core
