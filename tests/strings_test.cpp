// Unit tests for util/strings: splitting, trimming, strict numeric parsing
// and formatting helpers used by the text-format parsers.
#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace tass::util {
namespace {

TEST(Split, PreservesEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Split, TrailingDelimiterYieldsTrailingEmpty) {
  const auto fields = split("x\ty\t", '\t');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "");
}

TEST(SplitWhitespace, CollapsesRuns) {
  const auto fields = split_whitespace("  a \t b\n\nc  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWhitespace, AllWhitespaceYieldsNothing) {
  EXPECT_TRUE(split_whitespace(" \t\r\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ParseU64, AcceptsCanonicalNumbers) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~0ULL);
}

TEST(ParseU64, RejectsNonCanonicalInput) {
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("+1").has_value());
  EXPECT_FALSE(parse_u64(" 1").has_value());
  EXPECT_FALSE(parse_u64("1 ").has_value());
  EXPECT_FALSE(parse_u64("0x10").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // overflow
}

TEST(ParseU32, RangeChecksTo32Bits) {
  EXPECT_EQ(parse_u32("4294967295"), 0xffffffffu);
  EXPECT_FALSE(parse_u32("4294967296").has_value());
}

TEST(ParseDouble, ParsesAndRejects) {
  EXPECT_DOUBLE_EQ(parse_double("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("-3").value(), -3.0);
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("table_dump", "table"));
  EXPECT_FALSE(starts_with("tab", "table"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(WithThousands, GroupsDigits) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(4294967296ULL), "4,294,967,296");
}

TEST(Fixed, FormatsWithPrecision) {
  EXPECT_EQ(fixed(0.5, 3), "0.500");
  EXPECT_EQ(fixed(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(fixed(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace tass::util
