// Tests for bgp/pfx2as: the CAIDA Routeviews prefix-to-AS text format.
#include "bgp/pfx2as.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace tass::bgp {
namespace {

TEST(Pfx2As, ParsesSingleOrigin) {
  const auto record = parse_pfx2as_line("1.0.0.0\t24\t13335");
  EXPECT_EQ(record.prefix.to_string(), "1.0.0.0/24");
  ASSERT_EQ(record.origins.size(), 1u);
  EXPECT_EQ(record.origins[0], 13335u);
}

TEST(Pfx2As, ParsesMultiOriginComma) {
  const auto record = parse_pfx2as_line("8.0.0.0\t9\t701,3356");
  ASSERT_EQ(record.origins.size(), 2u);
  EXPECT_EQ(record.origins[0], 701u);
  EXPECT_EQ(record.origins[1], 3356u);
}

TEST(Pfx2As, ParsesAsSetUnderscore) {
  const auto record = parse_pfx2as_line("12.0.0.0\t8\t4_5_6");
  ASSERT_EQ(record.origins.size(), 3u);
  EXPECT_EQ(record.origins[2], 6u);
}

TEST(Pfx2As, ParsesMixedOriginsAndDeduplicates) {
  const auto record = parse_pfx2as_line("12.0.0.0\t8\t7018,4_7018");
  ASSERT_EQ(record.origins.size(), 2u);
  EXPECT_EQ(record.origins[0], 7018u);
  EXPECT_EQ(record.origins[1], 4u);
}

TEST(Pfx2As, AcceptsSpacesAsSeparators) {
  const auto record = parse_pfx2as_line("10.0.0.0 8 64512");
  EXPECT_EQ(record.prefix.to_string(), "10.0.0.0/8");
}

TEST(Pfx2As, RejectsMalformedLines) {
  EXPECT_THROW(parse_pfx2as_line(""), ParseError);
  EXPECT_THROW(parse_pfx2as_line("1.0.0.0\t24"), ParseError);
  EXPECT_THROW(parse_pfx2as_line("1.0.0.0\t24\t13335\textra"), ParseError);
  EXPECT_THROW(parse_pfx2as_line("1.0.0.256\t24\t13335"), ParseError);
  EXPECT_THROW(parse_pfx2as_line("1.0.0.0\t33\t13335"), ParseError);
  EXPECT_THROW(parse_pfx2as_line("1.0.0.0\t24\tAS13335"), ParseError);
  EXPECT_THROW(parse_pfx2as_line("1.0.0.0\t24\t"), ParseError);
}

TEST(Pfx2As, DocumentSkipsCommentsAndBlanks) {
  const auto records = parse_pfx2as(
      "# CAIDA routeviews pfx2as\n"
      "\n"
      "1.0.0.0\t24\t13335\n"
      "  \n"
      "8.8.8.0\t24\t15169\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].origins[0], 15169u);
}

TEST(Pfx2As, StrictModeThrowsLenientModeCounts) {
  const std::string text =
      "1.0.0.0\t24\t13335\n"
      "2001:db8::\t32\t64496\n"  // v6 leakage
      "8.8.8.0\t24\t15169\n";
  EXPECT_THROW(parse_pfx2as(text, /*strict=*/true), ParseError);
  std::size_t skipped = 0;
  const auto records = parse_pfx2as(text, /*strict=*/false, &skipped);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(skipped, 1u);
}

TEST(Pfx2As, FormatRoundTrips) {
  const std::vector<Pfx2AsRecord> records = {
      {net::Prefix::parse_or_throw("1.0.0.0/24"), {13335}},
      {net::Prefix::parse_or_throw("8.0.0.0/9"), {701, 3356}},
  };
  const std::string text = format_pfx2as(records);
  EXPECT_EQ(text, "1.0.0.0\t24\t13335\n8.0.0.0\t9\t701,3356\n");
  EXPECT_EQ(parse_pfx2as(text), records);
}

TEST(Pfx2As, FileSaveLoadRoundTrips) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tass_pfx2as_test.txt";
  const std::vector<Pfx2AsRecord> records = {
      {net::Prefix::parse_or_throw("100.0.0.0/8"), {64500}},
      {net::Prefix::parse_or_throw("100.0.0.0/12"), {64501}},
  };
  save_pfx2as(path.string(), records);
  EXPECT_EQ(load_pfx2as(path.string()), records);
  std::filesystem::remove(path);
}

TEST(Pfx2As, LoadMissingFileThrows) {
  EXPECT_THROW(load_pfx2as("/nonexistent/path/pfx2as.txt"), Error);
}

}  // namespace
}  // namespace tass::bgp
