// Streamed-vs-batch differential suite for the live BGP stream reactor.
//
// The contract under test (the reactor's reason to exist): replaying a
// churn trace through the streaming path — MRT wire bytes, arbitrarily
// fragmented, through MrtFramer, the coalescing queue, and the reactor's
// classify/delta/rescan/rerank batch pipeline — must land on exactly the
// state the batch path produces from the same trace: decode + rebased +
// RibDelta::apply + partition_delta + apply_delta + core::churn_step.
//
// Two equivalence tiers are pinned:
//   * Lockstep (one churn step == one reactor batch): *bit-identical*
//     partition (slot numbering included), counts, ranking (every field,
//     float bits, RankedPrefix::index included) and routing table, for
//     any fragmentation of the wire and any engine thread count.
//   * Whole-stream (many steps folded through the queue, small batches,
//     or the asynchronous two-thread mode): batch boundaries shift slot
//     assignment, so equality is semantic — identical live prefix sets,
//     per-prefix counts, locate() behaviour, and rankings on every
//     index-independent field, in identical (canonical) order.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "bgp/partition.hpp"
#include "bgp/pfx2as.hpp"
#include "bgp/rib_delta.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "core/reseed.hpp"
#include "net/interval.hpp"
#include "scan/engine.hpp"
#include "scan/scope.hpp"
#include "state/image.hpp"
#include "stream/reactor.hpp"
#include "stream/source.hpp"
#include "util/rng.hpp"

namespace tass {
namespace {

// Probe oracle over a sorted, duplicate-free address vector (the same
// reference oracle the delta differential suite uses).
class VectorOracle final : public scan::ProbeOracle {
 public:
  explicit VectorOracle(std::vector<std::uint32_t> hosts)
      : hosts_(std::move(hosts)) {}

  bool responds(net::Ipv4Address addr) const override {
    return std::binary_search(hosts_.begin(), hosts_.end(), addr.value());
  }
  std::uint64_t count_responsive(net::Interval interval) const override {
    return static_cast<std::uint64_t>(range(interval).second -
                                      range(interval).first);
  }
  void collect_responsive(net::Interval interval,
                          std::vector<std::uint32_t>& out) const override {
    const auto [first, last] = range(interval);
    out.insert(out.end(), first, last);
  }

 private:
  std::pair<std::vector<std::uint32_t>::const_iterator,
            std::vector<std::uint32_t>::const_iterator>
  range(net::Interval interval) const {
    return {std::lower_bound(hosts_.begin(), hosts_.end(),
                             interval.first.value()),
            std::upper_bound(hosts_.begin(), hosts_.end(),
                             interval.last.value())};
  }

  std::vector<std::uint32_t> hosts_;
};

std::vector<std::uint32_t> attribute_from_scratch(
    const bgp::PrefixPartition& partition, const scan::ProbeOracle& oracle,
    const scan::ScanEngine& engine) {
  const scan::ScanScope scope(
      net::IntervalSet::of_prefixes(partition.live_prefixes()));
  const auto attributed = engine.run_attributed(scope, oracle, partition);
  std::vector<std::uint32_t> counts(attributed.cell_counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>(attributed.cell_counts[i]);
  }
  return counts;
}

void expect_rankings_bit_identical(const core::DensityRanking& got,
                                   const core::DensityRanking& want) {
  EXPECT_EQ(got.mode, want.mode);
  EXPECT_EQ(got.total_hosts, want.total_hosts);
  EXPECT_EQ(got.advertised_addresses, want.advertised_addresses);
  ASSERT_EQ(got.ranked.size(), want.ranked.size());
  for (std::size_t i = 0; i < got.ranked.size(); ++i) {
    const core::RankedPrefix& a = got.ranked[i];
    const core::RankedPrefix& b = want.ranked[i];
    ASSERT_EQ(a.index, b.index) << "rank " << i;
    ASSERT_EQ(a.prefix, b.prefix) << "rank " << i;
    ASSERT_EQ(a.size, b.size) << "rank " << i;
    ASSERT_EQ(a.hosts, b.hosts) << "rank " << i;
    ASSERT_EQ(a.density, b.density) << "rank " << i;
    ASSERT_EQ(a.host_share, b.host_share) << "rank " << i;
  }
}

// Index-independent ranking equality: the prefix tie-break makes the
// rank order canonical across cell numberings, so everything but the
// slot index must agree exactly.
void expect_rankings_semantically_identical(const core::DensityRanking& got,
                                            const core::DensityRanking& want) {
  EXPECT_EQ(got.mode, want.mode);
  EXPECT_EQ(got.total_hosts, want.total_hosts);
  EXPECT_EQ(got.advertised_addresses, want.advertised_addresses);
  ASSERT_EQ(got.ranked.size(), want.ranked.size());
  for (std::size_t i = 0; i < got.ranked.size(); ++i) {
    const core::RankedPrefix& a = got.ranked[i];
    const core::RankedPrefix& b = want.ranked[i];
    ASSERT_EQ(a.prefix, b.prefix) << "rank " << i;
    ASSERT_EQ(a.size, b.size) << "rank " << i;
    ASSERT_EQ(a.hosts, b.hosts) << "rank " << i;
    ASSERT_EQ(a.density, b.density) << "rank " << i;
    ASSERT_EQ(a.host_share, b.host_share) << "rank " << i;
  }
}

struct World {
  std::vector<bgp::Pfx2AsRecord> table;  // ascending by prefix
  std::vector<std::uint32_t> hosts;      // sorted responsive addresses
};

// Same synthetic world the delta differential uses, except the table is
// sorted by prefix: the reactor's bootstrap contract (cell i == table[i])
// needs both sides to share the initial cell numbering.
World generate_world(std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<net::Prefix> space{
      net::Prefix::parse_or_throw("4.0.0.0/6"),
      net::Prefix::parse_or_throw("64.0.0.0/6"),
      net::Prefix::parse_or_throw("128.0.0.0/6"),
      net::Prefix::parse_or_throw("196.0.0.0/6"),
  };
  census::BuddyAllocator allocator(space);
  World world;
  for (int i = 0; i < 1400; ++i) {
    const int length = 18 + static_cast<int>(rng.bounded(11));  // /18../28
    const auto prefix = allocator.allocate(length, rng);
    if (!prefix) continue;
    world.table.push_back(
        {*prefix, {static_cast<std::uint32_t>(1 + rng.bounded(500))}});
  }
  for (const auto& record : world.table) {
    if (!rng.chance(0.6)) continue;
    const std::uint64_t population = 1 + rng.bounded(16);
    for (std::uint64_t h = 0; h < population; ++h) {
      world.hosts.push_back(record.prefix.network().value() +
                            static_cast<std::uint32_t>(
                                rng.bounded(record.prefix.size())));
    }
  }
  std::sort(world.hosts.begin(), world.hosts.end());
  world.hosts.erase(std::unique(world.hosts.begin(), world.hosts.end()),
                    world.hosts.end());
  std::sort(world.table.begin(), world.table.end(),
            [](const bgp::Pfx2AsRecord& a, const bgp::Pfx2AsRecord& b) {
              return a.prefix < b.prefix;
            });
  return world;
}

// One step of BGP churn: withdrawals, deaggregation splits, aggregation
// merges, reorigins (the delta differential's generator).
bgp::RibDelta draw_churn(const std::vector<bgp::Pfx2AsRecord>& table,
                         util::Rng& rng) {
  std::vector<std::size_t> order(table.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(std::span(order));

  std::vector<net::Prefix> sorted;
  sorted.reserve(table.size());
  for (const auto& record : table) sorted.push_back(record.prefix);
  std::sort(sorted.begin(), sorted.end());
  const auto is_live = [&](net::Prefix p) {
    return std::binary_search(sorted.begin(), sorted.end(), p);
  };

  bgp::RibDelta delta;
  std::vector<bool> used(table.size(), false);
  std::size_t cursor = 0;
  const auto next_unused = [&]() -> std::optional<std::size_t> {
    while (cursor < order.size() && used[order[cursor]]) ++cursor;
    if (cursor == order.size()) return std::nullopt;
    used[order[cursor]] = true;
    return order[cursor++];
  };

  const std::size_t withdrawals = 1 + rng.bounded(10);
  for (std::size_t k = 0; k < withdrawals; ++k) {
    if (const auto i = next_unused()) {
      delta.withdraw.push_back(table[*i].prefix);
    }
  }
  const std::size_t splits = 1 + rng.bounded(8);
  for (std::size_t k = 0; k < splits; ++k) {
    if (const auto i = next_unused()) {
      const net::Prefix prefix = table[*i].prefix;
      if (prefix.length() >= 30) continue;  // withdrawn, never split
      delta.withdraw.push_back(prefix);
      delta.announce.push_back({prefix.lower_half(), table[*i].origins});
      delta.announce.push_back({prefix.upper_half(), table[*i].origins});
    }
  }
  const std::size_t merges = 1 + rng.bounded(6);
  for (std::size_t k = 0; k < merges; ++k) {
    if (const auto i = next_unused()) {
      const net::Prefix prefix = table[*i].prefix;
      const net::Prefix sibling = prefix.sibling();
      if (prefix.length() == 0 || !is_live(sibling)) continue;
      const auto sib = std::find_if(
          table.begin(), table.end(),
          [&](const bgp::Pfx2AsRecord& r) { return r.prefix == sibling; });
      const auto sib_index = static_cast<std::size_t>(sib - table.begin());
      if (used[sib_index]) continue;
      used[sib_index] = true;
      delta.withdraw.push_back(prefix);
      delta.withdraw.push_back(sibling);
      delta.announce.push_back({prefix.parent(), table[*i].origins});
    }
  }
  const std::size_t reorigins = 1 + rng.bounded(6);
  for (std::size_t k = 0; k < reorigins; ++k) {
    if (const auto i = next_unused()) {
      delta.reorigin.push_back(
          {table[*i].prefix,
           {table[*i].origins.front() + 1 +
            static_cast<std::uint32_t>(rng.bounded(100))}});
    }
  }

  const auto by_prefix = [](const bgp::Pfx2AsRecord& a,
                            const bgp::Pfx2AsRecord& b) {
    return a.prefix < b.prefix;
  };
  std::sort(delta.announce.begin(), delta.announce.end(), by_prefix);
  std::sort(delta.withdraw.begin(), delta.withdraw.end());
  std::sort(delta.reorigin.begin(), delta.reorigin.end(), by_prefix);
  delta.validate();
  return delta;
}

// Feeds `wire` to the reactor in random fragments of 1..max_fragment
// bytes — the framer must reassemble regardless of where reads split.
void feed_fragmented(stream::StreamReactor& reactor,
                     std::span<const std::byte> wire, util::Rng& rng,
                     std::size_t max_fragment) {
  std::size_t offset = 0;
  while (offset < wire.size()) {
    const std::size_t take = std::min<std::size_t>(
        wire.size() - offset, 1 + rng.bounded(max_fragment));
    reactor.feed(wire.subspan(offset, take));
    offset += take;
  }
}

void expect_partitions_bit_identical(const bgp::PrefixPartition& got,
                                     const bgp::PrefixPartition& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got.live_cells(), want.live_cells());
  EXPECT_EQ(got.address_count(), want.address_count());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.live(i), want.live(i)) << "slot " << i;
    if (got.live(i)) {
      ASSERT_EQ(got.prefix(i), want.prefix(i)) << "slot " << i;
    }
  }
  EXPECT_EQ(bgp::partition_fingerprint(got),
            bgp::partition_fingerprint(want));
}

// Semantic comparison for replays whose batch boundaries (and therefore
// slot numbering) differ: live sets, per-prefix counts, locate().
void expect_states_semantically_identical(
    const stream::StreamReactor& reactor,
    const bgp::PrefixPartition& want_partition,
    const std::vector<std::uint32_t>& want_counts, std::uint64_t probe_seed) {
  const bgp::PrefixPartition& got = reactor.partition();
  auto got_live = got.live_prefixes();
  auto want_live = want_partition.live_prefixes();
  std::sort(got_live.begin(), got_live.end());
  std::sort(want_live.begin(), want_live.end());
  ASSERT_EQ(got_live, want_live);
  EXPECT_EQ(got.address_count(), want_partition.address_count());
  // (partition_fingerprint hashes live prefixes in slot order, so it is
  // only comparable between identically-numbered partitions — the
  // lockstep test covers that; here the numbering legitimately differs.)

  for (const net::Prefix prefix : want_live) {
    const auto got_cell = got.index_of(prefix);
    const auto want_cell = want_partition.index_of(prefix);
    ASSERT_TRUE(got_cell.has_value()) << prefix.to_string();
    ASSERT_TRUE(want_cell.has_value()) << prefix.to_string();
    ASSERT_EQ(reactor.counts()[*got_cell], want_counts[*want_cell])
        << prefix.to_string();
  }

  util::Rng rng(probe_seed);
  for (int k = 0; k < 4000; ++k) {
    const net::Ipv4Address address(
        static_cast<std::uint32_t>(rng.bounded(1ull << 32)));
    const auto got_cell = got.locate(address);
    const auto want_cell = want_partition.locate(address);
    ASSERT_EQ(got_cell.has_value(), want_cell.has_value())
        << address.to_string();
    if (got_cell) {
      ASSERT_EQ(got.prefix(*got_cell), want_partition.prefix(*want_cell))
          << address.to_string();
    }
  }
}

// --- Lockstep: one churn step == one reactor batch, bit-identical ------

TEST(StreamDifferentialTest, LockstepReplayIsBitIdenticalToBatch) {
  constexpr int kSteps = 8;
  for (const std::uint64_t seed : {101ull, 202ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::Rng rng(util::mix64(seed, 1));
    World world = generate_world(seed);

    scan::EngineConfig config;
    config.threads = 1;
    const scan::ScanEngine engine(config);
    VectorOracle oracle(world.hosts);

    // Batch side.
    std::vector<net::Prefix> initial;
    for (const auto& record : world.table) initial.push_back(record.prefix);
    bgp::PrefixPartition partition(initial);
    std::vector<std::uint32_t> counts =
        attribute_from_scratch(partition, oracle, engine);
    core::DensityRanking ranking =
        core::rank_by_density(counts, partition, core::PrefixMode::kMore);

    // Streamed side: bootstrapped from the identical table and counts.
    stream::ReactorOptions options;
    options.max_batch = 1u << 14;  // a whole step always fits one batch
    stream::StreamReactor reactor(world.table, counts, options);
    reactor.set_rescanner(&oracle, &engine);
    std::vector<stream::PublishedPlan> plans;
    reactor.set_publisher(
        [&](stream::PublishedPlan plan) { plans.push_back(std::move(plan)); });

    auto table = world.table;
    for (int step = 0; step < kSteps; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      const bgp::RibDelta delta = draw_churn(table, rng);
      const auto wire = bgp::encode_mrt_updates(
          delta, static_cast<std::uint32_t>(1441584000 + step));

      // Batch path: decode + rebase + apply + delta + churn_step.
      const bgp::RibDelta decoded =
          bgp::rebased(bgp::decode_mrt_updates(wire), table);
      ASSERT_EQ(decoded, delta);
      table = delta.apply(table);
      std::vector<net::Prefix> target;
      for (const auto& record : table) target.push_back(record.prefix);
      const bgp::PartitionApplyResult applied =
          partition.apply_delta(partition_delta(partition, target));
      core::churn_step(ranking, counts, partition, applied, oracle, engine);

      // Streamed path: the same wire, randomly fragmented, one flush.
      const std::size_t max_fragment =
          1 + rng.bounded(step % 2 == 0 ? 7 : wire.size());
      feed_fragmented(reactor, wire, rng, max_fragment);
      reactor.flush();

      // Bit-identical state, every layer.
      ASSERT_EQ(reactor.table(), table);
      expect_partitions_bit_identical(reactor.partition(), partition);
      ASSERT_EQ(reactor.counts().size(), counts.size());
      ASSERT_TRUE(std::equal(reactor.counts().begin(),
                             reactor.counts().end(), counts.begin(),
                             counts.end()));
      expect_rankings_bit_identical(reactor.ranking(), ranking);
    }

    // A valid trace never trips the overlap guard or the resync path,
    // and every topology-changing step published exactly one plan.
    const stream::ReactorStats stats = reactor.stats();
    EXPECT_EQ(stats.rejected_overlaps, 0u);
    EXPECT_EQ(stats.framer.decode_errors, 0u);
    EXPECT_EQ(stats.framer.resyncs, 0u);
    EXPECT_EQ(stats.framer.bytes_discarded, 0u);
    EXPECT_EQ(stats.plans_published, static_cast<std::uint64_t>(kSteps));
    ASSERT_EQ(plans.size(), static_cast<std::size_t>(kSteps));
    for (std::size_t i = 0; i < plans.size(); ++i) {
      EXPECT_EQ(plans[i].seq, i + 1);
    }
    // The last sealed image is loadable and names the final topology.
    const state::StateImage image = state::StateImage::attach(
        plans.back().image);
    EXPECT_EQ(image.info().fingerprint,
              bgp::partition_fingerprint(partition));
    reactor.finish();
    EXPECT_EQ(reactor.stats().framer.truncated_tail, 0u);
  }
}

// --- Whole-stream: many steps through the queue in small batches -------

TEST(StreamDifferentialTest, WholeStreamReplayMatchesBatchSemantically) {
  constexpr int kSteps = 10;
  const std::uint64_t seed = 707;
  util::Rng rng(util::mix64(seed, 3));
  World world = generate_world(seed);

  scan::EngineConfig config;
  config.threads = 1;
  const scan::ScanEngine engine(config);
  VectorOracle oracle(world.hosts);

  std::vector<net::Prefix> initial;
  for (const auto& record : world.table) initial.push_back(record.prefix);
  bgp::PrefixPartition partition(initial);
  std::vector<std::uint32_t> counts =
      attribute_from_scratch(partition, oracle, engine);
  core::DensityRanking ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);

  stream::ReactorOptions options;
  options.max_batch = 7;  // force many mid-step batch boundaries
  stream::StreamReactor reactor(world.table, counts, options);
  reactor.set_rescanner(&oracle, &engine);

  // Concatenate the whole trace, then replay both sides.
  std::vector<std::byte> wire;
  auto table = world.table;
  for (int step = 0; step < kSteps; ++step) {
    const bgp::RibDelta delta = draw_churn(table, rng);
    const auto step_wire = bgp::encode_mrt_updates(
        delta, static_cast<std::uint32_t>(1441584000 + step));
    wire.insert(wire.end(), step_wire.begin(), step_wire.end());

    table = delta.apply(table);
    std::vector<net::Prefix> target;
    for (const auto& record : table) target.push_back(record.prefix);
    const bgp::PartitionApplyResult applied =
        partition.apply_delta(partition_delta(partition, target));
    core::churn_step(ranking, counts, partition, applied, oracle, engine);
  }

  feed_fragmented(reactor, wire, rng, 4096);
  reactor.flush();
  reactor.finish();

  // Queue folding may collapse announce→withdraw→announce chains across
  // steps, but the surviving state must be the batch path's final state.
  ASSERT_EQ(reactor.table(), table);
  expect_states_semantically_identical(reactor, partition, counts,
                                       util::mix64(seed, 4));
  expect_rankings_semantically_identical(
      reactor.ranking(),
      core::rank_by_density(counts, partition, core::PrefixMode::kMore));

  const stream::ReactorStats stats = reactor.stats();
  EXPECT_EQ(stats.rejected_overlaps, 0u);
  EXPECT_EQ(stats.framer.decode_errors, 0u);
  EXPECT_GE(stats.batches, 2u);
}

// --- Engine thread count must not leak into the streamed state ---------

TEST(StreamDifferentialTest, StreamedReplayIsThreadCountInvariant) {
  constexpr int kSteps = 4;
  const std::uint64_t seed = 909;
  World world = generate_world(seed);

  // One shared trace.
  std::vector<std::byte> wire;
  {
    util::Rng rng(util::mix64(seed, 5));
    auto table = world.table;
    for (int step = 0; step < kSteps; ++step) {
      const bgp::RibDelta delta = draw_churn(table, rng);
      const auto step_wire = bgp::encode_mrt_updates(
          delta, static_cast<std::uint32_t>(1441584000 + step));
      wire.insert(wire.end(), step_wire.begin(), step_wire.end());
      table = delta.apply(table);
    }
  }

  std::optional<core::DensityRanking> reference;
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    scan::EngineConfig config;
    config.threads = threads;
    config.min_addresses_per_shard = 1u << 12;  // force real sharding
    const scan::ScanEngine engine(config);
    VectorOracle oracle(world.hosts);

    std::vector<net::Prefix> initial;
    for (const auto& record : world.table) initial.push_back(record.prefix);
    const bgp::PrefixPartition bootstrap(initial);
    std::vector<std::uint32_t> counts =
        attribute_from_scratch(bootstrap, oracle, engine);

    stream::StreamReactor reactor(world.table, counts, {});
    reactor.set_rescanner(&oracle, &engine);
    util::Rng frag_rng(util::mix64(seed, 6));  // same fragmentation
    feed_fragmented(reactor, wire, frag_rng, 97);
    reactor.flush();

    if (!reference) {
      reference = reactor.ranking();
    } else {
      expect_rankings_bit_identical(reactor.ranking(), *reference);
    }
  }
}

// --- Asynchronous mode lands on the same state as synchronous ----------

TEST(StreamDifferentialTest, AsyncReplayMatchesBatchSemantically) {
  constexpr int kSteps = 6;
  const std::uint64_t seed = 1111;
  util::Rng rng(util::mix64(seed, 7));
  World world = generate_world(seed);

  scan::EngineConfig config;
  config.threads = 1;
  const scan::ScanEngine engine(config);
  VectorOracle oracle(world.hosts);

  std::vector<net::Prefix> initial;
  for (const auto& record : world.table) initial.push_back(record.prefix);
  bgp::PrefixPartition partition(initial);
  std::vector<std::uint32_t> counts =
      attribute_from_scratch(partition, oracle, engine);
  core::DensityRanking ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);

  std::vector<std::byte> wire;
  auto table = world.table;
  for (int step = 0; step < kSteps; ++step) {
    const bgp::RibDelta delta = draw_churn(table, rng);
    const auto step_wire = bgp::encode_mrt_updates(
        delta, static_cast<std::uint32_t>(1441584000 + step));
    wire.insert(wire.end(), step_wire.begin(), step_wire.end());
    table = delta.apply(table);
    std::vector<net::Prefix> target;
    for (const auto& record : table) target.push_back(record.prefix);
    const bgp::PartitionApplyResult applied =
        partition.apply_delta(partition_delta(partition, target));
    core::churn_step(ranking, counts, partition, applied, oracle, engine);
  }

  stream::ReactorOptions options;
  options.max_batch = 64;
  options.max_batch_delay_seconds = 0.002;
  options.read_chunk = 509;  // prime-sized reads fragment mid-record
  stream::StreamReactor reactor(world.table,
                                attribute_from_scratch(
                                    bgp::PrefixPartition(initial), oracle,
                                    engine),
                                options);
  reactor.set_rescanner(&oracle, &engine);
  std::uint64_t last_seq = 0;
  std::uint64_t published = 0;
  std::uint64_t final_fingerprint = 0;
  reactor.set_publisher([&](stream::PublishedPlan plan) {
    EXPECT_EQ(plan.seq, last_seq + 1);  // pipeline thread: ordered
    last_seq = plan.seq;
    ++published;
    final_fingerprint = plan.fingerprint;
  });

  auto source = std::make_unique<stream::BufferSource>(
      std::vector<std::byte>(wire.begin(), wire.end()), /*max_chunk=*/389);
  source->close();
  reactor.start(std::move(source));
  reactor.join();

  EXPECT_GE(published, 1u);
  // The last plan names the reactor's own final topology (fingerprints
  // are slot-order bound, so the batch partition's digest may differ).
  EXPECT_EQ(final_fingerprint,
            bgp::partition_fingerprint(reactor.partition()));
  ASSERT_EQ(reactor.table(), table);
  expect_states_semantically_identical(reactor, partition, counts,
                                       util::mix64(seed, 8));
  expect_rankings_semantically_identical(
      reactor.ranking(),
      core::rank_by_density(counts, partition, core::PrefixMode::kMore));
  EXPECT_EQ(reactor.stats().rejected_overlaps, 0u);
}

}  // namespace
}  // namespace tass
