// Tests for report/gnuplot: script emission for the figure benches.
#include "report/gnuplot.hpp"

#include <gtest/gtest.h>

namespace tass::report {
namespace {

SeriesSet sample_set() {
  SeriesSet set("month");
  set.set_ticks({"09/15", "10/15", "11/15"});
  set.add_series("ftp", {1.0, 0.997, 0.994});
  set.add_series("cwmp", {1.0, 0.9925, 0.985});
  return set;
}

TEST(Gnuplot, EmitsCompleteScript) {
  GnuplotOptions options;
  options.title = "TASS hitrate";
  options.output = "fig6a.png";
  const std::string script = to_gnuplot(sample_set(), options);

  EXPECT_NE(script.find("set terminal pngcairo"), std::string::npos);
  EXPECT_NE(script.find("set output 'fig6a.png'"), std::string::npos);
  EXPECT_NE(script.find("set title 'TASS hitrate'"), std::string::npos);
  EXPECT_NE(script.find("$data << EOD"), std::string::npos);
  EXPECT_NE(script.find("EOD"), std::string::npos);
  // One data row per tick, with the label and both values.
  EXPECT_NE(script.find("0 \"09/15\" 1.0000 1.0000"), std::string::npos);
  EXPECT_NE(script.find("2 \"11/15\" 0.9940 0.9850"), std::string::npos);
  // One plot clause per series, columns 3 and 4.
  EXPECT_NE(script.find("using 1:3:xtic(2)"), std::string::npos);
  EXPECT_NE(script.find("using 1:4:xtic(2)"), std::string::npos);
  EXPECT_NE(script.find("title 'ftp'"), std::string::npos);
  EXPECT_NE(script.find("title 'cwmp'"), std::string::npos);
}

TEST(Gnuplot, YRangeAndLabels) {
  GnuplotOptions options;
  options.y_min = 0.4;
  options.y_max = 1.0;
  options.y_label = "Hitrate";
  const std::string script = to_gnuplot(sample_set(), options);
  EXPECT_NE(script.find("set yrange [0.400:1.000]"), std::string::npos);
  EXPECT_NE(script.find("set ylabel 'Hitrate'"), std::string::npos);
}

TEST(Gnuplot, RejectsEmptyAndMismatched) {
  SeriesSet empty("x");
  EXPECT_DEATH(to_gnuplot(empty, GnuplotOptions{}), "Precondition");

  SeriesSet mismatched("x");
  mismatched.set_ticks({"a", "b"});
  mismatched.add_series("s", {1.0});
  EXPECT_DEATH(to_gnuplot(mismatched, GnuplotOptions{}), "Precondition");
}

}  // namespace
}  // namespace tass::report
