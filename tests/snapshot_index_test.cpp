// Tests for census/snapshot_index: the paged bitmap behind the batched
// scan oracle. Counts and collections are cross-checked against
// brute-force per-address membership on interval edge cases.
#include "census/snapshot_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "census/population.hpp"
#include "census/snapshot.hpp"
#include "census/topology.hpp"
#include "util/rng.hpp"

namespace tass::census {
namespace {

using net::Interval;
using net::Ipv4Address;

// Brute force: membership test per address of the inclusive interval.
std::uint64_t brute_count(const std::vector<std::uint32_t>& sorted,
                          Interval interval) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(),
                                   interval.first.value());
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(),
                                   interval.last.value());
  return static_cast<std::uint64_t>(hi - lo);
}

std::vector<std::uint32_t> random_addresses(std::uint64_t seed,
                                            std::size_t count) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> addresses;
  addresses.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Cluster half the draws into one /16 so full pages, word boundaries
    // and sparse pages all occur.
    const bool clustered = rng.chance(0.5);
    const std::uint32_t base = clustered ? 0x0A0A0000u : 0;
    const std::uint64_t span = clustered ? 1ULL << 16 : 1ULL << 32;
    addresses.push_back(base +
                        static_cast<std::uint32_t>(rng.bounded(span)));
  }
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());
  return addresses;
}

TEST(SnapshotIndex, ContainsMatchesTheAddressList) {
  const auto addresses = random_addresses(7, 4000);
  const SnapshotIndex index(addresses);
  EXPECT_EQ(index.total_responsive(), addresses.size());

  for (const std::uint32_t addr : addresses) {
    EXPECT_TRUE(index.contains(Ipv4Address(addr)));
  }
  util::Rng rng(8);
  for (int i = 0; i < 4000; ++i) {
    const auto addr =
        static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    EXPECT_EQ(index.contains(Ipv4Address(addr)),
              std::binary_search(addresses.begin(), addresses.end(), addr));
  }
}

TEST(SnapshotIndex, CountMatchesBruteForceOnEdgeCaseIntervals) {
  const auto addresses = random_addresses(21, 6000);
  const SnapshotIndex index(addresses);

  std::vector<Interval> cases;
  // Single addresses: present and absent.
  cases.push_back({Ipv4Address(addresses.front()),
                   Ipv4Address(addresses.front())});
  cases.push_back({Ipv4Address(addresses.front() + 1),
                   Ipv4Address(addresses.front() + 1)});
  // Word boundaries: intervals starting/ending exactly on bit 0/63 of a
  // 64-bit word, and one-word spans.
  const std::uint32_t word_base = 0x0A0A0000u + 5 * 64;
  cases.push_back({Ipv4Address(word_base), Ipv4Address(word_base + 63)});
  cases.push_back({Ipv4Address(word_base + 63), Ipv4Address(word_base + 64)});
  cases.push_back({Ipv4Address(word_base + 1), Ipv4Address(word_base + 62)});
  // A full /16 (exactly one page), and intervals straddling page edges.
  cases.push_back({Ipv4Address(0x0A0A0000u), Ipv4Address(0x0A0AFFFFu)});
  cases.push_back({Ipv4Address(0x0A09FFF0u), Ipv4Address(0x0A0A000Fu)});
  cases.push_back({Ipv4Address(0x0A0AFFFFu), Ipv4Address(0x0A0B0000u)});
  // Extremes of the address space.
  cases.push_back({Ipv4Address(0), Ipv4Address(0)});
  cases.push_back({Ipv4Address(~0u), Ipv4Address(~0u)});
  cases.push_back(Interval::full_space());
  // Randomised intervals of mixed widths.
  util::Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    const std::uint64_t width = rng.bounded(1ULL << (8 + rng.bounded(16)));
    const auto b = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(a + width, 0xFFFFFFFFu));
    cases.push_back({Ipv4Address(a), Ipv4Address(b)});
  }

  for (const Interval& interval : cases) {
    EXPECT_EQ(index.count_responsive(interval),
              brute_count(addresses, interval))
        << interval.first.value() << "-" << interval.last.value();
  }
}

TEST(SnapshotIndex, CollectMatchesBruteForceAndIsAscending) {
  const auto addresses = random_addresses(33, 3000);
  const SnapshotIndex index(addresses);

  util::Rng rng(34);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    const std::uint64_t width = rng.bounded(1ULL << 20);
    const auto b = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(a + width, 0xFFFFFFFFu));
    const Interval interval{Ipv4Address(a), Ipv4Address(b)};

    std::vector<std::uint32_t> collected;
    index.collect_responsive(interval, collected);
    EXPECT_TRUE(std::is_sorted(collected.begin(), collected.end()));

    const auto lo = std::lower_bound(addresses.begin(), addresses.end(), a);
    const auto hi = std::upper_bound(addresses.begin(), addresses.end(), b);
    EXPECT_TRUE(std::equal(collected.begin(), collected.end(), lo, hi));
  }
}

TEST(SnapshotIndex, FullSpaceCollectReturnsEveryAddress) {
  const auto addresses = random_addresses(55, 2000);
  const SnapshotIndex index(addresses);
  std::vector<std::uint32_t> collected;
  index.collect_responsive(Interval::full_space(), collected);
  EXPECT_EQ(collected, addresses);
  EXPECT_EQ(index.count_responsive(Interval::full_space()),
            addresses.size());
}

TEST(SnapshotIndex, AgreesWithSnapshotContains) {
  census::TopologyParams params;
  params.seed = 11;
  params.l_prefix_count = 60;
  const auto topo = generate_topology(params);
  PopulationParams pop;
  pop.host_scale = 0.0005;
  const Snapshot snapshot = generate_population(
      topo, protocol_profile(Protocol::kHttp), pop);

  const SnapshotIndex index(snapshot);
  EXPECT_EQ(index.total_responsive(), snapshot.total_hosts());
  snapshot.for_each_address([&](Ipv4Address addr) {
    EXPECT_TRUE(index.contains(addr));
  });
  util::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address addr(
        static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
    EXPECT_EQ(index.contains(addr), snapshot.contains(addr));
  }
  // Per-cell counts through the bitmap equal the snapshot's own counts.
  const auto counts = snapshot.counts_per_cell();
  for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
    const net::Prefix prefix = topo->m_partition.prefix(cell);
    EXPECT_EQ(index.count_responsive(Interval::of(prefix)), counts[cell]);
  }
}

}  // namespace
}  // namespace tass::census
