// Tests for bgp/reduce: family-generic exact aggregation and the
// overshoot-bounded greedy reduction, plus the scan-layer consumers
// (ScanScope::of_reduced, ScanScope6::of_reduced, Blocklist::compact).
#include "bgp/reduce.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bgp/aggregate.hpp"
#include "net/interval.hpp"
#include "scan/blocklist.hpp"
#include "scan/scope.hpp"
#include "scan/scope6.hpp"
#include "scan/target_iterator.hpp"

namespace tass::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv6Address;
using net::Ipv6Prefix;
using net::Prefix;

Prefix pfx(const char* text) { return Prefix::parse_or_throw(text); }
Ipv6Prefix pfx6(const char* text) {
  return Ipv6Prefix::parse_or_throw(text);
}

// ---- exact aggregation ------------------------------------------------

TEST(Aggregate, DuplicatesAndNestingCollapse) {
  const std::vector<Prefix> input = {pfx("10.0.0.0/16"), pfx("10.0.0.0/16"),
                                     pfx("10.0.3.0/24"), pfx("10.0.0.0/24")};
  const auto out = BasicAggregate<net::Ipv4Family>::aggregate(input);
  EXPECT_EQ(out, std::vector<Prefix>{pfx("10.0.0.0/16")});
}

TEST(Aggregate, SiblingCascade) {
  // Four /26 tiles cascade all the way up to the /24.
  const std::vector<Prefix> input = {
      pfx("192.0.2.192/26"), pfx("192.0.2.0/26"), pfx("192.0.2.64/26"),
      pfx("192.0.2.128/26")};
  const auto out = BasicAggregate<net::Ipv4Family>::aggregate(input);
  EXPECT_EQ(out, std::vector<Prefix>{pfx("192.0.2.0/24")});
}

TEST(Aggregate, V6SiblingsAcrossTheWordBoundary) {
  // /65 pair merges on the low word's MSB...
  const auto lo = BasicAggregate<net::Ipv6Family>::aggregate(
      std::vector<Ipv6Prefix>{pfx6("2001:db8::/65"),
                              pfx6("2001:db8:0:0:8000::/65")});
  EXPECT_EQ(lo, std::vector<Ipv6Prefix>{pfx6("2001:db8::/64")});
  // ...and a /64 pair merges on the high word's LSB.
  const auto hi = BasicAggregate<net::Ipv6Family>::aggregate(
      std::vector<Ipv6Prefix>{pfx6("2001:db8:0:1::/64"),
                              pfx6("2001:db8::/64")});
  EXPECT_EQ(hi, std::vector<Ipv6Prefix>{pfx6("2001:db8::/63")});
}

TEST(Aggregate, UnionSizeOfTheFullSpaces) {
  // v4 /0 is exactly 2^32 addresses, whether given directly or as two
  // halves that cascade into it.
  const std::vector<Prefix> full = {pfx("0.0.0.0/0")};
  EXPECT_EQ(BasicAggregate<net::Ipv4Family>::union_size(full),
            std::uint64_t{1} << 32);
  const std::vector<Prefix> halves = {pfx("0.0.0.0/1"), pfx("128.0.0.0/1")};
  EXPECT_EQ(BasicAggregate<net::Ipv4Family>::union_size(halves),
            std::uint64_t{1} << 32);
  // v6 ::/0 is 2^64 /64 units — saturated to u64 max.
  const std::vector<Ipv6Prefix> full6 = {pfx6("::/0")};
  EXPECT_EQ(BasicAggregate<net::Ipv6Family>::union_size(full6),
            ~std::uint64_t{0});
}

TEST(Aggregate, HeaderDelegationMatchesTheFamilyForm) {
  const std::vector<Prefix> input = {pfx("10.0.0.0/24"), pfx("10.0.1.0/24"),
                                     pfx("172.16.0.0/12")};
  EXPECT_EQ(aggregate(input),
            BasicAggregate<net::Ipv4Family>::aggregate(input));
  EXPECT_EQ(union_size(input),
            BasicAggregate<net::Ipv4Family>::union_size(input));
  const std::vector<Ipv6Prefix> input6 = {pfx6("2001:db8::/48"),
                                          pfx6("2001:db8:1::/48")};
  EXPECT_EQ(aggregate(input6),
            BasicAggregate<net::Ipv6Family>::aggregate(input6));
}

// ---- reduction --------------------------------------------------------

TEST(Reduce, ZeroBudgetDegeneratesToExactAggregation) {
  const std::vector<Prefix> input = {pfx("10.0.0.0/24"), pfx("10.0.1.0/24"),
                                     pfx("10.0.3.0/24")};
  ReduceParams params;
  params.max_overshoot = 0.0;
  const auto result = reduce(std::span<const Prefix>(input), params);
  // The sibling pair merges for free; the /24 across the hole does not.
  const std::vector<Prefix> expected = {pfx("10.0.0.0/23"),
                                        pfx("10.0.3.0/24")};
  EXPECT_EQ(result.prefixes, expected);
  EXPECT_EQ(result.overshoot_addresses, 0u);
}

TEST(Reduce, FillsAHoleWhenTheBudgetAllows) {
  // 3 of the 4 /24s under a /22: merging costs 256 of 768 addresses, so
  // a 34% cap admits it and a 33% cap does not.
  const std::vector<Prefix> input = {pfx("10.0.0.0/24"), pfx("10.0.2.0/24"),
                                     pfx("10.0.3.0/24")};
  ReduceParams params;
  params.max_overshoot = 0.34;
  const auto merged = reduce(std::span<const Prefix>(input), params);
  EXPECT_EQ(merged.prefixes, std::vector<Prefix>{pfx("10.0.0.0/22")});
  EXPECT_EQ(merged.overshoot_addresses, 256u);
  // The sibling pair collapses during aggregation; only the costed fill
  // counts as a greedy merge.
  EXPECT_EQ(merged.merges, 1u);

  params.max_overshoot = 0.33;
  const auto kept = reduce(std::span<const Prefix>(input), params);
  const std::vector<Prefix> expected = {pfx("10.0.0.0/24"),
                                        pfx("10.0.2.0/23")};
  EXPECT_EQ(kept.prefixes, expected);
  EXPECT_EQ(kept.overshoot_addresses, 0u);
}

TEST(Reduce, ResultIsAlwaysASupersetOfTheInput) {
  const std::vector<Prefix> input = {
      pfx("10.0.0.0/24"),   pfx("10.0.5.0/24"), pfx("10.0.9.0/24"),
      pfx("192.0.2.0/28"),  pfx("192.0.2.64/28")};
  for (const double cap : {0.0, 0.01, 0.5, 4.0}) {
    ReduceParams params;
    params.max_overshoot = cap;
    const auto result = reduce(std::span<const Prefix>(input), params);
    const auto cover = net::IntervalSet::of_prefixes(result.prefixes);
    for (const Prefix p : input) {
      EXPECT_TRUE(cover.contains_all(net::Interval::of(p)))
          << p.to_string() << " lost at cap " << cap;
    }
    EXPECT_LE(result.overshoot_fraction(), cap + 1e-12);
  }
}

TEST(Reduce, MinPrefixesFloorStopsReduction) {
  // Gapped /24s: the exact aggregate keeps all five (no free sibling
  // merges), so only the greedy loop can shrink the list — which is
  // the stage the floor governs.
  const std::vector<Prefix> input = {pfx("10.0.0.0/24"), pfx("10.0.2.0/24"),
                                     pfx("10.0.4.0/24"), pfx("10.0.6.0/24"),
                                     pfx("10.0.8.0/24")};
  ReduceParams params;
  params.max_overshoot = 100.0;  // budget would merge everything
  params.min_prefixes = 3;
  const auto result = reduce(std::span<const Prefix>(input), params);
  EXPECT_EQ(result.prefixes.size(), 3u);
  // A floor at (or above) the aggregate size returns the aggregate.
  params.min_prefixes = 16;
  const auto untouched = reduce(std::span<const Prefix>(input), params);
  EXPECT_EQ(untouched.prefixes, aggregate(input));
  EXPECT_EQ(untouched.merges, 0u);
}

TEST(Reduce, CurveIsMonotoneAndAnchoredAtTheAggregate) {
  std::vector<Prefix> input;
  for (std::uint32_t i = 0; i < 64; ++i) {
    // Every other /24 under 10.0.0.0/16: all merges cost something.
    input.emplace_back(Ipv4Address((10u << 24) | (2 * i << 8)), 24);
  }
  ReduceParams params;
  params.max_overshoot = 2.0;
  const auto result = reduce(std::span<const Prefix>(input), params);
  ASSERT_FALSE(result.curve.empty());
  EXPECT_EQ(result.curve.front().prefixes, result.aggregated_prefixes);
  EXPECT_EQ(result.curve.front().overshoot_addresses, 0u);
  for (std::size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_LT(result.curve[i].prefixes, result.curve[i - 1].prefixes);
    EXPECT_GE(result.curve[i].overshoot_addresses,
              result.curve[i - 1].overshoot_addresses);
  }
  EXPECT_EQ(result.curve.back().prefixes, result.prefixes.size());
  EXPECT_EQ(result.curve.back().overshoot_addresses,
            result.overshoot_addresses);
}

TEST(Reduce, OutputCarriesNoMergeableSiblings) {
  const std::vector<Prefix> input = {
      pfx("10.0.0.0/24"), pfx("10.0.1.0/24"), pfx("10.0.2.0/24"),
      pfx("10.4.0.0/24"), pfx("10.4.1.0/24")};
  ReduceParams params;
  params.max_overshoot = 0.0;
  const auto result = reduce(std::span<const Prefix>(input), params);
  // Re-aggregating the output changes nothing: every free merge was
  // taken before the budget could bind.
  EXPECT_EQ(aggregate(result.prefixes), result.prefixes);
}

TEST(Reduce, EmptyAndSingletonInputs) {
  const auto empty = reduce(std::span<const Prefix>{});
  EXPECT_TRUE(empty.prefixes.empty());
  EXPECT_EQ(empty.reduction_ratio(), 1.0);
  EXPECT_EQ(empty.overshoot_fraction(), 0.0);

  const std::vector<Prefix> one = {pfx("203.0.113.0/24")};
  const auto single = reduce(std::span<const Prefix>(one));
  EXPECT_EQ(single.prefixes, one);
  EXPECT_EQ(single.merges, 0u);
  ASSERT_EQ(single.curve.size(), 1u);
  EXPECT_EQ(single.curve[0].prefixes, 1u);
}

TEST(Reduce, V6UnitsAccountPerSlash64) {
  // 3 of 4 /50s under a /48: the fill admits one /50 = 2^14 /64 units.
  const std::vector<Ipv6Prefix> input = {pfx6("2001:db8::/50"),
                                         pfx6("2001:db8:0:8000::/50"),
                                         pfx6("2001:db8:0:c000::/50")};
  ReduceParams params;
  params.max_overshoot = 0.5;
  const auto result = reduce(std::span<const Ipv6Prefix>(input), params);
  EXPECT_EQ(result.prefixes, std::vector<Ipv6Prefix>{pfx6("2001:db8::/48")});
  EXPECT_EQ(result.overshoot_addresses, std::uint64_t{1} << 14);
  EXPECT_EQ(result.original_addresses, 3u * (std::uint64_t{1} << 14));
}

TEST(Reduce, V6CoverageSurvivesBelowTheUnitGranularity) {
  // Lengths past /64 count one unit each, but the merge geometry still
  // works on exact 128-bit spans: a /127 pair is a free merge, a gapped
  // pair costs real addresses.
  const std::vector<Ipv6Prefix> input = {pfx6("2001:db8::/127"),
                                         pfx6("2001:db8::2/127"),
                                         pfx6("2001:db8::8/126")};
  ReduceParams params;
  params.max_overshoot = 4.0;
  const auto result = reduce(std::span<const Ipv6Prefix>(input), params);
  ASSERT_FALSE(result.prefixes.empty());
  for (const Ipv6Prefix p : input) {
    const bool covered =
        std::any_of(result.prefixes.begin(), result.prefixes.end(),
                    [&](Ipv6Prefix r) { return r.contains(p); });
    EXPECT_TRUE(covered) << p.to_string();
  }
}

// ---- scan-layer consumers ---------------------------------------------

TEST(ReduceScope, OfReducedKeepsEveryOriginalAddressExactlyOnce) {
  const std::vector<Prefix> selection = {
      pfx("198.18.0.0/26"), pfx("198.18.0.64/26"), pfx("198.18.0.192/26"),
      pfx("198.18.4.0/24")};
  scan::Blocklist blocklist;
  bgp::ReduceResult stats;
  ReduceParams params;
  params.max_overshoot = 0.25;
  const auto scope =
      scan::ScanScope::of_reduced(selection, blocklist, params, &stats);
  EXPECT_LT(stats.prefixes.size(), aggregate(selection).size());

  // Every original address is in scope...
  for (const Prefix p : selection) {
    EXPECT_TRUE(scope.targets().contains_all(net::Interval::of(p)));
  }
  // ...and the permutation machinery still visits each scope address
  // exactly once (the exactly-once guarantee reduction must not break).
  const net::AddressIndexer indexer(scope.targets());
  ASSERT_EQ(indexer.size(), scope.address_count());
  std::vector<int> visits(static_cast<std::size_t>(indexer.size()), 0);
  scan::TargetIterator it(/*seed=*/7, indexer.size());
  while (const auto value = it.next_value()) {
    ++visits[static_cast<std::size_t>(*value)];
  }
  EXPECT_TRUE(std::all_of(visits.begin(), visits.end(),
                          [](int n) { return n == 1; }));
}

TEST(ReduceScope, BlocklistStillAppliesAfterReduction) {
  const std::vector<Prefix> selection = {pfx("198.18.0.0/24"),
                                         pfx("198.18.2.0/24")};
  scan::Blocklist blocklist;
  blocklist.add(pfx("198.18.2.0/25"));
  ReduceParams params;
  params.max_overshoot = 1.0;  // merges across the 198.18.1.0/24 hole
  const auto scope =
      scan::ScanScope::of_reduced(selection, blocklist, params);
  EXPECT_FALSE(scope.contains(Ipv4Address::parse_or_throw("198.18.2.7")));
  EXPECT_TRUE(scope.contains(Ipv4Address::parse_or_throw("198.18.2.200")));
  EXPECT_TRUE(scope.contains(Ipv4Address::parse_or_throw("198.18.0.1")));
}

TEST(ReduceScope, V6OfReducedAdmitsEveryOriginalCandidate) {
  const std::vector<Ipv6Prefix> selection = {pfx6("2001:db8::/52"),
                                             pfx6("2001:db8:0:1000::/52"),
                                             pfx6("2001:db8:0:3000::/52")};
  const std::vector<Ipv6Address> hitlist = {
      Ipv6Address::parse_or_throw("2001:db8::1"),
      Ipv6Address::parse_or_throw("2001:db8:0:1fff::2"),
      Ipv6Address::parse_or_throw("2001:db8:0:3000::3"),
      Ipv6Address::parse_or_throw("2001:db8:ffff::4"),  // outside
  };
  scan::Blocklist blocklist;
  scan::ScanScope6 exact(selection, blocklist);
  bgp::ReduceResult6 stats;
  ReduceParams params;
  params.max_overshoot = 0.5;
  auto reduced =
      scan::ScanScope6::of_reduced(selection, blocklist, params, &stats);
  EXPECT_LT(reduced.prefixes().size(), selection.size());

  const std::size_t exact_admitted = exact.add_candidates(hitlist);
  const std::size_t reduced_admitted = reduced.add_candidates(hitlist);
  EXPECT_EQ(exact_admitted, 3u);
  EXPECT_GE(reduced_admitted, exact_admitted);
  for (const Ipv6Address address : hitlist) {
    if (exact.contains(address)) {
      EXPECT_TRUE(reduced.contains(address))
          << address.to_string() << " lost by reduction";
    }
  }
}

TEST(ReduceBlocklist, CompactOnlyGrowsTheBlockedSets) {
  scan::Blocklist blocklist;
  blocklist.add(pfx("10.0.0.0/24"));
  blocklist.add(pfx("10.0.1.0/24"));
  blocklist.add(pfx("10.0.3.0/24"));
  blocklist.add(pfx6("2001:db8::/50"));
  blocklist.add(pfx6("2001:db8:0:8000::/50"));
  blocklist.add(pfx6("2001:db8:0:c000::/50"));

  const std::vector<Ipv4Address> blocked4 = {
      Ipv4Address::parse_or_throw("10.0.0.1"),
      Ipv4Address::parse_or_throw("10.0.1.255"),
      Ipv4Address::parse_or_throw("10.0.3.3")};
  const std::vector<Ipv6Address> blocked6 = {
      Ipv6Address::parse_or_throw("2001:db8::1"),
      Ipv6Address::parse_or_throw("2001:db8:0:9000::2"),
      Ipv6Address::parse_or_throw("2001:db8:0:ffff::3")};

  ReduceParams params;
  params.max_overshoot = 0.5;
  const auto stats = blocklist.compact(params);
  EXPECT_EQ(stats.v4_before, 2u);  // the sibling pair pre-coalesces
  EXPECT_LE(stats.v4_after, stats.v4_before);
  EXPECT_EQ(stats.v6_before, 3u);
  EXPECT_EQ(stats.v6_after, 1u);
  EXPECT_EQ(stats.v6_overshoot_units, std::uint64_t{1} << 14);

  // Everything blocked before is still blocked (over-blocking only).
  for (const Ipv4Address address : blocked4) {
    EXPECT_TRUE(blocklist.blocks(address)) << address.to_string();
  }
  for (const Ipv6Address address : blocked6) {
    EXPECT_TRUE(blocklist.blocks(address)) << address.to_string();
  }
  EXPECT_EQ(blocklist.blocked_addresses(),
            stats.v4_overshoot_addresses + 3u * 256u);
}

}  // namespace
}  // namespace tass::bgp
