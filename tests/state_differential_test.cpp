// Differential suite for the TSIM state image: a loaded zero-copy view
// must be *bit-identical* to the built structures it was encoded from —
// lookups, batched locates, tally_cells outputs and the density ranking
// (float bits included) — across fresh and churned partitions, the mmap
// and in-memory attach paths, and randomized topologies. The corrupt-
// input side (truncations, flips, resealed corruption) lives with the
// other parsers in parser_fuzz_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bgp/partition.hpp"
#include "census/io.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "state/image.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::state {
namespace {

// RIB-shaped disjoint prefixes, as in bench/micro_delta.
std::vector<net::Prefix> synthesize_prefixes(std::size_t count,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<net::Prefix> space{
      net::Prefix::parse_or_throw("0.0.0.0/2"),
      net::Prefix::parse_or_throw("64.0.0.0/2"),
      net::Prefix::parse_or_throw("128.0.0.0/2"),
      net::Prefix::parse_or_throw("192.0.0.0/2"),
  };
  census::BuddyAllocator allocator(space);
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(count);
  while (prefixes.size() < count) {
    const double roll = rng.uniform();
    const int length = roll < 0.05 ? 10 + static_cast<int>(rng.bounded(6))
                       : roll < 0.5
                           ? 16 + static_cast<int>(rng.bounded(5))
                           : 21 + static_cast<int>(rng.bounded(6));
    const auto prefix = allocator.allocate(length, rng);
    if (!prefix) break;
    prefixes.push_back(*prefix);
  }
  return prefixes;
}

std::vector<std::uint32_t> synthesize_counts(
    const bgp::PrefixPartition& partition, std::uint64_t seed) {
  std::vector<std::uint32_t> counts(partition.size(), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (!partition.live(i)) continue;
    const std::uint64_t h = util::mix64(
        seed, (static_cast<std::uint64_t>(
                   partition.prefix(i).network().value())
               << 6) |
                  static_cast<std::uint64_t>(partition.prefix(i).length()));
    counts[i] = (h & 7u) < 2u ? 0u
                              : static_cast<std::uint32_t>(1 + (h >> 3) % 900);
  }
  return counts;
}

// Withdraw/re-advertise and deaggregate a slice of the partition so the
// encoded image carries dead slots, a free list and a live bitmap.
void churn(bgp::PrefixPartition& partition, double rate, util::Rng& rng) {
  bgp::PartitionDelta delta;
  const auto changes = static_cast<std::size_t>(
      static_cast<double>(partition.live_cells()) * rate) + 1;
  std::vector<std::uint8_t> used(partition.size(), 0);
  for (std::size_t k = 0; k < changes; ++k) {
    const auto slot =
        static_cast<std::uint32_t>(rng.bounded(partition.size()));
    if (used[slot] != 0 || !partition.live(slot)) continue;
    used[slot] = 1;
    const net::Prefix prefix = partition.prefix(slot);
    delta.remove.push_back(prefix);
    if (prefix.length() < 30 && rng.chance(0.4)) {
      delta.add.push_back(prefix.lower_half());
      delta.add.push_back(prefix.upper_half());
    } else if (rng.chance(0.7)) {
      delta.add.push_back(prefix);
    }  // else: plain withdrawal, leaving a free slot
  }
  partition.apply_delta(delta);
}

void expect_rankings_identical(const core::DensityRanking& want,
                               const core::DensityRankingView& got) {
  ASSERT_EQ(want.ranked.size(), got.ranked.size());
  EXPECT_EQ(want.mode, got.mode);
  EXPECT_EQ(want.total_hosts, got.total_hosts);
  EXPECT_EQ(want.advertised_addresses, got.advertised_addresses);
  for (std::size_t i = 0; i < want.ranked.size(); ++i) {
    const core::RankedPrefix& a = want.ranked[i];
    const core::RankedPrefix& b = got.ranked[i];
    ASSERT_EQ(a.index, b.index) << "rank " << i;
    ASSERT_EQ(a.prefix, b.prefix) << "rank " << i;
    ASSERT_EQ(a.size, b.size) << "rank " << i;
    ASSERT_EQ(a.hosts, b.hosts) << "rank " << i;
    // Float bits, not approximate equality: the image stores the arrays
    // verbatim, so nothing may drift.
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.density),
              std::bit_cast<std::uint64_t>(b.density))
        << "rank " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.host_share),
              std::bit_cast<std::uint64_t>(b.host_share))
        << "rank " << i;
  }
}

void expect_views_identical(const bgp::PrefixPartition& built,
                            const core::DensityRanking& ranking,
                            const StateImage& image, util::Rng& rng) {
  const bgp::PrefixPartition& loaded = image.partition();
  ASSERT_EQ(built.size(), loaded.size());
  EXPECT_EQ(built.live_cells(), loaded.live_cells());
  EXPECT_EQ(built.free_cells(), loaded.free_cells());
  EXPECT_EQ(built.address_count(), loaded.address_count());
  for (std::size_t i = 0; i < built.size(); ++i) {
    ASSERT_EQ(built.live(i), loaded.live(i)) << "slot " << i;
    ASSERT_EQ(built.prefix(i), loaded.prefix(i)) << "slot " << i;
  }

  // Boundary probes (first/last address of every cell, +/- 1) and a
  // random sample, through locate() and the raw index().
  std::vector<std::uint32_t> probes;
  for (std::size_t i = 0; i < built.size(); ++i) {
    const net::Prefix prefix = built.prefix(i);
    probes.push_back(prefix.first().value());
    probes.push_back(prefix.last().value());
    probes.push_back(prefix.first().value() - 1);
    probes.push_back(prefix.last().value() + 1);
  }
  for (int i = 0; i < 20000; ++i) {
    probes.push_back(static_cast<std::uint32_t>(rng.bounded(1ull << 32)));
  }
  std::vector<std::uint32_t> want_cells(probes.size());
  std::vector<std::uint32_t> got_cells(probes.size());
  built.locate_many(probes, want_cells);
  loaded.locate_many(probes, got_cells);
  ASSERT_EQ(want_cells, got_cells);
  for (std::size_t i = 0; i < probes.size(); i += 97) {
    const net::Ipv4Address addr(probes[i]);
    ASSERT_EQ(built.index().lookup(addr), image.index().lookup(addr));
  }

  // The shared attribution kernel must tally identically.
  std::vector<std::uint32_t> want_counts(built.size(), 0);
  std::vector<std::uint32_t> got_counts(loaded.size(), 0);
  std::uint64_t want_attr = 0, want_un = 0, got_attr = 0, got_un = 0;
  built.tally_cells(probes, want_counts, want_attr, want_un);
  loaded.tally_cells(probes, got_counts, got_attr, got_un);
  EXPECT_EQ(want_attr, got_attr);
  EXPECT_EQ(want_un, got_un);
  ASSERT_EQ(want_counts, got_counts);

  expect_rankings_identical(ranking, image.ranking());

  // The retained entry tables match row for row.
  const auto want_entries = built.index().entries();
  const auto got_entries = image.index().entries();
  ASSERT_EQ(want_entries.size(), got_entries.size());
  for (std::size_t i = 0; i < want_entries.size(); ++i) {
    ASSERT_EQ(want_entries[i].prefix, got_entries[i].prefix);
    ASSERT_EQ(want_entries[i].value, got_entries[i].value);
  }
}

TEST(StateImage, RoundTripsAcrossSeedsFreshAndChurned) {
  for (const std::uint64_t seed : {11ull, 23ull, 2016ull}) {
    for (const bool churned : {false, true}) {
      util::Rng rng(util::mix64(seed, churned ? 2 : 1));
      bgp::PrefixPartition partition(synthesize_prefixes(1500, seed));
      if (churned) {
        churn(partition, 0.08, rng);
        churn(partition, 0.05, rng);  // twice, so free slots get reused
      }
      const auto counts = synthesize_counts(partition, seed);
      const auto ranking =
          core::rank_by_density(counts, partition, core::PrefixMode::kMore);

      const auto bytes = encode_image(partition, ranking);
      const StateImage image = StateImage::attach(bytes);
      SCOPED_TRACE("seed " + std::to_string(seed) +
                   (churned ? " churned" : " fresh"));
      EXPECT_TRUE(image.partition().borrowed());
      EXPECT_TRUE(image.index().borrowed());
      EXPECT_EQ(image.info().fingerprint, bgp::partition_fingerprint(partition));
      EXPECT_NO_THROW(image.verify());  // deep audit must hold
      expect_views_identical(partition, ranking, image, rng);
    }
  }
}

TEST(StateImage, FingerprintMatchesCensusTopologyFingerprint) {
  // TSIM images and TSNP snapshots of one topology must be mutually
  // bindable: both digests are bgp::partition_fingerprint underneath.
  census::TopologyParams params;
  params.seed = 3;
  params.l_prefix_count = 200;
  const auto topology = census::generate_topology(params);
  EXPECT_EQ(census::topology_fingerprint(*topology),
            bgp::partition_fingerprint(topology->m_partition));
}

TEST(StateImage, EncodingIsDeterministic) {
  bgp::PrefixPartition partition(synthesize_prefixes(300, 7));
  const auto counts = synthesize_counts(partition, 7);
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kLess);
  EXPECT_EQ(encode_image(partition, ranking),
            encode_image(partition, ranking));
}

TEST(StateImage, SaveAndMmapLoadRoundTrips) {
  const std::string path = ::testing::TempDir() + "tsim_roundtrip.tsim";
  util::Rng rng(99);
  bgp::PrefixPartition partition(synthesize_prefixes(800, 99));
  churn(partition, 0.1, rng);
  const auto counts = synthesize_counts(partition, 99);
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);
  save_image(path, partition, ranking);

  const StateImage image = StateImage::load(path);
  EXPECT_NO_THROW(image.verify());
  expect_views_identical(partition, ranking, image, rng);
  EXPECT_EQ(image.info().file_bytes, encode_image(partition, ranking).size());

  // Binding to the right topology succeeds; to a different one, throws.
  const std::uint64_t fingerprint = bgp::partition_fingerprint(partition);
  EXPECT_NO_THROW(StateImage::load(path, fingerprint));
  EXPECT_THROW(StateImage::load(path, fingerprint ^ 1), FormatError);
  std::remove(path.c_str());
}

TEST(StateImage, LoadedViewsRejectMutation) {
  bgp::PrefixPartition partition(synthesize_prefixes(120, 5));
  const auto counts = synthesize_counts(partition, 5);
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);
  const auto bytes = encode_image(partition, ranking);
  StateImage image = StateImage::attach(bytes);

  bgp::PartitionDelta delta;
  delta.remove.push_back(image.partition().prefix(0));
  // const_cast: the API returns const refs precisely because mutation is
  // rejected; this checks the throw, not a supported call path.
  auto& loaded =
      const_cast<bgp::PrefixPartition&>(image.partition());
  EXPECT_THROW(loaded.apply_delta(delta), Error);
  auto& index = const_cast<trie::LpmIndex&>(image.index());
  EXPECT_THROW(index.update({}, {{image.partition().prefix(0)}}), Error);
}

TEST(StateImage, MaterializedRankingIsOwnedAndIdentical) {
  bgp::PrefixPartition partition(synthesize_prefixes(400, 31));
  const auto counts = synthesize_counts(partition, 31);
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);
  const auto bytes = encode_image(partition, ranking);
  core::DensityRanking materialized;
  {
    const StateImage image = StateImage::attach(bytes);
    materialized = image.ranking().materialize();
  }  // image (and its storage view) gone; the copy must stand alone
  ASSERT_EQ(materialized.ranked.size(), ranking.ranked.size());
  for (std::size_t i = 0; i < ranking.ranked.size(); ++i) {
    EXPECT_EQ(materialized.ranked[i].prefix, ranking.ranked[i].prefix);
    EXPECT_EQ(materialized.ranked[i].hosts, ranking.ranked[i].hosts);
  }
  EXPECT_EQ(materialized.total_hosts, ranking.total_hosts);
}

TEST(StateImage, EmptyPartitionRoundTrips) {
  bgp::PrefixPartition partition(std::vector<net::Prefix>{});
  const core::DensityRanking ranking = core::rank_by_density(
      std::vector<std::uint32_t>{}, partition, core::PrefixMode::kMore);
  const auto bytes = encode_image(partition, ranking);
  const StateImage image = StateImage::attach(bytes);
  EXPECT_EQ(image.partition().size(), 0u);
  EXPECT_EQ(image.ranking().ranked.size(), 0u);
  EXPECT_FALSE(image.index().covers(net::Ipv4Address(0x01020304u)));
}

TEST(StateImage, EncodeRejectsMismatchedRanking) {
  bgp::PrefixPartition partition(synthesize_prefixes(50, 3));
  const auto counts = synthesize_counts(partition, 3);
  auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);
  ASSERT_FALSE(ranking.ranked.empty());
  auto broken = ranking;
  broken.total_hosts += 1;
  EXPECT_THROW(encode_image(partition, broken), Error);
  broken = ranking;
  broken.ranked[0].hosts += 1;  // breaks the host total
  EXPECT_THROW(encode_image(partition, broken), Error);
  bgp::PrefixPartition other(synthesize_prefixes(50, 4));
  EXPECT_THROW(encode_image(other, ranking), Error);
}

}  // namespace
}  // namespace tass::state
