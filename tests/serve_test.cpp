// serve/: wire codec contract and the daemon end to end — every query
// answered over loopback must agree exactly with a direct library call
// on the same image, reloads must swap generations without a gap in
// service, and malformed or unservable requests must come back as
// well-formed error frames.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bgp/partition.hpp"
#include "bgp/reduce.hpp"
#include "core/ranking.hpp"
#include "core/selection.hpp"
#include "net/family.hpp"
#include "scan/sampled_scope.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "state/image.hpp"
#include "util/error.hpp"

namespace tass::serve {
namespace {

std::string temp_path(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + stem + "." +
         std::to_string(static_cast<long>(::getpid()));
}

// A tiny v4 topology: `n` disjoint 10.x.0.0/16 cells with seeded
// per-cell host counts. Different (n, seed) pairs produce different
// topology fingerprints.
std::string make_v4_image(const std::string& stem, std::size_t n,
                          std::uint64_t seed) {
  std::vector<net::Prefix> prefixes;
  for (std::size_t i = 0; i < n; ++i) {
    prefixes.emplace_back(
        net::Ipv4Address((10u << 24) | (static_cast<std::uint32_t>(i) << 16)),
        16);
  }
  bgp::PrefixPartition partition(std::move(prefixes));
  std::vector<std::uint32_t> counts(partition.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>((i * 37 + seed) % 450);
  }
  const std::string path = temp_path(stem) + ".tsim";
  state::save_image(
      path, partition,
      core::rank_by_density(counts, partition, core::PrefixMode::kMore));
  return path;
}

// A tiny v6 topology: `n` disjoint /48 cells under 2001::/16.
std::string make_v6_image(const std::string& stem, std::size_t n,
                          std::uint64_t seed) {
  std::vector<net::Ipv6Prefix> prefixes;
  for (std::size_t i = 0; i < n; ++i) {
    prefixes.emplace_back(
        net::Ipv6Address(0x2001000000000000ULL |
                             (static_cast<std::uint64_t>(i) << 16),
                         0),
        48);
  }
  bgp::PrefixPartition6 partition(std::move(prefixes));
  std::vector<std::uint32_t> counts(partition.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>((i * 53 + seed) % 300);
  }
  const std::string path = temp_path(stem) + ".tsi6";
  state::save_image(
      path, partition,
      core::rank_by_density(counts, partition, core::PrefixMode::kMore));
  return path;
}

struct RunningServer {
  explicit RunningServer(ServerOptions options)
      : server(std::move(options)),
        thread([this] { server.run(); }) {}
  ~RunningServer() {
    server.stop();
    thread.join();
  }
  Server server;
  std::thread thread;
};

TEST(ServeWire, HeaderRoundTrip) {
  RequestHeader request;
  request.op = Op::kTally;
  request.family = net::AddressFamily::kIpv6;
  request.request_id = 0xdeadbeef;
  request.count = 4096;
  std::vector<std::uint8_t> bytes;
  encode_request_header(bytes, request);
  ASSERT_EQ(bytes.size(), kRequestHeaderBytes);
  Cursor cursor{std::span<const std::uint8_t>(bytes)};
  const RequestHeader decoded = decode_request_header(cursor);
  EXPECT_EQ(decoded.op, request.op);
  EXPECT_EQ(decoded.family, request.family);
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.count, request.count);

  ResponseHeader response;
  response.op = Op::kRank;
  response.status = Status::kOk;
  response.request_id = 7;
  response.generation = 42;
  response.fingerprint = 0x0123456789abcdefULL;
  response.count = 12;
  bytes.clear();
  encode_response_header(bytes, response);
  ASSERT_EQ(bytes.size(), kResponseHeaderBytes);
  Cursor response_cursor{std::span<const std::uint8_t>(bytes)};
  const ResponseHeader round = decode_response_header(response_cursor);
  EXPECT_EQ(round.op, response.op);
  EXPECT_EQ(round.status, response.status);
  EXPECT_EQ(round.generation, response.generation);
  EXPECT_EQ(round.fingerprint, response.fingerprint);
  EXPECT_EQ(round.count, response.count);
}

TEST(ServeWire, RejectsMalformedHeaders) {
  // Truncated.
  std::vector<std::uint8_t> bytes(4, 0);
  Cursor truncated{std::span<const std::uint8_t>(bytes)};
  EXPECT_THROW(decode_request_header(truncated), FormatError);

  // Unknown op.
  bytes.assign(kRequestHeaderBytes, 0);
  bytes[0] = 200;
  Cursor bad_op{std::span<const std::uint8_t>(bytes)};
  EXPECT_THROW(decode_request_header(bad_op), FormatError);

  // Unknown family.
  bytes.assign(kRequestHeaderBytes, 0);
  bytes[0] = static_cast<std::uint8_t>(Op::kLocate);
  bytes[1] = 5;
  Cursor bad_family{std::span<const std::uint8_t>(bytes)};
  EXPECT_THROW(decode_request_header(bad_family), FormatError);

  // Non-zero reserved bits.
  bytes.assign(kRequestHeaderBytes, 0);
  bytes[0] = static_cast<std::uint8_t>(Op::kPing);
  bytes[2] = 1;
  Cursor reserved{std::span<const std::uint8_t>(bytes)};
  EXPECT_THROW(decode_request_header(reserved), FormatError);
}

TEST(ServeWire, FrameLayerBoundsAndReassembly) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  const auto framed = frame(payload);
  ASSERT_EQ(framed.size(), 4 + payload.size());

  // A partial frame yields nothing and does not advance the offset.
  std::size_t offset = 0;
  const std::span<const std::uint8_t> partial(framed.data(),
                                              framed.size() - 1);
  EXPECT_FALSE(next_frame(partial, offset).has_value());
  EXPECT_EQ(offset, 0u);

  // Two back-to-back frames slice cleanly.
  std::vector<std::uint8_t> two = framed;
  two.insert(two.end(), framed.begin(), framed.end());
  offset = 0;
  const auto first = next_frame(two, offset);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), payload.size());
  const auto second = next_frame(two, offset);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(offset, two.size());

  // An oversized announcement is a protocol error.
  std::vector<std::uint8_t> oversized;
  put_u32(oversized, kMaxFrameBytes + 1);
  offset = 0;
  EXPECT_THROW(next_frame(oversized, offset), FormatError);
}

TEST(ServeWire, PrefixRowsRoundTripBothFamilies) {
  std::vector<std::uint8_t> bytes;
  const auto v4 = net::Prefix::parse_or_throw("10.7.0.0/16");
  const auto v6 = net::Ipv6Prefix::parse_or_throw("2001:db8::/32");
  put_prefix(bytes, v4);
  put_prefix(bytes, v6);
  Cursor cursor{std::span<const std::uint8_t>(bytes)};
  EXPECT_EQ(read_prefix(cursor, net::AddressFamily::kIpv4).v4(), v4);
  EXPECT_EQ(read_prefix(cursor, net::AddressFamily::kIpv6).v6(), v6);
  EXPECT_EQ(cursor.remaining(), 0u);
}

TEST(ServeDaemon, AnswersMatchDirectLibraryCalls) {
  const std::string v4_path = make_v4_image("serve_test_v4", 32, 3);
  const std::string v6_path = make_v6_image("serve_test_v6", 24, 5);
  const state::StateImage direct4 = state::StateImage::load(v4_path);
  const state::StateImage6 direct6 = state::StateImage6::load(v6_path);

  ServerOptions options;
  options.v4_image_path = v4_path;
  options.v6_image_path = v6_path;
  options.threads = 2;
  RunningServer running(std::move(options));
  Client client("127.0.0.1", running.server.port());

  // ping + info
  EXPECT_EQ(client.ping().status, Status::kOk);
  const auto [info_header, info] = client.info(net::AddressFamily::kIpv4);
  EXPECT_EQ(info_header.fingerprint, direct4.info().fingerprint);
  EXPECT_EQ(info.total_hosts, direct4.info().total_hosts);
  EXPECT_EQ(info.cells, direct4.info().cell_count);
  EXPECT_EQ(info.family, 4u);
  const auto [info6_header, info6] = client.info(net::AddressFamily::kIpv6);
  EXPECT_EQ(info6_header.fingerprint, direct6.info().fingerprint);
  EXPECT_EQ(info6.family, 6u);

  // rank: served rows are the head of the direct ranking, bit for bit.
  const auto [rank_header, rows] = client.rank(net::AddressFamily::kIpv4, 8);
  const auto view = direct4.ranking();
  ASSERT_EQ(rows.size(), std::min<std::size_t>(8, view.ranked.size()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].prefix.v4(), view.ranked[i].prefix);
    EXPECT_EQ(rows[i].hosts, view.ranked[i].hosts);
    EXPECT_EQ(rows[i].density, view.ranked[i].density);
  }

  // plan: identical selection as select_by_density on the same view.
  PlanParams params;
  params.phi = 0.8;
  const auto [plan_header, plan] =
      client.plan(net::AddressFamily::kIpv4, params);
  core::SelectionParams direct_params;
  direct_params.phi = 0.8;
  const auto direct_plan = core::select_by_density(view, direct_params);
  EXPECT_EQ(plan.selected_addresses, direct_plan.selected_addresses);
  EXPECT_EQ(plan.covered_hosts, direct_plan.covered_hosts);
  EXPECT_EQ(plan.total_hosts, direct_plan.total_hosts);
  ASSERT_EQ(plan.prefixes.size(), direct_plan.prefixes.size());
  for (std::size_t i = 0; i < plan.prefixes.size(); ++i) {
    EXPECT_EQ(plan.prefixes[i].v4(), direct_plan.prefixes[i]);
  }

  // locate: in-partition, boundary and unrouted addresses.
  std::vector<std::uint32_t> addresses4;
  for (std::uint32_t i = 0; i < 400; ++i) {
    addresses4.push_back((10u << 24) | ((i % 40) << 16) | (i * 977u % 65536));
  }
  addresses4.push_back(0xE0000001);  // 224.0.0.1, unrouted
  const auto [locate_header, cells] = client.locate(addresses4);
  EXPECT_EQ(locate_header.fingerprint, direct4.info().fingerprint);
  std::vector<std::uint32_t> direct_cells(addresses4.size());
  direct4.partition().locate_many(addresses4, direct_cells);
  EXPECT_EQ(cells, direct_cells);

  // tally: the nonzero histogram equals a direct tally_cells pass.
  const auto [tally_header, tally] = client.tally(addresses4);
  std::vector<std::uint32_t> direct_counts(direct4.partition().size());
  std::uint64_t attributed = 0;
  std::uint64_t unattributed = 0;
  direct4.partition().tally_cells(std::span(addresses4), direct_counts,
                                 attributed, unattributed);
  EXPECT_EQ(tally.attributed, attributed);
  EXPECT_EQ(tally.unattributed, unattributed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> direct_pairs;
  for (std::uint32_t i = 0; i < direct_counts.size(); ++i) {
    if (direct_counts[i] != 0) direct_pairs.emplace_back(i, direct_counts[i]);
  }
  EXPECT_EQ(tally.cells, direct_pairs);

  // v6 locate via the same connection.
  std::vector<net::Ipv6Address> addresses6;
  for (std::uint64_t i = 0; i < 200; ++i) {
    addresses6.emplace_back(
        0x2001000000000000ULL | ((i % 30) << 16), i * 7919);
  }
  const auto [locate6_header, cells6] = client.locate(addresses6);
  EXPECT_EQ(locate6_header.fingerprint, direct6.info().fingerprint);
  std::vector<std::uint32_t> direct_cells6(addresses6.size());
  direct6.partition().locate_many(addresses6, direct_cells6);
  EXPECT_EQ(cells6, direct_cells6);

  // A second concurrent connection is served while the first stays open.
  Client second("127.0.0.1", running.server.port());
  EXPECT_EQ(second.ping().status, Status::kOk);

  const auto [stats_header, stats] = client.stats();
  EXPECT_GE(stats.requests, 9u);
  EXPECT_GE(stats.batched_addresses, addresses4.size() + addresses6.size());

  std::remove(v4_path.c_str());
  std::remove(v6_path.c_str());
}

TEST(ServeDaemon, SampleDesignMatchesDirectPlanSample) {
  const std::string v4_path = make_v4_image("serve_test_sample4", 32, 3);
  const std::string v6_path = make_v6_image("serve_test_sample6", 24, 5);
  const state::StateImage direct4 = state::StateImage::load(v4_path);
  const state::StateImage6 direct6 = state::StateImage6::load(v6_path);

  ServerOptions options;
  options.v4_image_path = v4_path;
  options.v6_image_path = v6_path;
  options.threads = 2;
  RunningServer running(std::move(options));
  Client client("127.0.0.1", running.server.port());

  SampleParams wire_params;
  wire_params.budget = 500;
  wire_params.floor = 4;
  wire_params.seed = 7;
  scan::SampleParams direct_params;
  direct_params.budget = 500;
  direct_params.floor = 4;
  direct_params.seed = 7;

  const auto [header, reply] =
      client.sample(net::AddressFamily::kIpv4, wire_params);
  EXPECT_EQ(header.status, Status::kOk);
  EXPECT_EQ(header.fingerprint, direct4.info().fingerprint);
  const auto direct_design =
      scan::plan_sample(direct4.ranking(), direct_params);
  EXPECT_EQ(reply.total_draws, direct_design.total_draws);
  EXPECT_EQ(reply.frame_units, direct_design.frame_units);
  EXPECT_EQ(reply.seed, direct_design.seed);
  ASSERT_EQ(reply.rows.size(), direct_design.cells.size());
  for (std::size_t i = 0; i < reply.rows.size(); ++i) {
    EXPECT_EQ(reply.rows[i].cell, direct_design.cells[i].cell);
    EXPECT_EQ(reply.rows[i].prefix.v4(), direct_design.cells[i].prefix);
    EXPECT_EQ(reply.rows[i].universe, direct_design.cells[i].universe);
    EXPECT_EQ(reply.rows[i].draws, direct_design.cells[i].draws);
    EXPECT_EQ(reply.rows[i].seed_hosts, direct_design.cells[i].seed_hosts);
  }
  // The reply is everything a client needs to reconstruct the exact
  // target list locally.
  scan::SampleDesign rebuilt;
  rebuilt.total_draws = reply.total_draws;
  rebuilt.frame_units = reply.frame_units;
  rebuilt.seed = reply.seed;
  for (const auto& row : reply.rows) {
    scan::SampleCell cell;
    cell.cell = row.cell;
    cell.prefix = row.prefix.v4().value();
    cell.universe = row.universe;
    cell.draws = row.draws;
    cell.seed_hosts = row.seed_hosts;
    rebuilt.cells.push_back(cell);
  }
  const scan::SampledScope from_reply(rebuilt);
  const scan::SampledScope from_direct(direct_design);
  ASSERT_EQ(from_reply.target_count(), from_direct.target_count());
  for (std::size_t i = 0; i < from_reply.target_count(); ++i) {
    ASSERT_EQ(from_reply.target(i), from_direct.target(i));
  }

  // v6 design through the same connection.
  const auto [header6, reply6] =
      client.sample(net::AddressFamily::kIpv6, wire_params);
  EXPECT_EQ(header6.fingerprint, direct6.info().fingerprint);
  const auto direct_design6 =
      scan::plan_sample(direct6.ranking(), direct_params);
  EXPECT_EQ(reply6.total_draws, direct_design6.total_draws);
  ASSERT_EQ(reply6.rows.size(), direct_design6.cells.size());
  for (std::size_t i = 0; i < reply6.rows.size(); ++i) {
    EXPECT_EQ(reply6.rows[i].prefix.v6(), direct_design6.cells[i].prefix);
    EXPECT_EQ(reply6.rows[i].draws, direct_design6.cells[i].draws);
  }

  // A malformed phi is a well-formed error frame, not a daemon abort,
  // and the connection keeps serving.
  SampleParams bad = wire_params;
  bad.phi = 0.0;
  EXPECT_THROW(client.sample(net::AddressFamily::kIpv4, bad), Error);
  EXPECT_EQ(client.ping().status, Status::kOk);

  std::remove(v4_path.c_str());
  std::remove(v6_path.c_str());
}

TEST(ServeDaemon, ReduceMatchesDirectLibraryCalls) {
  const std::string v4_path = make_v4_image("serve_test_reduce4", 32, 3);
  const std::string v6_path = make_v6_image("serve_test_reduce6", 24, 5);
  const state::StateImage direct4 = state::StateImage::load(v4_path);
  const state::StateImage6 direct6 = state::StateImage6::load(v6_path);

  ServerOptions options;
  options.v4_image_path = v4_path;
  options.v6_image_path = v6_path;
  options.threads = 2;
  RunningServer running(std::move(options));
  Client client("127.0.0.1", running.server.port());

  ReduceParams wire_params;
  wire_params.phi = 0.9;
  wire_params.max_overshoot = 0.10;
  const auto [header, reply] =
      client.reduce(net::AddressFamily::kIpv4, wire_params);
  EXPECT_EQ(header.status, Status::kOk);
  EXPECT_EQ(header.fingerprint, direct4.info().fingerprint);

  core::SelectionParams selection_params;
  selection_params.phi = 0.9;
  const auto selection =
      core::select_by_density(direct4.ranking(), selection_params);
  bgp::ReduceParams reduce_params;
  reduce_params.max_overshoot = 0.10;
  const auto direct = bgp::reduce(
      std::span<const net::Prefix>(selection.prefixes), reduce_params);
  EXPECT_EQ(reply.selected_prefixes, selection.prefixes.size());
  EXPECT_EQ(reply.selected_addresses, selection.selected_addresses);
  EXPECT_EQ(reply.overshoot_addresses, direct.overshoot_addresses);
  EXPECT_EQ(reply.merges, direct.merges);
  ASSERT_EQ(reply.prefixes.size(), direct.prefixes.size());
  for (std::size_t i = 0; i < reply.prefixes.size(); ++i) {
    EXPECT_EQ(reply.prefixes[i].v4(), direct.prefixes[i]);
  }

  // v6 through the same connection.
  const auto [header6, reply6] =
      client.reduce(net::AddressFamily::kIpv6, wire_params);
  EXPECT_EQ(header6.fingerprint, direct6.info().fingerprint);
  const auto selection6 =
      core::select_by_density(direct6.ranking(), selection_params);
  const auto direct6_reduced = bgp::reduce(
      std::span<const net::Ipv6Prefix>(selection6.prefixes), reduce_params);
  EXPECT_EQ(reply6.selected_prefixes, selection6.prefixes.size());
  EXPECT_EQ(reply6.overshoot_addresses, direct6_reduced.overshoot_addresses);
  ASSERT_EQ(reply6.prefixes.size(), direct6_reduced.prefixes.size());
  for (std::size_t i = 0; i < reply6.prefixes.size(); ++i) {
    EXPECT_EQ(reply6.prefixes[i].v6(), direct6_reduced.prefixes[i]);
  }

  // Malformed parameters are well-formed error frames, not daemon
  // aborts, and the connection keeps serving.
  ReduceParams bad = wire_params;
  bad.phi = 0.0;
  EXPECT_THROW(client.reduce(net::AddressFamily::kIpv4, bad), Error);
  bad = wire_params;
  bad.max_overshoot = -0.5;
  EXPECT_THROW(client.reduce(net::AddressFamily::kIpv4, bad), Error);
  EXPECT_EQ(client.ping().status, Status::kOk);

  std::remove(v4_path.c_str());
  std::remove(v6_path.c_str());
}

TEST(ServeDaemon, UnservedFamilyIsAWellFormedError) {
  const std::string v4_path = make_v4_image("serve_test_only4", 8, 11);
  ServerOptions options;
  options.v4_image_path = v4_path;
  options.threads = 2;
  RunningServer running(std::move(options));
  Client client("127.0.0.1", running.server.port());

  EXPECT_THROW(client.info(net::AddressFamily::kIpv6), Error);
  // The connection survives the error frame and keeps serving.
  EXPECT_EQ(client.ping().status, Status::kOk);
  std::remove(v4_path.c_str());
}

TEST(ServeDaemon, ReloadSwapsTheServedGeneration) {
  const std::string path_a = make_v4_image("serve_test_gen_a", 16, 21);
  const std::string path_b = make_v4_image("serve_test_gen_b", 24, 22);
  const std::uint64_t fp_a = state::StateImage::load(path_a).info().fingerprint;
  const std::uint64_t fp_b = state::StateImage::load(path_b).info().fingerprint;
  ASSERT_NE(fp_a, fp_b);

  ServerOptions options;
  options.v4_image_path = path_a;
  options.threads = 2;
  RunningServer running(std::move(options));
  Client client("127.0.0.1", running.server.port());

  const auto [before, info_before] = client.info(net::AddressFamily::kIpv4);
  EXPECT_EQ(before.fingerprint, fp_a);

  const auto [reload_header, ticket] =
      client.reload(net::AddressFamily::kIpv4, path_b);
  EXPECT_EQ(reload_header.status, Status::kAccepted);
  EXPECT_GE(ticket, 1u);

  // The swap is asynchronous: poll until the fingerprint flips. Service
  // must never pause — every poll is itself a served query.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    const auto [header, info] = client.info(net::AddressFamily::kIpv4);
    EXPECT_TRUE(header.fingerprint == fp_a || header.fingerprint == fp_b);
    if (header.fingerprint == fp_b) {
      EXPECT_GT(header.generation, before.generation);
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "reload did not land";
  }
  const auto [stats_header, stats] = client.stats();
  EXPECT_GE(stats.swaps, 1u);
  EXPECT_GE(stats.generations_retired, 1u);

  // A failed reload keeps the current generation and counts a failure.
  client.reload(net::AddressFamily::kIpv4, "/nonexistent/image.tsim");
  const auto fail_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (running.server.reload_failures() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), fail_deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(client.info(net::AddressFamily::kIpv4).first.fingerprint, fp_b);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// Raw-socket helper: sends one framed request payload and reads back
// one complete response frame, bypassing Client's well-formedness.
std::vector<std::uint8_t> raw_roundtrip(int fd,
                                        std::span<const std::uint8_t> payload) {
  const auto framed = frame(payload);
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, 0);
    if (n <= 0) throw Error("raw_roundtrip: send failed");
    sent += static_cast<std::size_t>(n);
  }
  std::vector<std::uint8_t> in;
  std::size_t offset = 0;
  for (;;) {
    if (const auto response =
            next_frame(std::span<const std::uint8_t>(in), offset)) {
      return {response->begin(), response->end()};
    }
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) throw Error("raw_roundtrip: peer closed");
    in.insert(in.end(), buf, buf + n);
  }
}

TEST(ServeDaemon, OverclaimedBatchCountIsAWellFormedError) {
  // A 12-byte frame announcing a 2^32-1 address batch must not make the
  // server reserve gigabytes (or die on bad_alloc): the count is
  // validated against the bytes actually present and answered with an
  // error frame, and the connection keeps serving.
  const std::string v4_path = make_v4_image("serve_test_overclaim", 8, 41);
  const std::string v6_path = make_v6_image("serve_test_overclaim6", 8, 42);
  ServerOptions options;
  options.v4_image_path = v4_path;
  options.v6_image_path = v6_path;
  options.threads = 2;
  RunningServer running(std::move(options));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(running.server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);

  for (const auto family :
       {net::AddressFamily::kIpv4, net::AddressFamily::kIpv6}) {
    RequestHeader request;
    request.op = Op::kLocate;
    request.family = family;
    request.request_id = 99;
    request.count = 0xFFFFFFFFu;
    std::vector<std::uint8_t> payload;
    encode_request_header(payload, request);

    const auto response = raw_roundtrip(fd, payload);
    Cursor cursor{std::span<const std::uint8_t>(response)};
    const ResponseHeader header = decode_response_header(cursor);
    EXPECT_EQ(header.status, Status::kError);
    EXPECT_EQ(header.request_id, 99u);
  }

  // The connection survived both malicious frames.
  RequestHeader ping;
  ping.op = Op::kPing;
  ping.family = net::AddressFamily::kIpv4;
  ping.request_id = 100;
  std::vector<std::uint8_t> payload;
  encode_request_header(payload, ping);
  const auto response = raw_roundtrip(fd, payload);
  Cursor cursor{std::span<const std::uint8_t>(response)};
  EXPECT_EQ(decode_response_header(cursor).status, Status::kOk);

  ::close(fd);
  std::remove(v4_path.c_str());
  std::remove(v6_path.c_str());
}

TEST(ServeDaemon, PipelinedBurstIsServedCompletelyUnderBackpressure) {
  // A client that pipelines a multi-megabyte train of queries before
  // reading a single response crosses the server's output high-water
  // mark mid-burst: the shard defers the remaining frames, flushes,
  // and resumes them from the buffered input. Every response must
  // still arrive, in order, with the full payload.
  const std::string v4_path = make_v4_image("serve_test_burst", 8, 51);
  ServerOptions options;
  options.v4_image_path = v4_path;
  options.threads = 2;
  RunningServer running(std::move(options));

  constexpr std::uint32_t kRequests = 30;
  constexpr std::uint32_t kBatch = 50000;  // 200 KB response each
  std::vector<std::uint8_t> train;
  for (std::uint32_t request_id = 1; request_id <= kRequests; ++request_id) {
    RequestHeader request;
    request.op = Op::kLocate;
    request.family = net::AddressFamily::kIpv4;
    request.request_id = request_id;
    request.count = kBatch;
    std::vector<std::uint8_t> payload;
    encode_request_header(payload, request);
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      put_u32(payload, (10u << 24) | ((i % 8) << 16) | (i & 0xFFFF));
    }
    const auto framed = frame(payload);
    train.insert(train.end(), framed.begin(), framed.end());
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(running.server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ASSERT_EQ(errno, EINPROGRESS);
  }

  // Push the whole train, reading nothing until the send is fully
  // blocked (the server has stopped polling this connection's input
  // and every buffer in between is full — i.e. backpressure engaged)
  // or fully sent; only then start draining. Nonblocking on both sides
  // so the server's throttling cannot deadlock the test.
  std::vector<std::uint8_t> in;
  std::size_t sent = 0;
  std::size_t offset = 0;
  std::uint32_t next_expected = 1;
  bool send_blocked = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (next_expected <= kRequests) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "burst stalled at response " << next_expected;
    const bool sending = sent < train.size();
    const bool draining = !sending || send_blocked;
    short events = 0;
    if (sending) events |= POLLOUT;
    if (draining) events |= POLLIN;
    pollfd pfd{fd, events, 0};
    ::poll(&pfd, 1, 100);
    if (sending && (pfd.revents & POLLOUT)) {
      const ssize_t n =
          ::send(fd, train.data() + sent, train.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        send_blocked = false;
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        send_blocked = true;
      }
    } else if (sending) {
      // POLLOUT did not fire within the poll window: the socket is
      // backed up, so start draining responses to unblock it.
      send_blocked = true;
    }
    if (draining && (pfd.revents & POLLIN)) {
      std::uint8_t buf[65536];
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      ASSERT_NE(n, 0) << "server closed the connection mid-burst";
      if (n > 0) in.insert(in.end(), buf, buf + n);
    }
    while (const auto response =
               next_frame(std::span<const std::uint8_t>(in), offset)) {
      Cursor cursor{*response};
      const ResponseHeader header = decode_response_header(cursor);
      EXPECT_EQ(header.status, Status::kOk);
      EXPECT_EQ(header.request_id, next_expected);
      EXPECT_EQ(header.count, kBatch);
      EXPECT_EQ(cursor.remaining(), kBatch * 4u);
      ++next_expected;
    }
  }
  EXPECT_EQ(sent, train.size());

  ::close(fd);
  std::remove(v4_path.c_str());
}

TEST(ServeDaemon, ShutdownOpStopsTheServer) {
  const std::string v4_path = make_v4_image("serve_test_shutdown", 8, 31);
  ServerOptions options;
  options.v4_image_path = v4_path;
  options.threads = 2;
  Server server(std::move(options));
  std::thread thread([&server] { server.run(); });
  {
    Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.shutdown().status, Status::kOk);
  }
  thread.join();  // run() must return on its own after kShutdown
  std::remove(v4_path.c_str());
}

}  // namespace
}  // namespace tass::serve
