// Tests for core/ranking: density statistics, rank curves and the
// prefix-length histograms (the machinery behind Figures 3 and 4).
#include "core/ranking.hpp"

#include <gtest/gtest.h>

#include "census/population.hpp"
#include "census/topology.hpp"

namespace tass::core {
namespace {

using census::Protocol;

std::shared_ptr<const census::Topology> tiny_topology() {
  const std::vector<bgp::Pfx2AsRecord> records = {
      {net::Prefix::parse_or_throw("10.0.0.0/8"), {1}},
      {net::Prefix::parse_or_throw("10.0.0.0/10"), {2}},
      {net::Prefix::parse_or_throw("20.0.0.0/16"), {3}},
      {net::Prefix::parse_or_throw("30.0.0.0/24"), {4}},
  };
  return census::topology_from_table(bgp::RoutingTable::from_pfx2as(records),
                                     1);
}

census::Snapshot tiny_snapshot() {
  // m-cells ascending: 10.0.0.0/10, 10.64.0.0/10, 10.128.0.0/9,
  // 20.0.0.0/16, 30.0.0.0/24.
  auto topo = tiny_topology();
  std::vector<census::CellPopulation> cells(topo->m_partition.size());
  cells[0].stable = {1, 2, 3, 4};           // density 4/2^22
  cells[3].stable = {10, 20};               // density 2/2^16
  cells[4].stable = {0, 1, 2, 3, 4, 5, 6};  // density 7/256 (densest)
  return census::Snapshot(topo, Protocol::kFtp, 0, std::move(cells));
}

TEST(Ranking, ExcludesZeroDensityAndSortsDescending) {
  const auto snapshot = tiny_snapshot();
  const auto ranking = rank_by_density(snapshot, PrefixMode::kMore);
  EXPECT_EQ(ranking.total_hosts, 13u);
  ASSERT_EQ(ranking.ranked.size(), 3u);  // two cells are empty
  EXPECT_EQ(ranking.ranked[0].prefix.to_string(), "30.0.0.0/24");
  EXPECT_EQ(ranking.ranked[1].prefix.to_string(), "20.0.0.0/16");
  EXPECT_EQ(ranking.ranked[2].prefix.to_string(), "10.0.0.0/10");
  EXPECT_GT(ranking.ranked[0].density, ranking.ranked[1].density);
  EXPECT_GT(ranking.ranked[1].density, ranking.ranked[2].density);
  EXPECT_EQ(ranking.advertised_addresses,
            snapshot.topology().advertised_addresses);
  EXPECT_EQ(ranking.responsive_addresses(),
            (1ULL << 22) + (1ULL << 16) + 256);
}

TEST(Ranking, HostSharesSumToOne) {
  const auto ranking =
      rank_by_density(tiny_snapshot(), PrefixMode::kMore);
  double total = 0;
  for (const RankedPrefix& entry : ranking.ranked) {
    total += entry.host_share;
    EXPECT_DOUBLE_EQ(entry.density,
                     static_cast<double>(entry.hosts) /
                         static_cast<double>(entry.size));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Ranking, LessModeAggregatesOverLPrefixes) {
  const auto snapshot = tiny_snapshot();
  const auto ranking = rank_by_density(snapshot, PrefixMode::kLess);
  // l-prefixes: 10/8 (4 hosts), 20.0/16 (2), 30.0/24 (7).
  ASSERT_EQ(ranking.ranked.size(), 3u);
  EXPECT_EQ(ranking.total_hosts, 13u);
  EXPECT_EQ(ranking.ranked[0].prefix.to_string(), "30.0.0.0/24");
  EXPECT_EQ(ranking.ranked[0].hosts, 7u);
  EXPECT_EQ(ranking.ranked[2].prefix.to_string(), "10.0.0.0/8");
  EXPECT_EQ(ranking.ranked[2].hosts, 4u);
}

TEST(Ranking, RankCurveIsMonotoneAndEndsAtFullCoverage) {
  const auto ranking =
      rank_by_density(tiny_snapshot(), PrefixMode::kMore);
  const auto curve = rank_curve(ranking, 16);
  ASSERT_GE(curve.size(), 2u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].cumulative_hosts, curve[i - 1].cumulative_hosts);
    EXPECT_GE(curve[i].cumulative_space, curve[i - 1].cumulative_space);
    EXPECT_LE(curve[i].density, curve[i - 1].density);
  }
  EXPECT_DOUBLE_EQ(curve.back().cumulative_hosts, 1.0);
  EXPECT_NEAR(curve.back().cumulative_space,
              static_cast<double>(ranking.responsive_addresses()) /
                  static_cast<double>(ranking.advertised_addresses),
              1e-12);
}

TEST(Ranking, RankCurveSamplingBoundsPoints) {
  census::TopologyParams params;
  params.seed = 21;
  params.l_prefix_count = 400;
  const auto topo = census::generate_topology(params);
  census::PopulationParams pop;
  pop.host_scale = 0.001;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(Protocol::kHttp), pop);
  const auto ranking = rank_by_density(snapshot, PrefixMode::kMore);
  const auto curve = rank_curve(ranking, 16);
  EXPECT_LE(curve.size(), 20u);  // max_points plus the final rank
  EXPECT_EQ(curve.back().rank, ranking.ranked.size());
}

TEST(Ranking, HistogramCountsEveryHostAtTheRightLength) {
  const auto snapshot = tiny_snapshot();
  const auto more = hosts_by_prefix_length(snapshot, PrefixMode::kMore);
  EXPECT_EQ(more[10], 4u);
  EXPECT_EQ(more[16], 2u);
  EXPECT_EQ(more[24], 7u);
  std::uint64_t total = 0;
  for (const std::uint64_t count : more) total += count;
  EXPECT_EQ(total, snapshot.total_hosts());

  const auto less = hosts_by_prefix_length(snapshot, PrefixMode::kLess);
  EXPECT_EQ(less[8], 4u);
  EXPECT_EQ(less[16], 2u);
  EXPECT_EQ(less[24], 7u);
}

TEST(Ranking, FromExplicitCounts) {
  const auto topo = tiny_topology();
  const std::vector<std::uint32_t> counts(topo->m_partition.size(), 1);
  const auto ranking =
      rank_by_density(counts, topo->m_partition, PrefixMode::kMore);
  EXPECT_EQ(ranking.ranked.size(), topo->m_partition.size());
  EXPECT_EQ(ranking.total_hosts, topo->m_partition.size());
  // Equal counts: densest = smallest prefix first.
  EXPECT_EQ(ranking.ranked[0].prefix.to_string(), "30.0.0.0/24");
}

}  // namespace
}  // namespace tass::core
