// Randomized differential test for the LPM substrate.
//
// Three implementations answer the same longest-prefix-match question:
//   * trie::LpmIndex        — the flat production engine under test;
//   * trie::PrefixTrie      — the legacy bitwise trie it replaced;
//   * a naive linear scan   — the obviously-correct oracle.
// Seeded generators build adversarial prefix tables (adjacent /32 runs,
// nested /8 -> /30 chains, RIB-shaped samples) and the three are compared
// on the space's edges (0.0.0.0, 255.255.255.255), every prefix boundary
// +/- 1, and a large stream of random addresses. Across the seeds the
// suite resolves well over a million lookups (the naive oracle is skipped
// on the RIB-scale tables where it would dominate the runtime; its
// equivalence is established on the smaller tables first).
#include "trie/lpm_index.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "trie/lpm_index6.hpp"
#include "trie/lpm_kernels.hpp"
#include "trie/prefix_trie.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace tass::trie {
namespace {

using Entry = LpmIndex::Entry;

// Longest match by exhaustive scan; later entries win ties so duplicate
// prefixes follow the same last-wins rule as LpmIndex and PrefixTrie.
std::uint32_t naive_lookup(const std::vector<Entry>& table,
                           net::Ipv4Address addr) {
  int best_length = -1;
  std::uint32_t best = LpmIndex::kNoMatch;
  for (const Entry& entry : table) {
    if (entry.prefix.contains(addr) && entry.prefix.length() >= best_length) {
      best_length = entry.prefix.length();
      best = entry.value;
    }
  }
  return best;
}

PrefixTrie<std::uint32_t> build_legacy(const std::vector<Entry>& table) {
  PrefixTrie<std::uint32_t> trie;
  for (const Entry& entry : table) trie.insert(entry.prefix, entry.value);
  return trie;
}

std::uint32_t legacy_lookup(const PrefixTrie<std::uint32_t>& trie,
                            net::Ipv4Address addr) {
  const auto match = trie.longest_match(addr);
  return match ? match->second : LpmIndex::kNoMatch;
}

// The addresses every table is probed at besides the random stream: the
// space's edges and every prefix boundary +/- 1.
std::vector<std::uint32_t> boundary_addresses(const std::vector<Entry>& table) {
  std::vector<std::uint32_t> addresses = {0u, ~0u};
  for (const Entry& entry : table) {
    const std::uint32_t first = entry.prefix.first().value();
    const std::uint32_t last = entry.prefix.last().value();
    addresses.push_back(first);
    addresses.push_back(last);
    if (first != 0) addresses.push_back(first - 1);
    if (last != ~0u) addresses.push_back(last + 1);
  }
  return addresses;
}

// Cross-checks all three implementations (naive oracle optional) on the
// boundary set plus `random_lookups` random addresses. Returns how many
// lookups were verified.
std::size_t verify_table(const std::vector<Entry>& table, std::uint64_t seed,
                         std::size_t random_lookups, bool check_naive) {
  const LpmIndex index(table);
  const PrefixTrie<std::uint32_t> legacy = build_legacy(table);

  std::vector<std::uint32_t> addresses = boundary_addresses(table);
  util::Rng rng(util::mix64(seed, 0xADD2E55ULL));
  for (std::size_t i = 0; i < random_lookups; ++i) {
    addresses.push_back(static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
  }

  // Batched and scalar paths must agree with each other as well.
  const std::vector<std::uint32_t> batched = index.lookup_many(addresses);

  // Every registered kernel tier must be bit-identical to the default
  // batch. On hardware without AVX2 the kAvx2 slot holds the scalar
  // fallback, so the sweep degenerates gracefully instead of skipping.
  std::vector<std::uint32_t> tier(addresses.size());
  for (const auto level :
       {util::cpu::SimdLevel::kScalar, util::cpu::SimdLevel::kAvx2}) {
    index.lookup_many(addresses, tier, level);
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      if (tier[i] == batched[i]) continue;
      ADD_FAILURE() << lpm_kernel_table<net::Ipv4Family>(level).name
                    << " kernel diverges at "
                    << net::Ipv4Address(addresses[i]).to_string()
                    << " seed=" << seed;
      return addresses.size();
    }
  }

  for (std::size_t i = 0; i < addresses.size(); ++i) {
    const net::Ipv4Address addr(addresses[i]);
    const std::uint32_t got = index.lookup(addr);
    EXPECT_EQ(got, batched[i]) << "batched/scalar split at "
                               << addr.to_string() << " seed=" << seed;
    EXPECT_EQ(got, legacy_lookup(legacy, addr))
        << "LpmIndex vs PrefixTrie at " << addr.to_string()
        << " seed=" << seed;
    if (check_naive) {
      EXPECT_EQ(got, naive_lookup(table, addr))
          << "LpmIndex vs naive oracle at " << addr.to_string()
          << " seed=" << seed;
    }
    // One detailed mismatch is enough; don't flood the log.
    if (::testing::Test::HasFailure()) return addresses.size();
  }
  return addresses.size();
}

// --- seeded table generators -----------------------------------------

// Runs of adjacent /32s (the worst case for stride compression), with a
// few covering prefixes so matches fall through between the runs.
std::vector<Entry> adjacent_slash32_table(std::uint64_t seed) {
  util::Rng rng(util::mix64(seed, 1));
  std::vector<Entry> table;
  std::uint32_t value = 0;
  for (int run = 0; run < 24; ++run) {
    const auto base = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    const auto length = 1 + rng.bounded(64);  // runs cross /26 slot edges
    for (std::uint64_t i = 0; i < length; ++i) {
      const std::uint64_t addr = base + i;
      if (addr > 0xffffffffULL) break;
      table.push_back({net::Prefix(net::Ipv4Address(
                           static_cast<std::uint32_t>(addr)), 32),
                       value++});
    }
    // Cover roughly half the runs with a shorter prefix underneath.
    if (rng.chance(0.5)) {
      const int cover_len = 8 + static_cast<int>(rng.bounded(17));
      table.push_back(
          {net::Prefix(net::Ipv4Address(base), cover_len), value++});
    }
  }
  return table;
}

// Nested chains: /8, /9, ..., /30 all stacked on the same branch, the
// deepest-possible LPM decision at every level.
std::vector<Entry> nested_chain_table(std::uint64_t seed) {
  util::Rng rng(util::mix64(seed, 2));
  std::vector<Entry> table;
  std::uint32_t value = 0;
  for (int chain = 0; chain < 8; ++chain) {
    const auto base = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    for (int length = 8; length <= 30; ++length) {
      // Walk a random branch: keep the prefix bits, randomise the rest.
      const std::uint32_t jitter =
          static_cast<std::uint32_t>(rng.bounded(1ULL << 32)) &
          ~net::Prefix::mask(length);
      table.push_back(
          {net::Prefix(net::Ipv4Address(base | jitter), length), value++});
    }
  }
  return table;
}

// RIB-shaped: lengths concentrated on /16../24 like a real BGP table, a
// sprinkling of short covers and long more-specifics, plus duplicates.
std::vector<Entry> rib_sample_table(std::uint64_t seed, std::size_t count) {
  util::Rng rng(util::mix64(seed, 3));
  std::vector<Entry> table;
  table.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.04) {
      length = 8 + static_cast<int>(rng.bounded(7));  // /8../14 covers
    } else if (roll < 0.50) {
      length = 15 + static_cast<int>(rng.bounded(7));  // /15../21
    } else if (roll < 0.97) {
      length = 22 + static_cast<int>(rng.bounded(3));  // /22../24 bulk
    } else {
      length = 25 + static_cast<int>(rng.bounded(8));  // rare long tails
    }
    const auto network = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    table.push_back({net::Prefix(net::Ipv4Address(network), length),
                     static_cast<std::uint32_t>(i)});
  }
  // Re-announce a handful of prefixes with new values: last must win.
  for (int i = 0; i < 32 && !table.empty(); ++i) {
    const auto pick = static_cast<std::size_t>(rng.bounded(table.size()));
    table.push_back({table[pick].prefix,
                     static_cast<std::uint32_t>(count + static_cast<std::size_t>(i))});
  }
  return table;
}

constexpr std::uint64_t kSeeds[] = {1, 2, 2016, 0xDEADBEEF, 0x5EED5EED,
                                    424242};

TEST(LpmDifferential, AdjacentSlash32RunsAgainstOracleAndLegacy) {
  std::size_t verified = 0;
  for (const std::uint64_t seed : kSeeds) {
    verified +=
        verify_table(adjacent_slash32_table(seed), seed, 20'000, true);
  }
  EXPECT_GE(verified, 120'000u);
}

TEST(LpmDifferential, NestedChainsAgainstOracleAndLegacy) {
  std::size_t verified = 0;
  for (const std::uint64_t seed : kSeeds) {
    verified += verify_table(nested_chain_table(seed), seed, 20'000, true);
  }
  EXPECT_GE(verified, 120'000u);
}

TEST(LpmDifferential, SmallRibSamplesAgainstOracleAndLegacy) {
  std::size_t verified = 0;
  for (const std::uint64_t seed : kSeeds) {
    verified +=
        verify_table(rib_sample_table(seed, 1'000), seed, 10'000, true);
  }
  EXPECT_GE(verified, 60'000u);
}

TEST(LpmDifferential, FullRibScaleSamplesAgainstLegacy) {
  // 50k-prefix tables, legacy-trie cross-check only (the naive oracle's
  // equivalence is established by the smaller tables above); 150k random
  // lookups per seed puts the whole suite past the million-lookup mark.
  std::size_t verified = 0;
  for (const std::uint64_t seed : kSeeds) {
    verified +=
        verify_table(rib_sample_table(seed, 50'000), seed, 150'000, false);
  }
  EXPECT_GE(verified, 1'000'000u);
}

// --- IPv6 differential suite -----------------------------------------
//
// The same engine instantiated at 128 bits (trie::LpmIndex6) against a
// naive linear-scan oracle. Tables stress what is new in the v6
// instantiation: the extra stride levels, the 64-bit hi/lo half edge
// (strides land exactly on bit 64, so boundary +/- 1 probes cross it),
// and nested /32 -> /64 chains.

using Entry6 = LpmIndex6::Entry;

std::uint32_t naive_lookup6(const std::vector<Entry6>& table,
                            net::Ipv6Address addr) {
  int best_length = -1;
  std::uint32_t best = LpmIndex6::kNoMatch;
  for (const Entry6& entry : table) {
    if (entry.prefix.contains(addr) && entry.prefix.length() >= best_length) {
      best_length = entry.prefix.length();
      best = entry.value;
    }
  }
  return best;
}

// The space's edges and every prefix boundary +/- 1 with 128-bit
// carry/borrow, so prefixes ending on the hi/lo half edge probe across
// it.
std::vector<net::Ipv6Address> boundary_addresses6(
    const std::vector<Entry6>& table) {
  std::vector<net::Ipv6Address> addresses = {
      net::Ipv6Address(0, 0), net::Ipv6Address(~0ULL, ~0ULL)};
  for (const Entry6& entry : table) {
    const net::Ipv6Address first = entry.prefix.first();
    const net::Ipv6Address last = entry.prefix.last();
    addresses.push_back(first);
    addresses.push_back(last);
    if (first.hi() != 0 || first.lo() != 0) {
      const std::uint64_t borrow = first.lo() == 0 ? 1 : 0;
      addresses.emplace_back(first.hi() - borrow, first.lo() - 1);
    }
    if (last.hi() != ~0ULL || last.lo() != ~0ULL) {
      const std::uint64_t carry = last.lo() == ~0ULL ? 1 : 0;
      addresses.emplace_back(last.hi() + carry, last.lo() + 1);
    }
  }
  return addresses;
}

std::size_t verify_table6(const std::vector<Entry6>& table,
                          std::uint64_t seed, std::size_t random_lookups) {
  const LpmIndex6 index(table);
  std::vector<net::Ipv6Address> addresses = boundary_addresses6(table);
  util::Rng rng(util::mix64(seed, 0x6ADD2E55ULL));
  for (std::size_t i = 0; i < random_lookups; ++i) {
    if ((i & 1) == 0 && !table.empty()) {
      // Host bits under a random table prefix, so deep levels resolve.
      const net::Ipv6Prefix prefix =
          table[rng.bounded(table.size())].prefix;
      const int len = prefix.length();
      std::uint64_t hi = rng();
      std::uint64_t lo = rng();
      if (len <= 64) {
        hi = prefix.network().hi() | (len == 64 ? 0 : hi >> len);
      } else {
        hi = prefix.network().hi();
        lo = prefix.network().lo() | (len == 128 ? 0 : lo >> (len - 64));
      }
      addresses.emplace_back(hi, lo);
    } else {
      addresses.emplace_back(rng(), rng());
    }
  }

  // Batched and scalar paths must agree with each other as well.
  const std::vector<std::uint32_t> batched = index.lookup_many(addresses);

  // Both kernel tiers (scalar reference, software-pipelined walk) must
  // be bit-identical to the default batch.
  std::vector<std::uint32_t> tier(addresses.size());
  for (const auto level :
       {util::cpu::SimdLevel::kScalar, util::cpu::SimdLevel::kAvx2}) {
    index.lookup_many(addresses, tier, level);
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      if (tier[i] == batched[i]) continue;
      ADD_FAILURE() << lpm_kernel_table<net::Ipv6Family>(level).name
                    << " kernel diverges at " << addresses[i].to_string()
                    << " seed=" << seed;
      return addresses.size();
    }
  }

  for (std::size_t i = 0; i < addresses.size(); ++i) {
    const net::Ipv6Address addr = addresses[i];
    const std::uint32_t got = index.lookup(addr);
    EXPECT_EQ(got, batched[i]) << "batched/scalar split at "
                               << addr.to_string() << " seed=" << seed;
    EXPECT_EQ(got, naive_lookup6(table, addr))
        << "LpmIndex6 vs naive oracle at " << addr.to_string()
        << " seed=" << seed;
    if (::testing::Test::HasFailure()) return addresses.size();
  }
  return addresses.size();
}

// Nested /32 -> /64 chains stacked on one branch: every stride level of
// the 128-bit walk carries a longer match.
std::vector<Entry6> nested_chain_table6(std::uint64_t seed) {
  util::Rng rng(util::mix64(seed, 61));
  std::vector<Entry6> table;
  std::uint32_t value = 0;
  for (int chain = 0; chain < 6; ++chain) {
    const net::Ipv6Address base(0x2000000000000000ULL | (rng() >> 3),
                                rng());
    for (int length = 32; length <= 64; ++length) {
      // Walk a random branch: keep the prefix bits, randomise the rest.
      const net::Ipv6Address jitter(rng(), rng());
      const net::Ipv6Prefix kept(base, length);
      const net::Ipv6Address mixed(
          kept.network().hi() |
              (length >= 64 ? 0 : jitter.hi() >> length),
          jitter.lo());
      table.push_back({net::Ipv6Prefix(mixed, length), value++});
    }
    // A couple of long hitlist-style more-specifics below the chain.
    table.push_back({net::Ipv6Prefix(base, 96), value++});
    table.push_back({net::Ipv6Prefix(base, 128), value++});
  }
  return table;
}

// v6-RIB-shaped: the /32-/48 allocation ladder plus long tails, and
// prefixes that end exactly on the 64-bit half edge.
std::vector<Entry6> rib_sample_table6(std::uint64_t seed,
                                      std::size_t count) {
  util::Rng rng(util::mix64(seed, 62));
  std::vector<Entry6> table;
  table.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    int length;
    if (roll < 0.05) {
      length = 20 + static_cast<int>(rng.bounded(10));
    } else if (roll < 0.25) {
      length = 32;
    } else if (roll < 0.50) {
      length = 36 + static_cast<int>(rng.bounded(9));
    } else if (roll < 0.90) {
      length = 48;
    } else if (roll < 0.97) {
      length = 64;  // exactly the hi/lo half edge
    } else {
      length = 65 + static_cast<int>(rng.bounded(64));
    }
    const net::Ipv6Address network(0x2000000000000000ULL | (rng() >> 3),
                                   rng());
    table.push_back({net::Ipv6Prefix(network, length),
                     static_cast<std::uint32_t>(i)});
  }
  // Re-announce a handful of prefixes with new values: last must win.
  for (int i = 0; i < 16 && !table.empty(); ++i) {
    const auto pick = static_cast<std::size_t>(rng.bounded(table.size()));
    table.push_back({table[pick].prefix,
                     static_cast<std::uint32_t>(count +
                                                static_cast<std::size_t>(i))});
  }
  return table;
}

TEST(LpmDifferential, Ipv6NestedChainsAgainstOracle) {
  std::size_t verified = 0;
  for (const std::uint64_t seed : kSeeds) {
    verified += verify_table6(nested_chain_table6(seed), seed, 4000);
  }
  EXPECT_GT(verified, 20000u);
}

TEST(LpmDifferential, Ipv6RibSamplesAgainstOracle) {
  std::size_t verified = 0;
  for (const std::uint64_t seed : kSeeds) {
    verified += verify_table6(rib_sample_table6(seed, 600), seed, 3000);
  }
  EXPECT_GT(verified, 20000u);
}

TEST(LpmDifferential, Ipv6HalfEdgePrefixesAgainstOracle) {
  // Prefixes straddling the stride schedule's landing on bit 64: /63,
  // /64 and /65 siblings around one base, so boundary +/- 1 probes and
  // host-bit lookups exercise the carry across hi/lo.
  for (const std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{77},
                                   std::uint64_t{777}}) {
    util::Rng rng(util::mix64(seed, 63));
    std::vector<Entry6> table;
    std::uint32_t value = 0;
    for (int i = 0; i < 32; ++i) {
      const net::Ipv6Address base(rng(), rng());
      for (const int length : {63, 64, 65}) {
        table.push_back({net::Ipv6Prefix(base, length), value++});
      }
    }
    verify_table6(table, seed, 2000);
  }
}

TEST(LpmDifferential, Ipv6EmptyAndSingleEntry) {
  const LpmIndex6 empty;
  EXPECT_EQ(empty.lookup(net::Ipv6Address(1, 2)), LpmIndex6::kNoMatch);

  std::vector<Entry6> one = {
      {net::Ipv6Prefix::parse_or_throw("2001:db8::/32"), 7}};
  verify_table6(one, 99, 500);
}

// --- kernel dispatch ---------------------------------------------------

TEST(LpmDispatch, KernelTablesArePopulated) {
  // Every (family, level) slot holds a callable kernel with a stable
  // name; kAvx2 falls back to the scalar kernel when the AVX2 TU was
  // not compiled in, so dispatch never dereferences a null entry.
  for (const auto level :
       {util::cpu::SimdLevel::kScalar, util::cpu::SimdLevel::kAvx2}) {
    const auto& table4 = lpm_kernel_table<net::Ipv4Family>(level);
    ASSERT_NE(table4.lookup_many, nullptr);
    EXPECT_FALSE(std::string_view(table4.name).empty());
    const auto& table6 = lpm_kernel_table<net::Ipv6Family>(level);
    ASSERT_NE(table6.lookup_many, nullptr);
    EXPECT_FALSE(std::string_view(table6.name).empty());
  }
  EXPECT_STREQ(
      lpm_kernel_table<net::Ipv4Family>(util::cpu::SimdLevel::kScalar).name,
      "scalar");
  EXPECT_STREQ(
      lpm_kernel_table<net::Ipv6Family>(util::cpu::SimdLevel::kAvx2).name,
      "pipelined");
}

TEST(LpmDispatch, ForceScalarEnvRoundTrip) {
  // TASS_FORCE_SCALAR wins over any hardware capability, "0"/"" do not
  // count as set, and clearing it restores the probed level. The
  // original environment is restored afterwards so this test composes
  // with sanitizer jobs that export the override suite-wide.
  const char* saved = std::getenv("TASS_FORCE_SCALAR");
  const std::string saved_value = saved ? saved : "";

  ::setenv("TASS_FORCE_SCALAR", "1", 1);
  EXPECT_TRUE(util::cpu::probe().forced_scalar);
  EXPECT_EQ(util::cpu::refresh_active_level_for_testing(),
            util::cpu::SimdLevel::kScalar);

  ::setenv("TASS_FORCE_SCALAR", "0", 1);
  EXPECT_FALSE(util::cpu::probe().forced_scalar);

  ::unsetenv("TASS_FORCE_SCALAR");
  const util::cpu::Features features = util::cpu::probe();
  EXPECT_FALSE(features.forced_scalar);
  EXPECT_EQ(util::cpu::refresh_active_level_for_testing(),
            features.avx2 ? util::cpu::SimdLevel::kAvx2
                          : util::cpu::SimdLevel::kScalar);

  if (saved) {
    ::setenv("TASS_FORCE_SCALAR", saved_value.c_str(), 1);
  }
  util::cpu::refresh_active_level_for_testing();
}

TEST(LpmDifferential, EraseInLegacyMatchesRebuiltIndex) {
  // The legacy trie is the mutable structure; after erasing entries, a
  // freshly built LpmIndex over the survivors must agree with it.
  for (const std::uint64_t seed : kSeeds) {
    std::vector<Entry> table = rib_sample_table(seed, 2'000);
    PrefixTrie<std::uint32_t> legacy = build_legacy(table);
    util::Rng rng(util::mix64(seed, 4));
    std::vector<Entry> survivors;
    for (const Entry& entry : table) {
      if (rng.chance(0.3)) {
        legacy.erase(entry.prefix);
      }
    }
    legacy.for_each([&](net::Prefix prefix, const std::uint32_t& value) {
      survivors.push_back({prefix, value});
    });
    const LpmIndex index(survivors);
    for (std::size_t i = 0; i < 5'000; ++i) {
      const net::Ipv4Address addr(
          static_cast<std::uint32_t>(rng.bounded(1ULL << 32)));
      EXPECT_EQ(index.lookup(addr), legacy_lookup(legacy, addr))
          << addr.to_string() << " seed=" << seed;
      if (::testing::Test::HasFailure()) return;
    }
  }
}

}  // namespace
}  // namespace tass::trie
