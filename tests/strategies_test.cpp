// Tests for core/strategies: the full-scan / hitlist / TASS /
// random-sample strategy implementations over controlled snapshots.
#include "core/strategies.hpp"

#include <gtest/gtest.h>

#include "census/churn.hpp"
#include "census/population.hpp"
#include "census/series.hpp"

namespace tass::core {
namespace {

using census::Protocol;

std::shared_ptr<const census::Topology> test_topology() {
  static const auto topo = [] {
    census::TopologyParams params;
    params.seed = 41;
    params.l_prefix_count = 400;
    return census::generate_topology(params);
  }();
  return topo;
}

census::CensusSeries test_series(Protocol protocol, int months = 4) {
  census::SeriesParams params;
  params.months = months;
  params.host_scale = 0.002;
  params.seed = 6;
  return census::CensusSeries::generate(test_topology(), protocol, params);
}

TEST(FullScanStrategy, FindsEverythingAtFullCost) {
  const auto series = test_series(Protocol::kHttp);
  const FullScanStrategy strategy(series.month(0));
  EXPECT_EQ(strategy.scanned_addresses(),
            test_topology()->advertised_addresses);
  for (const auto& month : series.months()) {
    EXPECT_EQ(strategy.found_hosts(month), month.total_hosts());
  }
}

TEST(HitlistStrategy, PerfectAtSeedDecaysAfter) {
  const auto series = test_series(Protocol::kCwmp);
  const HitlistStrategy strategy(series.month(0));
  EXPECT_EQ(strategy.scanned_addresses(), series.month(0).total_hosts());
  EXPECT_EQ(strategy.found_hosts(series.month(0)),
            series.month(0).total_hosts());
  // CWMP churns hard: the hitlist must lose ground fast.
  const double month1 =
      static_cast<double>(strategy.found_hosts(series.month(1))) /
      static_cast<double>(series.month(1).total_hosts());
  EXPECT_LT(month1, 0.8);
  EXPECT_GT(month1, 0.3);
  const double month3 =
      static_cast<double>(strategy.found_hosts(series.month(3))) /
      static_cast<double>(series.month(3).total_hosts());
  EXPECT_LT(month3, month1);
}

TEST(TassStrategy, PhiOneIsExactAtSeed) {
  const auto series = test_series(Protocol::kFtp);
  for (const PrefixMode mode : {PrefixMode::kLess, PrefixMode::kMore}) {
    SelectionParams params;
    params.phi = 1.0;
    const TassStrategy strategy(series.month(0), mode, params);
    EXPECT_EQ(strategy.found_hosts(series.month(0)),
              series.month(0).total_hosts());
    EXPECT_LT(strategy.scanned_addresses(),
              test_topology()->advertised_addresses);
  }
}

TEST(TassStrategy, FoundHostsMatchesManualCellSum) {
  const auto series = test_series(Protocol::kHttps);
  SelectionParams params;
  params.phi = 0.9;
  const TassStrategy strategy(series.month(0), PrefixMode::kMore, params);

  const auto& later = series.month(2);
  const auto counts = later.counts_per_cell();
  std::uint64_t expected = 0;
  for (const std::uint32_t index : strategy.selection().indices) {
    expected += counts[index];
  }
  EXPECT_EQ(strategy.found_hosts(later), expected);
}

TEST(TassStrategy, OutperformsHitlistOverTime) {
  const auto series = test_series(Protocol::kHttp, 5);
  SelectionParams params;
  params.phi = 1.0;
  const TassStrategy tass(series.month(0), PrefixMode::kLess, params);
  const HitlistStrategy hitlist(series.month(0));
  const auto& last = series.month(4);
  EXPECT_GT(tass.found_hosts(last), hitlist.found_hosts(last));
}

TEST(TassStrategy, MoreSpecificCostsLessSpaceAtSeed) {
  const auto series = test_series(Protocol::kFtp);
  SelectionParams params;
  params.phi = 1.0;
  const TassStrategy less(series.month(0), PrefixMode::kLess, params);
  const TassStrategy more(series.month(0), PrefixMode::kMore, params);
  EXPECT_LT(more.scanned_addresses(), less.scanned_addresses());
}

TEST(TassStrategy, NameEncodesModeAndPhi) {
  const auto series = test_series(Protocol::kFtp, 1);
  SelectionParams params;
  params.phi = 0.95;
  const TassStrategy strategy(series.month(0), PrefixMode::kMore, params);
  EXPECT_NE(strategy.name().find("more"), std::string::npos);
  EXPECT_NE(strategy.name().find("0.95"), std::string::npos);
}

TEST(RandomSampleStrategy, ScansTheConfiguredBlockBudget) {
  const auto series = test_series(Protocol::kHttp, 1);
  RandomSampleParams params;
  params.block_fraction = 0.01;
  const RandomSampleStrategy strategy(series.month(0), params);
  const std::uint64_t total_blocks =
      test_topology()->advertised_addresses / 256;
  EXPECT_NEAR(static_cast<double>(strategy.block_count()),
              0.01 * static_cast<double>(total_blocks),
              0.002 * static_cast<double>(total_blocks));
  EXPECT_EQ(strategy.scanned_addresses(), strategy.block_count() * 256);
}

TEST(RandomSampleStrategy, FindsASliverProportionalToCoverage) {
  const auto series = test_series(Protocol::kHttp, 2);
  RandomSampleParams params;
  params.block_fraction = 0.02;
  const RandomSampleStrategy strategy(series.month(0), params);
  const std::uint64_t found = strategy.found_hosts(series.month(0));
  EXPECT_GT(found, 0u);
  EXPECT_LT(found, series.month(0).total_hosts());
  // The responsive-block and dense-block quotas pull in far more hosts
  // than 2% of the population.
  EXPECT_GT(static_cast<double>(found),
            0.02 * static_cast<double>(series.month(0).total_hosts()));
}

TEST(RandomSampleStrategy, DeterministicInSeed) {
  const auto series = test_series(Protocol::kFtp, 1);
  RandomSampleParams params;
  params.seed = 5;
  const RandomSampleStrategy a(series.month(0), params);
  const RandomSampleStrategy b(series.month(0), params);
  EXPECT_EQ(a.found_hosts(series.month(0)), b.found_hosts(series.month(0)));
  EXPECT_EQ(a.block_count(), b.block_count());
}

}  // namespace
}  // namespace tass::core
