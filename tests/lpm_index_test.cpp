#include "trie/lpm_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::trie {
namespace {

net::Ipv4Address addr(std::string_view text) {
  return net::Ipv4Address::parse_or_throw(text);
}

net::Prefix pfx(std::string_view text) {
  return net::Prefix::parse_or_throw(text);
}

TEST(LpmIndexTest, EmptyIndexMatchesNothing) {
  const LpmIndex index;
  EXPECT_EQ(index.lookup(addr("0.0.0.0")), LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(addr("255.255.255.255")), LpmIndex::kNoMatch);
  EXPECT_FALSE(index.covers(addr("10.0.0.1")));
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.prefix_count(), 0u);
}

TEST(LpmIndexTest, EmptyTableMatchesNothing) {
  const LpmIndex index{std::span<const LpmIndex::Entry>{}};
  EXPECT_EQ(index.lookup(addr("192.0.2.1")), LpmIndex::kNoMatch);
  EXPECT_TRUE(index.empty());
}

TEST(LpmIndexTest, DefaultRouteCoversEverything) {
  const std::vector<LpmIndex::Entry> table{{pfx("0.0.0.0/0"), 7}};
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("0.0.0.0")), 7u);
  EXPECT_EQ(index.lookup(addr("255.255.255.255")), 7u);
  EXPECT_EQ(index.lookup(addr("128.66.7.9")), 7u);
  EXPECT_EQ(index.prefix_count(), 1u);
}

TEST(LpmIndexTest, LongestMatchWinsAcrossNesting) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("0.0.0.0/0"), 0},     {pfx("10.0.0.0/8"), 1},
      {pfx("10.64.0.0/10"), 2},  {pfx("10.64.0.0/24"), 3},
      {pfx("10.64.0.128/25"), 4}, {pfx("10.64.0.129/32"), 5},
  };
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("192.0.2.1")), 0u);
  EXPECT_EQ(index.lookup(addr("10.255.0.1")), 1u);
  EXPECT_EQ(index.lookup(addr("10.64.1.0")), 2u);
  EXPECT_EQ(index.lookup(addr("10.64.0.5")), 3u);
  EXPECT_EQ(index.lookup(addr("10.64.0.128")), 4u);
  EXPECT_EQ(index.lookup(addr("10.64.0.129")), 5u);
  EXPECT_EQ(index.lookup(addr("10.64.0.130")), 4u);
}

TEST(LpmIndexTest, BoundariesOfAPrefixAreExact) {
  const std::vector<LpmIndex::Entry> table{{pfx("198.51.100.0/24"), 42}};
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("198.51.99.255")), LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(addr("198.51.100.0")), 42u);
  EXPECT_EQ(index.lookup(addr("198.51.100.255")), 42u);
  EXPECT_EQ(index.lookup(addr("198.51.101.0")), LpmIndex::kNoMatch);
}

TEST(LpmIndexTest, AdjacentSlash32s) {
  std::vector<LpmIndex::Entry> table;
  for (std::uint32_t i = 0; i < 8; ++i) {
    table.push_back(
        {net::Prefix(net::Ipv4Address(0xc6336400u + i), 32), 100 + i});
  }
  const LpmIndex index(table);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(index.lookup(net::Ipv4Address(0xc6336400u + i)), 100 + i);
  }
  EXPECT_EQ(index.lookup(net::Ipv4Address(0xc6336400u - 1)),
            LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(net::Ipv4Address(0xc6336400u + 8)),
            LpmIndex::kNoMatch);
}

TEST(LpmIndexTest, DuplicatePrefixLastValueWins) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("203.0.113.0/24"), 1},
      {pfx("203.0.113.0/24"), 9},
  };
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("203.0.113.7")), 9u);
  EXPECT_EQ(index.prefix_count(), 1u);  // distinct prefixes
}

TEST(LpmIndexTest, ExtremeAddressesWithEdgePrefixes) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("0.0.0.0/32"), 1},
      {pfx("255.255.255.255/32"), 2},
      {pfx("255.255.255.254/31"), 3},
  };
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("0.0.0.0")), 1u);
  EXPECT_EQ(index.lookup(addr("0.0.0.1")), LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(addr("255.255.255.255")), 2u);
  EXPECT_EQ(index.lookup(addr("255.255.255.254")), 3u);
  EXPECT_EQ(index.lookup(addr("255.255.255.253")), LpmIndex::kNoMatch);
}

TEST(LpmIndexTest, ValueOutOfRangeThrows) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("10.0.0.0/8"), LpmIndex::kNoMatch}};
  EXPECT_THROW(LpmIndex{table}, Error);
}

TEST(LpmIndexTest, LookupManyMatchesScalarLookup) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("10.0.0.0/8"), 1},
      {pfx("10.2.0.0/15"), 2},
      {pfx("172.16.0.0/12"), 3},
  };
  const LpmIndex index(table);
  std::vector<std::uint32_t> addresses;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    addresses.push_back(0x09000000u + i * 0x00020301u);  // spread widely
  }
  const auto batched = index.lookup_many(addresses);
  ASSERT_EQ(batched.size(), addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    EXPECT_EQ(batched[i], index.lookup(net::Ipv4Address(addresses[i])));
  }
}

TEST(LpmIndexTest, FromPrefixesBuildsMembershipIndex) {
  const std::vector<net::Prefix> prefixes{pfx("192.0.2.0/24"),
                                          pfx("198.18.0.0/15")};
  const LpmIndex index = LpmIndex::from_prefixes(prefixes);
  EXPECT_TRUE(index.covers(addr("192.0.2.200")));
  EXPECT_TRUE(index.covers(addr("198.19.255.255")));
  EXPECT_FALSE(index.covers(addr("192.0.3.0")));
  EXPECT_EQ(index.lookup(addr("192.0.2.200")), 0u);
}

TEST(LpmIndexTest, StatsAreConsistent) {
  std::vector<LpmIndex::Entry> table;
  for (std::uint32_t i = 0; i < 256; ++i) {
    table.push_back({net::Prefix(net::Ipv4Address(i << 24), 8), i});
  }
  const LpmIndex index(table);
  EXPECT_EQ(index.prefix_count(), 256u);
  // /8s resolve entirely inside the 16-bit root: no deep nodes needed.
  EXPECT_EQ(index.node_count(), 0u);
  EXPECT_GE(index.memory_bytes(), (1u << 16) * sizeof(std::uint32_t));
  for (std::uint32_t i = 0; i < 256; ++i) {
    EXPECT_EQ(index.lookup(net::Ipv4Address((i << 24) | 0x00ffffffu)), i);
  }
}

// ---- incremental update ---------------------------------------------

// The update() contract: lookups afterwards are bit-identical to a fresh
// index built from the post-change entry table.
void expect_matches_fresh_rebuild(const LpmIndex& patched) {
  const std::vector<LpmIndex::Entry> table(patched.entries().begin(),
                                           patched.entries().end());
  const LpmIndex fresh(table);
  EXPECT_EQ(patched.prefix_count(), fresh.prefix_count());
  // Every stored boundary +/- 1, plus a deterministic spread.
  std::vector<std::uint32_t> probes{0x00000000u, 0xffffffffu};
  for (const auto& entry : table) {
    const std::uint32_t first = entry.prefix.network().value();
    const std::uint32_t last = entry.prefix.last().value();
    probes.insert(probes.end(), {first, last, first - 1, last + 1,
                                 first + (last - first) / 2});
  }
  for (std::uint32_t i = 0; i < 4096; ++i) {
    probes.push_back(i * 0x00fedc01u);
  }
  for (const std::uint32_t probe : probes) {
    const net::Ipv4Address address(probe);
    ASSERT_EQ(patched.lookup(address), fresh.lookup(address))
        << address.to_string();
  }
}

TEST(LpmIndexUpdateTest, InsertEraseAndRevalue) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("10.0.0.0/8"), 1},
      {pfx("10.64.0.0/10"), 2},
      {pfx("172.16.0.0/12"), 3},
  };
  LpmIndex index(table);
  const std::vector<LpmIndex::Entry> upserts{
      {pfx("10.64.0.0/10"), 7},    // value change
      {pfx("192.0.2.0/24"), 8},    // new prefix
      {pfx("10.64.99.0/24"), 9},   // new nested prefix
  };
  const std::vector<net::Prefix> erases{pfx("172.16.0.0/12")};
  const auto stats = index.update(upserts, erases);
  EXPECT_EQ(stats.upserts, 3u);
  EXPECT_EQ(stats.erases, 1u);
  EXPECT_EQ(index.prefix_count(), 4u);
  EXPECT_EQ(index.lookup(addr("10.64.1.1")), 7u);
  EXPECT_EQ(index.lookup(addr("10.64.99.1")), 9u);
  EXPECT_EQ(index.lookup(addr("192.0.2.5")), 8u);
  EXPECT_EQ(index.lookup(addr("172.16.0.1")), LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(addr("10.1.2.3")), 1u);
  expect_matches_fresh_rebuild(index);
}

TEST(LpmIndexUpdateTest, UpdateOnEmptyIndexRebuildsFromScratch) {
  LpmIndex index;
  const std::vector<LpmIndex::Entry> upserts{{pfx("198.51.100.0/24"), 4}};
  const auto stats = index.update(upserts, {});
  EXPECT_TRUE(stats.rebuilt);
  EXPECT_EQ(index.lookup(addr("198.51.100.77")), 4u);
  expect_matches_fresh_rebuild(index);
}

TEST(LpmIndexUpdateTest, ShortPrefixDirtiesManyBlocksButStaysCorrect) {
  std::vector<LpmIndex::Entry> table;
  for (std::uint32_t i = 0; i < 64; ++i) {
    table.push_back({net::Prefix(net::Ipv4Address(i << 24 | 0x040000u), 16),
                     i + 1});
  }
  LpmIndex index(table);
  // A /9 covers 128 root blocks; the patch must leaf-push it under the
  // existing /16s without disturbing them.
  const std::vector<LpmIndex::Entry> upserts{{pfx("7.128.0.0/9"), 500}};
  index.update(upserts, {});
  EXPECT_EQ(index.lookup(addr("7.129.0.1")), 500u);
  EXPECT_EQ(index.lookup(addr("7.4.0.1")), 8u);  // untouched /16
  expect_matches_fresh_rebuild(index);
}

TEST(LpmIndexUpdateTest, ValidationFailuresLeaveIndexUntouched) {
  const std::vector<LpmIndex::Entry> table{{pfx("10.0.0.0/8"), 1}};
  LpmIndex index(table);
  const std::vector<LpmIndex::Entry> bad_value{
      {pfx("10.0.0.0/8"), LpmIndex::kNoMatch}};
  EXPECT_THROW(index.update(bad_value, {}), Error);
  const std::vector<net::Prefix> missing{pfx("192.0.2.0/24")};
  EXPECT_THROW(index.update({}, missing), Error);
  const std::vector<LpmIndex::Entry> upsert{{pfx("10.0.0.0/8"), 2}};
  const std::vector<net::Prefix> same{pfx("10.0.0.0/8")};
  EXPECT_THROW(index.update(upsert, same), Error);
  // All three rejections must have left the index bit-identical.
  EXPECT_EQ(index.prefix_count(), 1u);
  EXPECT_EQ(index.lookup(addr("10.1.1.1")), 1u);
}

TEST(LpmIndexUpdateTest, DuplicateUpsertsKeepLastDuplicateErasesCoalesce) {
  const std::vector<LpmIndex::Entry> table{{pfx("10.0.0.0/8"), 1},
                                           {pfx("172.16.0.0/12"), 2}};
  LpmIndex index(table);
  const std::vector<LpmIndex::Entry> upserts{{pfx("192.0.2.0/24"), 3},
                                             {pfx("192.0.2.0/24"), 4}};
  const std::vector<net::Prefix> erases{pfx("172.16.0.0/12"),
                                        pfx("172.16.0.0/12")};
  index.update(upserts, erases);
  EXPECT_EQ(index.lookup(addr("192.0.2.1")), 4u);
  EXPECT_EQ(index.lookup(addr("172.16.0.1")), LpmIndex::kNoMatch);
  expect_matches_fresh_rebuild(index);
}

TEST(LpmIndexUpdateTest, MassiveChurnFallsBackToFullRebuild) {
  std::vector<LpmIndex::Entry> table;
  for (std::uint32_t i = 0; i < 512; ++i) {
    table.push_back({net::Prefix(net::Ipv4Address(i << 23), 9), i});
  }
  LpmIndex index(table);
  // Re-value every prefix: far past the 1/8 churn threshold.
  std::vector<LpmIndex::Entry> upserts;
  for (std::uint32_t i = 0; i < 512; ++i) {
    upserts.push_back({net::Prefix(net::Ipv4Address(i << 23), 9), i + 1000});
  }
  const auto stats = index.update(upserts, {});
  EXPECT_TRUE(stats.rebuilt);
  EXPECT_EQ(index.lookup(addr("0.0.0.1")), 1000u);
  expect_matches_fresh_rebuild(index);
}

TEST(LpmIndexUpdateTest, RepeatedPatchesCompactInsteadOfGrowingForever) {
  util::Rng rng(2024);
  std::vector<LpmIndex::Entry> table;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const auto network = static_cast<std::uint32_t>(rng.bounded(1ull << 32));
    table.push_back({net::Prefix(net::Ipv4Address(network), 24),
                     (network >> 8) & 0xffffu});
  }
  LpmIndex index(table);
  const std::size_t baseline = index.node_count() + index.leaf_count();
  bool compacted = false;
  for (int round = 0; round < 400; ++round) {
    // Re-value a handful of random entries each round; every patch
    // abandons subtrees, so without compaction the arrays would only grow.
    std::vector<LpmIndex::Entry> upserts;
    for (int k = 0; k < 32; ++k) {
      const auto& entry = index.entries()[static_cast<std::size_t>(
          rng.bounded(index.entries().size()))];
      upserts.push_back(
          {entry.prefix, (entry.value + 1 + static_cast<std::uint32_t>(k)) %
                             0x10000u});
    }
    const auto stats = index.update(upserts, {});
    compacted = compacted || stats.compacted || stats.rebuilt;
  }
  EXPECT_TRUE(compacted);
  // Bounded garbage: within the documented 2x-of-last-rebuild envelope
  // (plus the small constant slack), not 400 rounds of accretion.
  EXPECT_LE(index.node_count() + index.leaf_count(), baseline * 3 + 6000);
  expect_matches_fresh_rebuild(index);
}

TEST(LpmIndexUpdateTest, RandomizedChurnMatchesFreshRebuild) {
  for (const std::uint64_t seed : {7ull, 77ull, 777ull}) {
    util::Rng rng(seed);
    std::vector<LpmIndex::Entry> table;
    for (int i = 0; i < 3000; ++i) {
      const auto network =
          static_cast<std::uint32_t>(rng.bounded(1ull << 32));
      const int length = 8 + static_cast<int>(rng.bounded(25));
      table.push_back({net::Prefix(net::Ipv4Address(network), length),
                       static_cast<std::uint32_t>(rng.bounded(100000))});
    }
    LpmIndex index(table);
    for (int step = 0; step < 8; ++step) {
      std::vector<LpmIndex::Entry> upserts;
      std::vector<net::Prefix> erases;
      for (int k = 0; k < 40; ++k) {
        const auto roll = rng.bounded(3);
        if (roll == 0 && !index.entries().empty()) {
          erases.push_back(
              index.entries()[static_cast<std::size_t>(
                                  rng.bounded(index.entries().size()))]
                  .prefix);
        } else if (roll == 1 && !index.entries().empty()) {
          const auto& entry = index.entries()[static_cast<std::size_t>(
              rng.bounded(index.entries().size()))];
          upserts.push_back(
              {entry.prefix, static_cast<std::uint32_t>(rng.bounded(100000))});
        } else {
          const auto network =
              static_cast<std::uint32_t>(rng.bounded(1ull << 32));
          upserts.push_back(
              {net::Prefix(net::Ipv4Address(network),
                           8 + static_cast<int>(rng.bounded(25))),
               static_cast<std::uint32_t>(rng.bounded(100000))});
        }
      }
      // A prefix drawn for both sides would (correctly) throw; resolve the
      // collision the way a partition does — keep the upsert.
      std::erase_if(erases, [&](net::Prefix p) {
        return std::any_of(upserts.begin(), upserts.end(),
                           [&](const LpmIndex::Entry& e) {
                             return e.prefix == p;
                           });
      });
      std::sort(erases.begin(), erases.end());
      erases.erase(std::unique(erases.begin(), erases.end()), erases.end());
      index.update(upserts, erases);
      expect_matches_fresh_rebuild(index);
    }
  }
}

}  // namespace
}  // namespace tass::trie
