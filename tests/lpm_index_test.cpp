#include "trie/lpm_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace tass::trie {
namespace {

net::Ipv4Address addr(std::string_view text) {
  return net::Ipv4Address::parse_or_throw(text);
}

net::Prefix pfx(std::string_view text) {
  return net::Prefix::parse_or_throw(text);
}

TEST(LpmIndexTest, EmptyIndexMatchesNothing) {
  const LpmIndex index;
  EXPECT_EQ(index.lookup(addr("0.0.0.0")), LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(addr("255.255.255.255")), LpmIndex::kNoMatch);
  EXPECT_FALSE(index.covers(addr("10.0.0.1")));
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.prefix_count(), 0u);
}

TEST(LpmIndexTest, EmptyTableMatchesNothing) {
  const LpmIndex index{std::span<const LpmIndex::Entry>{}};
  EXPECT_EQ(index.lookup(addr("192.0.2.1")), LpmIndex::kNoMatch);
  EXPECT_TRUE(index.empty());
}

TEST(LpmIndexTest, DefaultRouteCoversEverything) {
  const std::vector<LpmIndex::Entry> table{{pfx("0.0.0.0/0"), 7}};
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("0.0.0.0")), 7u);
  EXPECT_EQ(index.lookup(addr("255.255.255.255")), 7u);
  EXPECT_EQ(index.lookup(addr("128.66.7.9")), 7u);
  EXPECT_EQ(index.prefix_count(), 1u);
}

TEST(LpmIndexTest, LongestMatchWinsAcrossNesting) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("0.0.0.0/0"), 0},     {pfx("10.0.0.0/8"), 1},
      {pfx("10.64.0.0/10"), 2},  {pfx("10.64.0.0/24"), 3},
      {pfx("10.64.0.128/25"), 4}, {pfx("10.64.0.129/32"), 5},
  };
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("192.0.2.1")), 0u);
  EXPECT_EQ(index.lookup(addr("10.255.0.1")), 1u);
  EXPECT_EQ(index.lookup(addr("10.64.1.0")), 2u);
  EXPECT_EQ(index.lookup(addr("10.64.0.5")), 3u);
  EXPECT_EQ(index.lookup(addr("10.64.0.128")), 4u);
  EXPECT_EQ(index.lookup(addr("10.64.0.129")), 5u);
  EXPECT_EQ(index.lookup(addr("10.64.0.130")), 4u);
}

TEST(LpmIndexTest, BoundariesOfAPrefixAreExact) {
  const std::vector<LpmIndex::Entry> table{{pfx("198.51.100.0/24"), 42}};
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("198.51.99.255")), LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(addr("198.51.100.0")), 42u);
  EXPECT_EQ(index.lookup(addr("198.51.100.255")), 42u);
  EXPECT_EQ(index.lookup(addr("198.51.101.0")), LpmIndex::kNoMatch);
}

TEST(LpmIndexTest, AdjacentSlash32s) {
  std::vector<LpmIndex::Entry> table;
  for (std::uint32_t i = 0; i < 8; ++i) {
    table.push_back(
        {net::Prefix(net::Ipv4Address(0xc6336400u + i), 32), 100 + i});
  }
  const LpmIndex index(table);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(index.lookup(net::Ipv4Address(0xc6336400u + i)), 100 + i);
  }
  EXPECT_EQ(index.lookup(net::Ipv4Address(0xc6336400u - 1)),
            LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(net::Ipv4Address(0xc6336400u + 8)),
            LpmIndex::kNoMatch);
}

TEST(LpmIndexTest, DuplicatePrefixLastValueWins) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("203.0.113.0/24"), 1},
      {pfx("203.0.113.0/24"), 9},
  };
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("203.0.113.7")), 9u);
  EXPECT_EQ(index.prefix_count(), 1u);  // distinct prefixes
}

TEST(LpmIndexTest, ExtremeAddressesWithEdgePrefixes) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("0.0.0.0/32"), 1},
      {pfx("255.255.255.255/32"), 2},
      {pfx("255.255.255.254/31"), 3},
  };
  const LpmIndex index(table);
  EXPECT_EQ(index.lookup(addr("0.0.0.0")), 1u);
  EXPECT_EQ(index.lookup(addr("0.0.0.1")), LpmIndex::kNoMatch);
  EXPECT_EQ(index.lookup(addr("255.255.255.255")), 2u);
  EXPECT_EQ(index.lookup(addr("255.255.255.254")), 3u);
  EXPECT_EQ(index.lookup(addr("255.255.255.253")), LpmIndex::kNoMatch);
}

TEST(LpmIndexTest, ValueOutOfRangeThrows) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("10.0.0.0/8"), LpmIndex::kNoMatch}};
  EXPECT_THROW(LpmIndex{table}, Error);
}

TEST(LpmIndexTest, LookupManyMatchesScalarLookup) {
  const std::vector<LpmIndex::Entry> table{
      {pfx("10.0.0.0/8"), 1},
      {pfx("10.2.0.0/15"), 2},
      {pfx("172.16.0.0/12"), 3},
  };
  const LpmIndex index(table);
  std::vector<std::uint32_t> addresses;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    addresses.push_back(0x09000000u + i * 0x00020301u);  // spread widely
  }
  const auto batched = index.lookup_many(addresses);
  ASSERT_EQ(batched.size(), addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    EXPECT_EQ(batched[i], index.lookup(net::Ipv4Address(addresses[i])));
  }
}

TEST(LpmIndexTest, FromPrefixesBuildsMembershipIndex) {
  const std::vector<net::Prefix> prefixes{pfx("192.0.2.0/24"),
                                          pfx("198.18.0.0/15")};
  const LpmIndex index = LpmIndex::from_prefixes(prefixes);
  EXPECT_TRUE(index.covers(addr("192.0.2.200")));
  EXPECT_TRUE(index.covers(addr("198.19.255.255")));
  EXPECT_FALSE(index.covers(addr("192.0.3.0")));
  EXPECT_EQ(index.lookup(addr("192.0.2.200")), 0u);
}

TEST(LpmIndexTest, StatsAreConsistent) {
  std::vector<LpmIndex::Entry> table;
  for (std::uint32_t i = 0; i < 256; ++i) {
    table.push_back({net::Prefix(net::Ipv4Address(i << 24), 8), i});
  }
  const LpmIndex index(table);
  EXPECT_EQ(index.prefix_count(), 256u);
  // /8s resolve entirely inside the 16-bit root: no deep nodes needed.
  EXPECT_EQ(index.node_count(), 0u);
  EXPECT_GE(index.memory_bytes(), (1u << 16) * sizeof(std::uint32_t));
  for (std::uint32_t i = 0; i < 256; ++i) {
    EXPECT_EQ(index.lookup(net::Ipv4Address((i << 24) | 0x00ffffffu)), i);
  }
}

}  // namespace
}  // namespace tass::trie
