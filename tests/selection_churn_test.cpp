// Tests for core::selection_churn: selection stability across reseeds.
#include <gtest/gtest.h>

#include "census/series.hpp"
#include "core/selection.hpp"

namespace tass::core {
namespace {

Selection selection_of(std::initializer_list<const char*> prefixes) {
  Selection selection;
  for (const char* text : prefixes) {
    selection.prefixes.push_back(net::Prefix::parse_or_throw(text));
  }
  return selection;
}

TEST(SelectionChurn, CountsKeptAddedRemoved) {
  const Selection older =
      selection_of({"10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"});
  const Selection newer =
      selection_of({"20.0.0.0/8", "30.0.0.0/8", "40.0.0.0/8",
                    "50.0.0.0/8"});
  const SelectionChurn churn = selection_churn(older, newer);
  EXPECT_EQ(churn.kept, 2u);
  EXPECT_EQ(churn.removed, 1u);
  EXPECT_EQ(churn.added, 2u);
  EXPECT_DOUBLE_EQ(churn.jaccard(), 2.0 / 5.0);
}

TEST(SelectionChurn, IdenticalAndEmptySelections) {
  const Selection a = selection_of({"10.0.0.0/8", "20.0.0.0/8"});
  EXPECT_DOUBLE_EQ(selection_churn(a, a).jaccard(), 1.0);
  const Selection empty;
  EXPECT_DOUBLE_EQ(selection_churn(empty, empty).jaccard(), 1.0);
  const SelectionChurn churn = selection_churn(empty, a);
  EXPECT_EQ(churn.added, 2u);
  EXPECT_DOUBLE_EQ(churn.jaccard(), 0.0);
}

TEST(SelectionChurn, OrderInsensitive) {
  const Selection a = selection_of({"20.0.0.0/8", "10.0.0.0/8"});
  const Selection b = selection_of({"10.0.0.0/8", "20.0.0.0/8"});
  EXPECT_DOUBLE_EQ(selection_churn(a, b).jaccard(), 1.0);
}

TEST(SelectionChurn, ReseededSelectionsAreHighlyStable) {
  // The paper's premise: the host-over-prefix distribution is stable, so
  // month-6 reseeding should reproduce most of the month-0 selection.
  census::TopologyParams topo_params;
  topo_params.seed = 77;
  topo_params.l_prefix_count = 800;
  const auto topo = census::generate_topology(topo_params);
  census::SeriesParams params;
  params.months = 7;
  params.host_scale = 0.004;
  params.seed = 5;
  const auto series =
      census::CensusSeries::generate(topo, census::Protocol::kHttp, params);

  SelectionParams sel;
  sel.phi = 0.95;
  const auto rank0 = rank_by_density(series.month(0), PrefixMode::kMore);
  const auto rank6 = rank_by_density(series.month(6), PrefixMode::kMore);
  const auto sel0 = select_by_density(rank0, sel);
  const auto sel6 = select_by_density(rank6, sel);

  // Most churn happens at the phi threshold where near-tie prefixes flip
  // in and out; the bulk of the selection is stable.
  const SelectionChurn churn = selection_churn(sel0, sel6);
  EXPECT_GT(churn.jaccard(), 0.75);
  EXPECT_LT(churn.added, sel6.k() / 4);
  EXPECT_LT(churn.removed, sel0.k() / 4);
}

}  // namespace
}  // namespace tass::core
