// Tests for census/quality: the section-4.2 accumulation injector and
// detector.
#include "census/quality.hpp"

#include <gtest/gtest.h>

#include "census/series.hpp"

namespace tass::census {
namespace {

CensusSeries make_series(Protocol protocol, int months) {
  TopologyParams topo_params;
  topo_params.seed = 91;
  topo_params.l_prefix_count = 300;
  const auto topo = generate_topology(topo_params);
  SeriesParams params;
  params.months = months;
  params.host_scale = 0.002;
  params.seed = 23;
  return CensusSeries::generate(topo, protocol, params);
}

TEST(Quality, HonestSeriesIsNotFlagged) {
  for (const Protocol protocol : {Protocol::kHttp, Protocol::kCwmp}) {
    const auto series = make_series(protocol, 5);
    const auto report = detect_accumulation(series.months());
    EXPECT_FALSE(report.accumulation_suspected)
        << protocol_name(protocol);
    // Dynamic addressing keeps in-place retention clearly below 1.
    EXPECT_LT(report.mean_retention, 0.90) << protocol_name(protocol);
    ASSERT_EQ(report.retention.size(), 4u);
    ASSERT_EQ(report.growth.size(), 4u);
    // Stationary population: growth hovers around 1.
    for (const double growth : report.growth) {
      EXPECT_NEAR(growth, 1.0, 0.05);
    }
  }
}

TEST(Quality, InjectedAccumulationIsMonotoneAndDetected) {
  const auto series = make_series(Protocol::kSsh, 5);
  const auto contaminated = contaminate_series(series.months());
  ASSERT_EQ(contaminated.size(), 5u);

  // Responsive sets only grow: every month contains the previous one.
  for (std::size_t t = 0; t + 1 < contaminated.size(); ++t) {
    const auto current = contaminated[t].addresses();
    const auto next = contaminated[t + 1].addresses();
    EXPECT_GE(next.size(), current.size());
    EXPECT_TRUE(std::includes(next.begin(), next.end(), current.begin(),
                              current.end()))
        << "month " << t;
  }

  const auto report = detect_accumulation(contaminated);
  EXPECT_TRUE(report.accumulation_suspected);
  EXPECT_GT(report.mean_retention, 0.99);
  EXPECT_GE(report.mean_growth, 1.0);
}

TEST(Quality, AccumulationInflatesHitlistAccuracyLikeThePaperSaw) {
  // "accuracy and densities increased over time" — the symptom that made
  // the authors distrust the SSH/SCADA snapshots.
  const auto series = make_series(Protocol::kSsh, 5);
  const auto contaminated = contaminate_series(series.months());

  const auto honest_seed = series.month(0).addresses();
  // Month-4 honest retention of the seed addresses:
  const auto honest_4 = series.month(4).addresses();
  std::vector<std::uint32_t> kept_honest;
  std::set_intersection(honest_seed.begin(), honest_seed.end(),
                        honest_4.begin(), honest_4.end(),
                        std::back_inserter(kept_honest));
  // Contaminated month 4 still "responds" at every seed address.
  const auto fake_4 = contaminated[4].addresses();
  std::vector<std::uint32_t> kept_fake;
  std::set_intersection(honest_seed.begin(), honest_seed.end(),
                        fake_4.begin(), fake_4.end(),
                        std::back_inserter(kept_fake));
  EXPECT_EQ(kept_fake.size(), honest_seed.size());
  EXPECT_LT(kept_honest.size(), honest_seed.size());
}

TEST(Quality, InjectorPreservesInvariants) {
  const auto series = make_series(Protocol::kTelnet, 3);
  const Snapshot merged =
      inject_accumulation(series.month(0), series.month(1));
  EXPECT_EQ(merged.month_index(), 1);
  EXPECT_GE(merged.total_hosts(), series.month(1).total_hosts());
  // Union semantics: everything from both months responds.
  std::size_t checked = 0;
  series.month(0).for_each_address([&](net::Ipv4Address addr) {
    if (checked++ % 97 == 0) {  // sample to keep the test fast
      EXPECT_TRUE(merged.contains(addr));
    }
  });
}

TEST(Quality, DetectorNeedsTwoMonths) {
  const auto series = make_series(Protocol::kHttp, 2);
  EXPECT_NO_THROW(detect_accumulation(series.months()));
  const std::vector<Snapshot> single = {series.month(0)};
  EXPECT_DEATH(detect_accumulation(single), "Precondition");
}

}  // namespace
}  // namespace tass::census
