// Generation-swap stress: N client threads hammer batched queries while
// a writer loops load -> swap -> retire between two topologies. The
// invariant under test is the serving contract: every response is
// internally consistent with exactly one generation — its header names
// a known fingerprint, and its payload bit-matches a direct library
// call against the image with that fingerprint. Run under TSan in CI
// (tsan job) to prove the RCU reader/writer edges are race-free.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bgp/partition.hpp"
#include "core/ranking.hpp"
#include "net/family.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "state/image.hpp"

namespace tass::serve {
namespace {

std::string temp_path(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + stem + "." +
         std::to_string(static_cast<long>(::getpid())) + ".tsim";
}

// Two deliberately different topologies (cell count and host counts) so
// the fingerprints differ and locate/tally answers are generation-
// dependent — a response mixing generations cannot pass the bit check.
std::string make_image(const std::string& stem, std::size_t cells,
                       std::uint64_t seed) {
  std::vector<net::Prefix> prefixes;
  for (std::size_t i = 0; i < cells; ++i) {
    prefixes.emplace_back(
        net::Ipv4Address((10u << 24) | (static_cast<std::uint32_t>(i) << 16)),
        16);
  }
  bgp::PrefixPartition partition(std::move(prefixes));
  std::vector<std::uint32_t> counts(partition.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>((i * 131 + seed * 7) % 997);
  }
  const std::string path = temp_path(stem);
  state::save_image(
      path, partition,
      core::rank_by_density(counts, partition, core::PrefixMode::kMore));
  return path;
}

TEST(ServeSwapStress, EveryResponseBindsToExactlyOneGeneration) {
  const std::string path_a = make_image("serve_swap_a", 24, 1);
  const std::string path_b = make_image("serve_swap_b", 40, 2);
  const state::StateImage image_a = state::StateImage::load(path_a);
  const state::StateImage image_b = state::StateImage::load(path_b);
  const std::uint64_t fp_a = image_a.info().fingerprint;
  const std::uint64_t fp_b = image_b.info().fingerprint;
  ASSERT_NE(fp_a, fp_b);

  ServerOptions options;
  options.v4_image_path = path_a;
  options.threads = 3;
  Server server(std::move(options));
  std::thread serving([&server] { server.run(); });

  constexpr int kReaders = 4;
  constexpr int kSwaps = 8;
  constexpr std::size_t kBatch = 192;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> swapped_mid_run{0};
  std::atomic<int> failures{0};

  const auto expected_for = [&](std::uint64_t fingerprint)
      -> const state::StateImage* {
    if (fingerprint == fp_a) return &image_a;
    if (fingerprint == fp_b) return &image_b;
    return nullptr;
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader] {
      Client client("127.0.0.1", server.port());
      std::uint64_t first_fp = 0;
      for (std::uint64_t iteration = 0;
           !done.load(std::memory_order_acquire); ++iteration) {
        // Addresses vary per reader and iteration; about half fall in
        // cells only the larger topology has, so the two generations
        // disagree on them.
        std::vector<std::uint32_t> addresses;
        addresses.reserve(kBatch);
        for (std::size_t i = 0; i < kBatch; ++i) {
          const std::uint32_t mix = static_cast<std::uint32_t>(
              (iteration * kBatch + i) * 2654435761u + reader * 97u);
          addresses.push_back((10u << 24) | ((mix % 44) << 16) |
                              (mix & 0xFFFF));
        }

        const auto [locate_header, cells] = client.locate(addresses);
        const state::StateImage* locate_image =
            expected_for(locate_header.fingerprint);
        if (locate_image == nullptr) {
          ADD_FAILURE() << "locate response carries unknown fingerprint "
                        << locate_header.fingerprint;
          failures.fetch_add(1);
          break;
        }
        std::vector<std::uint32_t> direct(addresses.size());
        locate_image->partition().locate_many(addresses, direct);
        if (cells != direct) {
          ADD_FAILURE() << "locate payload does not match generation "
                        << locate_header.generation;
          failures.fetch_add(1);
          break;
        }

        const auto [tally_header, tally] = client.tally(addresses);
        const state::StateImage* tally_image =
            expected_for(tally_header.fingerprint);
        if (tally_image == nullptr) {
          ADD_FAILURE() << "tally response carries unknown fingerprint "
                        << tally_header.fingerprint;
          failures.fetch_add(1);
          break;
        }
        std::vector<std::uint32_t> counts(tally_image->partition().size());
        std::uint64_t attributed = 0;
        std::uint64_t unattributed = 0;
        tally_image->partition().tally_cells(std::span(addresses), counts,
                                             attributed, unattributed);
        bool tally_ok = tally.attributed == attributed &&
                        tally.unattributed == unattributed;
        if (tally_ok) {
          std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
          for (std::uint32_t c = 0; c < counts.size(); ++c) {
            if (counts[c] != 0) pairs.emplace_back(c, counts[c]);
          }
          tally_ok = tally.cells == pairs;
        }
        if (!tally_ok) {
          ADD_FAILURE() << "tally payload does not match generation "
                        << tally_header.generation;
          failures.fetch_add(1);
          break;
        }

        if (first_fp == 0) first_fp = locate_header.fingerprint;
        if (locate_header.fingerprint != first_fp ||
            tally_header.fingerprint != locate_header.fingerprint) {
          swapped_mid_run.fetch_add(1, std::memory_order_relaxed);
        }
        responses.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  // Writer: alternate A <-> B, waiting for each swap to land before
  // requesting the next so the retire/drain path runs every time.
  std::thread writer([&] {
    Client control("127.0.0.1", server.port());
    for (int swap = 0; swap < kSwaps; ++swap) {
      const std::string& next = (swap % 2 == 0) ? path_b : path_a;
      control.reload(net::AddressFamily::kIpv4, next);
      const std::uint64_t want = static_cast<std::uint64_t>(swap) + 1;
      while (control.stats().second.swaps < want) {
        std::this_thread::yield();
      }
      // Pace against reader progress: let a few batches land on the
      // freshly installed generation before the next swap, so readers
      // actually observe both topologies (bounded in case readers bail).
      const std::uint64_t before = responses.load(std::memory_order_relaxed);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (responses.load(std::memory_order_relaxed) <
                 before + 2 * kReaders &&
             failures.load() == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }
    done.store(true, std::memory_order_release);
  });

  writer.join();
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(responses.load(), 0u);
  // With kSwaps completed swaps mid-stream, at least one reader must
  // have observed both topologies.
  EXPECT_GT(swapped_mid_run.load(), 0u);

  Client control("127.0.0.1", server.port());
  const auto stats = control.stats().second;
  EXPECT_GE(stats.swaps, static_cast<std::uint64_t>(kSwaps));
  EXPECT_GE(stats.generations_retired, static_cast<std::uint64_t>(kSwaps));

  server.stop();
  serving.join();
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace tass::serve
