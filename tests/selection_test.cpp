// Tests for core/selection: the paper's step-4 stopping rule and its
// refinements, including a parameterized phi-monotonicity sweep.
#include "core/selection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "census/population.hpp"
#include "census/topology.hpp"

namespace tass::core {
namespace {

DensityRanking synthetic_ranking() {
  // Hand-built ranking: three prefixes with hosts 50 / 30 / 20 and sizes
  // 256 / 1024 / 65536 (already density-descending).
  DensityRanking ranking;
  ranking.mode = PrefixMode::kMore;
  ranking.total_hosts = 100;
  ranking.advertised_addresses = 1 << 20;
  const struct {
    const char* prefix;
    std::uint64_t hosts;
  } entries[] = {
      {"10.0.0.0/24", 50}, {"10.1.0.0/22", 30}, {"10.16.0.0/16", 20}};
  std::uint32_t index = 0;
  for (const auto& [text, hosts] : entries) {
    RankedPrefix entry;
    entry.index = index++;
    entry.prefix = net::Prefix::parse_or_throw(text);
    entry.size = entry.prefix.size();
    entry.hosts = hosts;
    entry.density = static_cast<double>(hosts) /
                    static_cast<double>(entry.size);
    entry.host_share = static_cast<double>(hosts) / 100.0;
    ranking.ranked.push_back(entry);
  }
  return ranking;
}

TEST(Selection, PhiOneSelectsAllResponsivePrefixes) {
  const auto ranking = synthetic_ranking();
  SelectionParams params;
  params.phi = 1.0;
  const auto selection = select_by_density(ranking, params);
  EXPECT_EQ(selection.k(), 3u);
  EXPECT_EQ(selection.covered_hosts, 100u);
  EXPECT_DOUBLE_EQ(selection.host_coverage(), 1.0);
  EXPECT_EQ(selection.selected_addresses, 256u + 1024u + 65536u);
}

TEST(Selection, SmallestKExceedingPhi) {
  const auto ranking = synthetic_ranking();
  SelectionParams params;
  params.phi = 0.5;  // first prefix alone covers exactly 50%
  const auto selection = select_by_density(ranking, params);
  EXPECT_EQ(selection.k(), 1u);
  EXPECT_EQ(selection.covered_hosts, 50u);

  params.phi = 0.51;  // needs the second prefix
  const auto more = select_by_density(ranking, params);
  EXPECT_EQ(more.k(), 2u);
  EXPECT_EQ(more.covered_hosts, 80u);

  params.phi = 0.81;
  EXPECT_EQ(select_by_density(ranking, params).k(), 3u);
}

TEST(Selection, SpaceCoverageAccounting) {
  const auto ranking = synthetic_ranking();
  SelectionParams params;
  params.phi = 0.5;
  const auto selection = select_by_density(ranking, params);
  EXPECT_DOUBLE_EQ(selection.space_coverage(), 256.0 / (1 << 20));
  EXPECT_EQ(selection.prefixes.size(), selection.indices.size());
  EXPECT_EQ(selection.prefixes[0].to_string(), "10.0.0.0/24");
}

TEST(Selection, MinDensityCutsTheTail) {
  const auto ranking = synthetic_ranking();
  SelectionParams params;
  params.phi = 1.0;
  params.min_density = 0.01;  // excludes the /16 (20 / 65536 ~ 0.0003)
  const auto selection = select_by_density(ranking, params);
  EXPECT_EQ(selection.k(), 2u);
  EXPECT_EQ(selection.covered_hosts, 80u);
}

TEST(Selection, MaxAddressBudgetStopsEarly) {
  const auto ranking = synthetic_ranking();
  SelectionParams params;
  params.phi = 1.0;
  params.max_addresses = 2000;  // room for /24 + /22 but not the /16
  const auto selection = select_by_density(ranking, params);
  EXPECT_EQ(selection.k(), 2u);
  EXPECT_LE(selection.selected_addresses, 2000u);
}

TEST(Selection, RejectsInvalidPhi) {
  const auto ranking = synthetic_ranking();
  SelectionParams params;
  params.phi = 0.0;
  EXPECT_DEATH(select_by_density(ranking, params), "Precondition");
}

TEST(Selection, EmptyRankingYieldsEmptySelection) {
  DensityRanking ranking;
  ranking.advertised_addresses = 1000;
  SelectionParams params;
  params.phi = 0.9;
  const auto selection = select_by_density(ranking, params);
  EXPECT_EQ(selection.k(), 0u);
  EXPECT_DOUBLE_EQ(selection.host_coverage(), 0.0);
}

TEST(SelectionOrder, DensityIsNeverWorseThanAlternatives) {
  // On a realistic synthetic census, the paper's density order must cost
  // no more address space than host-count, size or random order at the
  // same coverage target.
  census::TopologyParams topo_params;
  topo_params.seed = 13;
  topo_params.l_prefix_count = 500;
  const auto topo = census::generate_topology(topo_params);
  census::PopulationParams pop;
  pop.host_scale = 0.002;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(census::Protocol::kHttp), pop);
  const auto ranking = rank_by_density(snapshot, PrefixMode::kMore);

  for (const double phi : {0.5, 0.7, 0.95}) {
    SelectionParams params;
    params.phi = phi;
    const auto density = select_by_density(ranking, params);
    for (const RankingOrder order :
         {RankingOrder::kHostCount, RankingOrder::kRandom,
          RankingOrder::kSpaceAscending}) {
      const auto other = select_with_order(ranking, params, order, 3);
      EXPECT_LE(density.selected_addresses, other.selected_addresses)
          << "phi=" << phi;
      EXPECT_GE(other.host_coverage(), phi - 1e-9);
    }
  }
}

TEST(SelectionOrder, RandomOrderIsSeedDeterministic) {
  const auto ranking = synthetic_ranking();
  SelectionParams params;
  params.phi = 0.6;
  const auto a = select_with_order(ranking, params, RankingOrder::kRandom, 7);
  const auto b = select_with_order(ranking, params, RankingOrder::kRandom, 7);
  EXPECT_EQ(a.indices, b.indices);
}

// Parameterized monotonicity sweep on a generated census: k, space and
// host coverage must all be nondecreasing in phi.
class PhiMonotonicity : public ::testing::TestWithParam<PrefixMode> {};

TEST_P(PhiMonotonicity, SelectionGrowsWithPhi) {
  census::TopologyParams topo_params;
  topo_params.seed = 29;
  topo_params.l_prefix_count = 500;
  const auto topo = census::generate_topology(topo_params);
  census::PopulationParams pop;
  pop.host_scale = 0.002;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(census::Protocol::kFtp), pop);
  const auto ranking = rank_by_density(snapshot, GetParam());

  std::uint64_t previous_addresses = 0;
  std::size_t previous_k = 0;
  double previous_coverage = 0.0;
  for (const double phi : {0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99, 1.0}) {
    SelectionParams params;
    params.phi = phi;
    const auto selection = select_by_density(ranking, params);
    EXPECT_GE(selection.host_coverage(), phi - 1e-9);
    EXPECT_GE(selection.k(), previous_k);
    EXPECT_GE(selection.selected_addresses, previous_addresses);
    EXPECT_GE(selection.host_coverage(), previous_coverage);
    previous_k = selection.k();
    previous_addresses = selection.selected_addresses;
    previous_coverage = selection.host_coverage();

    // Minimality: dropping the last selected prefix must fall below phi.
    if (selection.k() > 1 && phi < 1.0) {
      const std::uint64_t without_last =
          selection.covered_hosts -
          ranking.ranked[selection.k() - 1].hosts;
      EXPECT_LT(static_cast<double>(without_last),
                std::ceil(phi * static_cast<double>(ranking.total_hosts)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, PhiMonotonicity,
                         ::testing::Values(PrefixMode::kLess,
                                           PrefixMode::kMore),
                         [](const ::testing::TestParamInfo<PrefixMode>& param_info) {
                           return std::string(
                               prefix_mode_name(param_info.param));
                         });

}  // namespace
}  // namespace tass::core
