// Integration tests: end-to-end paths across module boundaries —
// topology -> pfx2as/MRT interchange -> routing table -> census -> TASS
// selection -> scan engine, checking that the analytic evaluation path and
// the simulated-scan path agree exactly.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/tass.hpp"

namespace tass {
namespace {

using census::Protocol;

TEST(Integration, Pfx2AsInterchangeReproducesTheTopology) {
  census::TopologyParams params;
  params.seed = 5150;
  params.l_prefix_count = 150;
  const auto original = census::generate_topology(params);

  const auto path = std::filesystem::temp_directory_path() /
                    "tass_integration.pfx2as";
  bgp::save_pfx2as(path.string(), original->table.to_pfx2as());
  const auto records = bgp::load_pfx2as(path.string());
  std::filesystem::remove(path);

  const auto reloaded = census::topology_from_table(
      bgp::RoutingTable::from_pfx2as(records), params.seed);
  ASSERT_EQ(reloaded->table.size(), original->table.size());
  EXPECT_TRUE(std::equal(original->table.routes().begin(),
                         original->table.routes().end(),
                         reloaded->table.routes().begin()));
  EXPECT_EQ(reloaded->m_partition.size(), original->m_partition.size());
  EXPECT_EQ(reloaded->advertised_addresses,
            original->advertised_addresses);
}

TEST(Integration, MrtInterchangeReproducesTheRoutingTable) {
  census::TopologyParams params;
  params.seed = 31337;
  params.l_prefix_count = 100;
  const auto topo = census::generate_topology(params);

  // Pack the table into an MRT dump and read it back.
  bgp::MrtRibDump dump;
  dump.timestamp = 1441584000;
  dump.collector_id = net::Ipv4Address(1);
  dump.view_name = "integration";
  dump.peers.push_back({net::Ipv4Address(1), net::Ipv4Address(1), 65000});
  std::uint32_t sequence = 0;
  for (const bgp::RouteEntry& route : topo->table.routes()) {
    bgp::MrtRibRecord record;
    record.sequence = sequence++;
    record.prefix = route.prefix;
    bgp::MrtRibEntry entry;
    entry.peer_index = 0;
    entry.as_path.push_back({bgp::AsPathSegment::Kind::kAsSequence,
                             {65000, route.origins.front()}});
    record.entries.push_back(entry);
    dump.records.push_back(std::move(record));
  }
  const auto decoded = bgp::decode_mrt(bgp::encode_mrt(dump));
  const auto table = bgp::RoutingTable::from_mrt(decoded);
  ASSERT_EQ(table.size(), topo->table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.routes()[i].prefix, topo->table.routes()[i].prefix);
    EXPECT_EQ(table.routes()[i].origins.front(),
              topo->table.routes()[i].origins.front());
    EXPECT_EQ(table.routes()[i].more_specific,
              topo->table.routes()[i].more_specific);
  }
}

TEST(Integration, EngineScanOverSelectionMatchesAnalyticCounts) {
  // The longitudinal evaluator computes found-hosts analytically from
  // per-cell counts; a simulated probe-by-probe scan over the same scope
  // must find exactly the same hosts.
  census::TopologyParams topo_params;
  topo_params.seed = 7474;
  topo_params.l_prefix_count = 120;
  const auto topo = census::generate_topology(topo_params);
  census::SeriesParams series_params;
  series_params.months = 2;
  series_params.host_scale = 0.0008;
  series_params.seed = 8;
  const auto series =
      census::CensusSeries::generate(topo, Protocol::kHttp, series_params);

  core::SelectionParams params;
  params.phi = 0.9;
  const core::TassStrategy strategy(series.month(0), core::PrefixMode::kMore,
                                    params);

  const scan::ScanScope scope(strategy.selection().prefixes,
                              scan::Blocklist{});
  ASSERT_EQ(scope.address_count(), strategy.scanned_addresses());

  for (int month = 0; month < 2; ++month) {
    const census::Snapshot& truth = series.month(month);
    const scan::SnapshotOracle oracle(truth);
    scan::EngineConfig config;
    config.order = scan::EngineConfig::Order::kEnumerate;
    const scan::ScanResult result = scan::ScanEngine(config).run(scope,
                                                                 oracle);
    EXPECT_EQ(result.stats.responses, strategy.found_hosts(truth))
        << "month " << month;
    EXPECT_EQ(result.stats.probes_sent, strategy.scanned_addresses());
  }
}

TEST(Integration, PermutedScanFindsTheSameHostsAsEnumeration) {
  census::TopologyParams topo_params;
  topo_params.seed = 99;
  topo_params.l_prefix_count = 60;
  const auto topo = census::generate_topology(topo_params);
  census::PopulationParams pop;
  pop.host_scale = 0.0005;
  pop.seed = 4;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(Protocol::kSsh), pop);

  const auto ranking =
      core::rank_by_density(snapshot, core::PrefixMode::kMore);
  core::SelectionParams params;
  params.phi = 0.5;
  const auto selection = core::select_by_density(ranking, params);
  const scan::ScanScope scope(selection.prefixes, scan::Blocklist{});
  const scan::SnapshotOracle oracle(snapshot);

  scan::EngineConfig enumerate;
  enumerate.order = scan::EngineConfig::Order::kEnumerate;
  scan::EngineConfig permute;
  permute.order = scan::EngineConfig::Order::kPermutation;
  const auto a = scan::ScanEngine(enumerate).run(scope, oracle);
  const auto b = scan::ScanEngine(permute).run(scope, oracle);
  EXPECT_EQ(a.responsive, b.responsive);
  EXPECT_EQ(a.stats.probes_sent, b.stats.probes_sent);
  EXPECT_EQ(selection.covered_hosts, a.stats.responses);
}

TEST(Integration, BlocklistShrinksTheScanWithoutFalseNegativesOutside) {
  census::TopologyParams topo_params;
  topo_params.seed = 555;
  topo_params.l_prefix_count = 80;
  const auto topo = census::generate_topology(topo_params);
  census::PopulationParams pop;
  pop.host_scale = 0.0005;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(Protocol::kHttp), pop);

  // Block one occupied cell entirely; the scan must lose exactly its
  // hosts.
  const auto counts = snapshot.counts_per_cell();
  std::uint32_t blocked_cell = 0;
  while (blocked_cell < counts.size() && counts[blocked_cell] == 0) {
    ++blocked_cell;
  }
  ASSERT_LT(blocked_cell, counts.size());
  const net::Prefix blocked_prefix = topo->m_partition.prefix(blocked_cell);

  scan::Blocklist blocklist;
  blocklist.add(blocked_prefix);

  std::vector<net::Prefix> all_cells(topo->m_partition.prefixes().begin(),
                                     topo->m_partition.prefixes().end());
  const scan::ScanScope open(all_cells, scan::Blocklist{});
  const scan::ScanScope filtered(all_cells, blocklist);
  EXPECT_EQ(filtered.address_count(),
            open.address_count() - blocked_prefix.size());

  const scan::SnapshotOracle oracle(snapshot);
  scan::EngineConfig config;
  config.order = scan::EngineConfig::Order::kEnumerate;
  const auto full = scan::ScanEngine(config).run(open, oracle);
  const auto partial = scan::ScanEngine(config).run(filtered, oracle);
  EXPECT_EQ(full.stats.responses, snapshot.total_hosts());
  EXPECT_EQ(partial.stats.responses,
            snapshot.total_hosts() - counts[blocked_cell]);
}

}  // namespace
}  // namespace tass
