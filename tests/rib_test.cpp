// Tests for bgp/rib and bgp/partition: routing-table construction, l/m
// classification, the scanning partitions and address-space accounting.
#include "bgp/partition.hpp"
#include "bgp/rib.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tass::bgp {
namespace {

using net::Ipv4Address;
using net::Prefix;

Prefix pfx(const char* text) { return Prefix::parse_or_throw(text); }

std::vector<Pfx2AsRecord> sample_records() {
  return {
      {pfx("10.0.0.0/8"), {100}},
      {pfx("10.0.0.0/12"), {101}},     // m-prefix of 10/8
      {pfx("10.16.0.0/12"), {102}},    // m-prefix of 10/8
      {pfx("10.16.0.0/16"), {103}},    // nested m-prefix
      {pfx("20.0.0.0/8"), {200}},      // standalone l-prefix
      {pfx("30.0.0.0/16"), {300}},     // standalone l-prefix
  };
}

TEST(RoutingTable, ClassifiesLAndM) {
  const auto table = RoutingTable::from_pfx2as(sample_records());
  EXPECT_EQ(table.size(), 6u);

  const auto l = table.l_prefixes();
  ASSERT_EQ(l.size(), 3u);
  EXPECT_EQ(l[0], pfx("10.0.0.0/8"));
  EXPECT_EQ(l[1], pfx("20.0.0.0/8"));
  EXPECT_EQ(l[2], pfx("30.0.0.0/16"));

  const auto m = table.m_prefixes();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], pfx("10.0.0.0/12"));
  EXPECT_EQ(m[1], pfx("10.16.0.0/12"));
  EXPECT_EQ(m[2], pfx("10.16.0.0/16"));
}

TEST(RoutingTable, MergesDuplicateOrigins) {
  const std::vector<Pfx2AsRecord> records = {
      {pfx("10.0.0.0/8"), {100}},
      {pfx("10.0.0.0/8"), {200}},
      {pfx("10.0.0.0/8"), {100}},
  };
  const auto table = RoutingTable::from_pfx2as(records);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.routes()[0].origins, (std::vector<std::uint32_t>{100, 200}));
}

TEST(RoutingTable, StatsAccounting) {
  const auto stats = RoutingTable::from_pfx2as(sample_records()).stats();
  EXPECT_EQ(stats.prefix_count, 6u);
  EXPECT_EQ(stats.m_prefix_count, 3u);
  EXPECT_DOUBLE_EQ(stats.m_prefix_fraction, 0.5);
  EXPECT_EQ(stats.advertised_addresses,
            (1ULL << 24) * 2 + (1ULL << 16));      // 10/8 + 20/8 + 30.0/16
  EXPECT_EQ(stats.m_prefix_addresses, (1ULL << 20) * 2);  // two /12 unions
}

TEST(RoutingTable, LPartitionMatchesLPrefixes) {
  const auto table = RoutingTable::from_pfx2as(sample_records());
  const auto partition = table.l_partition();
  EXPECT_EQ(partition.size(), 3u);
  EXPECT_EQ(partition.address_count(), table.stats().advertised_addresses);
  EXPECT_EQ(partition.locate(Ipv4Address::parse_or_throw("10.200.0.1")), 0u);
  EXPECT_EQ(partition.locate(Ipv4Address::parse_or_throw("20.0.0.1")), 1u);
  EXPECT_FALSE(
      partition.locate(Ipv4Address::parse_or_throw("40.0.0.1")).has_value());
}

TEST(RoutingTable, MPartitionTilesAdvertisedSpace) {
  const auto table = RoutingTable::from_pfx2as(sample_records());
  const auto partition = table.m_partition();
  EXPECT_EQ(partition.address_count(), table.stats().advertised_addresses);
  // Announced m-prefixes appear as exact cells, except those refined by
  // nested announcements.
  EXPECT_TRUE(partition.index_of(pfx("10.0.0.0/12")).has_value());
  EXPECT_TRUE(partition.index_of(pfx("10.16.0.0/16")).has_value());
  EXPECT_FALSE(partition.index_of(pfx("10.16.0.0/12")).has_value());
  // Standalone l-prefix survives whole.
  EXPECT_TRUE(partition.index_of(pfx("20.0.0.0/8")).has_value());
  // Every address maps to exactly one cell that contains it.
  for (const char* text : {"10.0.0.1", "10.16.5.5", "10.31.0.1",
                           "10.200.0.1", "20.1.2.3", "30.0.255.255"}) {
    const auto addr = Ipv4Address::parse_or_throw(text);
    const auto cell = partition.locate(addr);
    ASSERT_TRUE(cell.has_value()) << text;
    EXPECT_TRUE(partition.prefix(*cell).contains(addr));
  }
}

TEST(RoutingTable, Pfx2AsRoundTrip) {
  const auto table = RoutingTable::from_pfx2as(sample_records());
  const auto table2 = RoutingTable::from_pfx2as(table.to_pfx2as());
  EXPECT_TRUE(std::equal(table.routes().begin(), table.routes().end(),
                         table2.routes().begin(), table2.routes().end()));
}

TEST(RoutingTable, FromMrtMatchesPfx2As) {
  MrtRibDump dump;
  dump.collector_id = Ipv4Address(1);
  dump.peers.push_back({Ipv4Address(1), Ipv4Address(1), 65000});
  std::uint32_t sequence = 0;
  for (const Pfx2AsRecord& record : sample_records()) {
    MrtRibRecord rib;
    rib.sequence = sequence++;
    rib.prefix = record.prefix;
    MrtRibEntry entry;
    entry.peer_index = 0;
    entry.as_path.push_back(
        {AsPathSegment::Kind::kAsSequence, {65000, record.origins[0]}});
    rib.entries.push_back(entry);
    dump.records.push_back(rib);
  }
  const auto from_mrt = RoutingTable::from_mrt(dump);
  const auto from_text = RoutingTable::from_pfx2as(sample_records());
  ASSERT_EQ(from_mrt.size(), from_text.size());
  for (std::size_t i = 0; i < from_mrt.size(); ++i) {
    EXPECT_EQ(from_mrt.routes()[i].prefix, from_text.routes()[i].prefix);
    EXPECT_EQ(from_mrt.routes()[i].more_specific,
              from_text.routes()[i].more_specific);
  }
}

TEST(PrefixPartition, RejectsOverlap) {
  EXPECT_THROW(PrefixPartition({pfx("10.0.0.0/8"), pfx("10.0.0.0/12")}),
               Error);
  EXPECT_THROW(PrefixPartition({pfx("10.0.0.0/12"), pfx("10.0.0.0/8")}),
               Error);
  EXPECT_THROW(PrefixPartition({pfx("10.0.0.0/8"), pfx("10.0.0.0/8")}),
               Error);
  EXPECT_NO_THROW(PrefixPartition({pfx("10.0.0.0/9"), pfx("10.128.0.0/9")}));
}

TEST(PrefixPartition, EmptyPartition) {
  const PrefixPartition partition;
  EXPECT_TRUE(partition.empty());
  EXPECT_EQ(partition.address_count(), 0u);
  EXPECT_FALSE(partition.locate(Ipv4Address(0)).has_value());
}

TEST(PrefixPartition, PreservesInputOrder) {
  const PrefixPartition partition(
      {pfx("20.0.0.0/8"), pfx("10.0.0.0/8")});
  EXPECT_EQ(partition.prefix(0), pfx("20.0.0.0/8"));
  EXPECT_EQ(partition.prefix(1), pfx("10.0.0.0/8"));
  EXPECT_EQ(partition.index_of(pfx("10.0.0.0/8")), 1u);
  EXPECT_EQ(partition.locate(Ipv4Address::parse_or_throw("20.5.5.5")), 0u);
}

TEST(PrefixPartition, IntervalSetMatchesAddressCount) {
  const PrefixPartition partition(
      {pfx("10.0.0.0/8"), pfx("11.0.0.0/8"), pfx("192.168.0.0/16")});
  EXPECT_EQ(partition.to_interval_set().address_count(),
            partition.address_count());
}

}  // namespace
}  // namespace tass::bgp
