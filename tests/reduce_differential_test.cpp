// Differential and property tests for bgp/reduce: the family-generic
// aggregate against the historical interval-algebra path, and the greedy
// reduction against naive bitset oracles on small universes.
#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <cstdint>
#include <vector>

#include "bgp/aggregate.hpp"
#include "bgp/reduce.hpp"
#include "net/interval.hpp"
#include "util/rng.hpp"

namespace tass::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv6Address;
using net::Ipv6Prefix;
using net::Prefix;

// Random v4 prefixes with deliberate nesting, duplication and sibling
// adjacency (slots are drawn from a small pool so collisions are
// common — the shapes aggregation has to get right).
std::vector<Prefix> random_v4(util::Rng& rng, std::size_t count) {
  std::vector<Prefix> prefixes;
  prefixes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int length = 8 + static_cast<int>(rng.bounded(17));
    const std::uint32_t slot =
        static_cast<std::uint32_t>(rng.bounded(1u << std::min(length, 10)));
    prefixes.emplace_back(
        Ipv4Address(slot << (32 - std::min(length, 10))), length);
  }
  return prefixes;
}

TEST(ReduceDifferential, AggregateMatchesTheIntervalAlgebraCover) {
  // The historical bgp::aggregate materialised an IntervalSet and read
  // back its minimal CIDR cover; the stack sweep must be byte-identical
  // on arbitrary overlapping input.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 2016ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 50; ++round) {
      const auto input = random_v4(rng, 1 + rng.bounded(120));
      const auto sweep = BasicAggregate<net::Ipv4Family>::aggregate(input);
      const auto algebra =
          net::IntervalSet::of_prefixes(input).to_prefixes();
      ASSERT_EQ(sweep, algebra) << "seed " << seed << " round " << round;
      ASSERT_EQ(BasicAggregate<net::Ipv4Family>::union_size(input),
                net::IntervalSet::of_prefixes(input).address_count());
    }
  }
}

TEST(ReduceDifferential, AggregateIsIdempotent) {
  for (const std::uint64_t seed : {3ull, 9ull, 27ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 30; ++round) {
      const auto input = random_v4(rng, 1 + rng.bounded(80));
      const auto once = BasicAggregate<net::Ipv4Family>::aggregate(input);
      EXPECT_EQ(BasicAggregate<net::Ipv4Family>::aggregate(once), once);
    }
  }
  // Adversarial shapes: a full nesting chain and an alternating sibling
  // comb, both of which stress the cascade.
  std::vector<Prefix> chain;
  for (int length = 8; length <= 30; ++length) {
    chain.emplace_back(Ipv4Address(10u << 24), length);
  }
  const auto chain_once = BasicAggregate<net::Ipv4Family>::aggregate(chain);
  EXPECT_EQ(chain_once, std::vector<Prefix>{Prefix(Ipv4Address(10u << 24),
                                                   8)});
  std::vector<Prefix> comb;
  for (std::uint32_t i = 0; i < 128; ++i) {
    comb.emplace_back(Ipv4Address((10u << 24) | (i << 9)), 24);
  }
  const auto comb_once = BasicAggregate<net::Ipv4Family>::aggregate(comb);
  EXPECT_EQ(comb_once.size(), 128u);  // gapped /24s: nothing merges
  EXPECT_EQ(BasicAggregate<net::Ipv4Family>::aggregate(comb_once),
            comb_once);
}

TEST(ReduceDifferential, V6AggregateIsIdempotentAcrossWordBoundaries) {
  for (const std::uint64_t seed : {5ull, 25ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 30; ++round) {
      std::vector<Ipv6Prefix> input;
      const std::size_t count = 1 + rng.bounded(60);
      for (std::size_t i = 0; i < count; ++i) {
        // Straddle the 64-bit word boundary on purpose.
        const int length = 56 + static_cast<int>(rng.bounded(17));
        const std::uint64_t slot = rng.bounded(1u << 8);
        const std::uint64_t hi = 0x20010db800000000ull | (slot << 8);
        input.emplace_back(Ipv6Address(hi, 0), length);
      }
      const auto once = BasicAggregate<net::Ipv6Family>::aggregate(input);
      EXPECT_EQ(BasicAggregate<net::Ipv6Family>::aggregate(once), once);
    }
  }
}

// Paints a prefix into a bitset over the 10.0.0.0/16 universe.
template <std::size_t N>
void paint(std::bitset<N>& bits, Prefix prefix) {
  const std::uint32_t base = 10u << 24;
  const std::uint64_t first = prefix.network().value() - base;
  const std::uint64_t count = prefix.size();
  for (std::uint64_t i = 0; i < count; ++i) bits.set(first + i);
}

TEST(ReduceDifferential, SmallUniverseOracle) {
  // Every reduction inside 10.0.0.0/16 is checked bit-for-bit: the
  // reduced set is a superset, the extra bits equal the reported
  // overshoot, and the extra bits respect the cap.
  for (const std::uint64_t seed : {11ull, 13ull, 2016ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 25; ++round) {
      std::vector<Prefix> input;
      const std::size_t count = 2 + rng.bounded(40);
      for (std::size_t i = 0; i < count; ++i) {
        const int length = 17 + static_cast<int>(rng.bounded(16));
        const std::uint32_t offset = static_cast<std::uint32_t>(
            rng.bounded(1u << 16) & ~((1u << (32 - length)) - 1));
        input.emplace_back(Ipv4Address((10u << 24) | offset), length);
      }
      const double cap = static_cast<double>(rng.bounded(30)) / 100.0;
      ReduceParams params;
      params.max_overshoot = cap;
      const auto result = reduce(std::span<const Prefix>(input), params);

      std::bitset<65536> original;
      std::bitset<65536> reduced;
      for (const Prefix p : input) paint(original, p);
      for (const Prefix p : result.prefixes) paint(reduced, p);
      ASSERT_EQ((original & ~reduced).count(), 0u)
          << "seed " << seed << " round " << round << ": coverage lost";
      const std::uint64_t extra = (reduced & ~original).count();
      ASSERT_EQ(extra, result.overshoot_addresses);
      ASSERT_EQ(original.count(), result.original_addresses);
      ASSERT_LE(static_cast<double>(extra),
                cap * static_cast<double>(original.count()) + 1e-9);
      // The reduced list is sorted and disjoint.
      for (std::size_t i = 1; i < result.prefixes.size(); ++i) {
        ASSERT_LT(result.prefixes[i - 1].last().value(),
                  result.prefixes[i].first().value());
      }
    }
  }
}

TEST(ReduceDifferential, OvershootBoundHoldsOnRibShapedInput) {
  // union_size(reduce(x, pct)) <= union_size(x) * (1 + pct): the public
  // contract, checked across seeded RIB-shaped worlds at both families'
  // widths (v6 lengths stay <= 64 so /64 units are an exact measure).
  for (const std::uint64_t seed : {2ull, 4ull, 8ull}) {
    util::Rng rng(seed);
    std::vector<Prefix> v4;
    std::vector<Ipv6Prefix> v6;
    for (int i = 0; i < 400; ++i) {
      const std::uint32_t region = static_cast<std::uint32_t>(
          rng.bounded(64));
      v4.emplace_back(
          Ipv4Address((66u << 24) | (region << 16) |
                      (static_cast<std::uint32_t>(rng.bounded(256)) << 8)),
          24);
      const std::uint64_t hi =
          0x20010db800000000ull |
          (rng.bounded(64) << 20) | (rng.bounded(256) << 12);
      v6.emplace_back(Ipv6Address(hi, 0), 52);
    }
    for (const double pct : {0.0, 0.02, 0.05, 0.25}) {
      ReduceParams params;
      params.max_overshoot = pct;
      const auto r4 = reduce(std::span<const Prefix>(v4), params);
      EXPECT_LE(static_cast<double>(union_size(r4.prefixes)),
                static_cast<double>(union_size(v4)) * (1.0 + pct) + 1.0);
      const auto r6 = reduce(std::span<const Ipv6Prefix>(v6), params);
      EXPECT_LE(static_cast<double>(union_size(r6.prefixes)),
                static_cast<double>(union_size(v6)) * (1.0 + pct) + 1.0);
    }
  }
}

TEST(ReduceDifferential, V6HiWordOracle) {
  // /64-grained universe inside 2001:db8::/48: the 16 bits below the
  // /48 boundary index a bitset of /64 units, all inside the hi word.
  for (const std::uint64_t seed : {17ull, 19ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 20; ++round) {
      std::vector<Ipv6Prefix> input;
      const std::size_t count = 2 + rng.bounded(30);
      for (std::size_t i = 0; i < count; ++i) {
        const int length = 49 + static_cast<int>(rng.bounded(16));
        const std::uint64_t unit =
            rng.bounded(1u << 16) & ~((1ull << (64 - length)) - 1);
        input.emplace_back(
            Ipv6Address(0x20010db800000000ull | unit, 0), length);
      }
      const double cap = static_cast<double>(rng.bounded(30)) / 100.0;
      ReduceParams params;
      params.max_overshoot = cap;
      const auto result =
          reduce(std::span<const Ipv6Prefix>(input), params);

      std::bitset<65536> original;
      std::bitset<65536> reduced;
      const auto paint6 = [](std::bitset<65536>& bits, Ipv6Prefix p) {
        const std::uint64_t first = p.first().hi() & 0xffff;
        const std::uint64_t count = 1ull << (64 - p.length());
        for (std::uint64_t i = 0; i < count; ++i) bits.set(first + i);
      };
      for (const Ipv6Prefix p : input) paint6(original, p);
      for (const Ipv6Prefix p : result.prefixes) paint6(reduced, p);
      ASSERT_EQ((original & ~reduced).count(), 0u)
          << "seed " << seed << " round " << round;
      ASSERT_EQ((reduced & ~original).count(), result.overshoot_addresses);
      ASSERT_LE(static_cast<double>(result.overshoot_addresses),
                cap * static_cast<double>(original.count()) + 1e-9);
    }
  }
}

TEST(ReduceDifferential, V6LoWordOracle) {
  // Address-grained universe inside 2001:db8::cafe:0/112, entirely in
  // the lo word. Units are not additive past /64 (each long prefix
  // counts one), so the oracle checks exact-address coverage and that
  // the exact-address overshoot respects the cap, which reduce enforces
  // internally at full width.
  for (const std::uint64_t seed : {23ull, 29ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 20; ++round) {
      std::vector<Ipv6Prefix> input;
      const std::size_t count = 2 + rng.bounded(30);
      for (std::size_t i = 0; i < count; ++i) {
        const int length = 113 + static_cast<int>(rng.bounded(16));
        const std::uint64_t lo =
            0xcafe0000ull |
            (rng.bounded(1u << 16) & ~((1ull << (128 - length)) - 1));
        input.emplace_back(Ipv6Address(0x20010db800000000ull, lo), length);
      }
      const double cap = static_cast<double>(rng.bounded(30)) / 100.0;
      ReduceParams params;
      params.max_overshoot = cap;
      const auto result =
          reduce(std::span<const Ipv6Prefix>(input), params);

      std::bitset<65536> original;
      std::bitset<65536> reduced;
      const auto paint6 = [](std::bitset<65536>& bits, Ipv6Prefix p) {
        const std::uint64_t first = p.first().lo() & 0xffff;
        const std::uint64_t count = 1ull << (128 - p.length());
        for (std::uint64_t i = 0; i < count; ++i) bits.set(first + i);
      };
      for (const Ipv6Prefix p : input) paint6(original, p);
      for (const Ipv6Prefix p : result.prefixes) paint6(reduced, p);
      ASSERT_EQ((original & ~reduced).count(), 0u)
          << "seed " << seed << " round " << round;
      const std::uint64_t extra = (reduced & ~original).count();
      ASSERT_LE(static_cast<double>(extra),
                cap * static_cast<double>(original.count()) + 1e-9);
    }
  }
}

TEST(ReduceDifferential, GreedyNeverLosesToNaiveSiblingFolding) {
  // A naive oracle on a tiny universe: repeatedly fold the single
  // cheapest *sibling* pair (parent = two siblings, cost = missing
  // half) while the budget allows. The greedy engine explores a larger
  // move set (near-sibling runs), so it must end with at most as many
  // prefixes for the same budget.
  for (const std::uint64_t seed : {31ull, 37ull, 41ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 20; ++round) {
      std::vector<Prefix> input;
      const std::size_t count = 2 + rng.bounded(12);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t offset = static_cast<std::uint32_t>(
            rng.bounded(1u << 8) << 8);
        input.emplace_back(Ipv4Address((10u << 24) | offset), 24);
      }
      const double cap = 0.10 + static_cast<double>(rng.bounded(40)) / 100.0;

      std::bitset<65536> bits;
      for (const Prefix p : input) paint(bits, p);
      const std::uint64_t original_count = bits.count();
      const std::uint64_t budget = static_cast<std::uint64_t>(
          cap * static_cast<double>(original_count));
      auto cover = net::IntervalSet::of_prefixes(input).to_prefixes();
      std::uint64_t spent = 0;
      for (;;) {
        // Cheapest parent-fold across the current cover.
        std::size_t best = cover.size();
        std::uint64_t best_cost = ~std::uint64_t{0};
        for (std::size_t i = 0; i < cover.size(); ++i) {
          if (cover[i].length() == 0) continue;
          const Prefix parent = cover[i].parent();
          std::uint64_t covered = 0;
          bool valid = true;
          for (const Prefix other : cover) {
            if (parent.contains(other)) {
              covered += other.size();
            } else if (other.overlaps(parent)) {
              valid = false;
            }
          }
          if (!valid) continue;
          const std::uint64_t cost = parent.size() - covered;
          if (cost < best_cost) {
            best_cost = cost;
            best = i;
          }
        }
        if (best == cover.size() || spent + best_cost > budget) break;
        const Prefix parent = cover[best].parent();
        spent += best_cost;
        std::erase_if(cover,
                      [&](Prefix p) { return parent.contains(p); });
        cover.push_back(parent);
        cover = net::IntervalSet::of_prefixes(cover).to_prefixes();
      }

      ReduceParams params;
      params.max_overshoot = cap;
      const auto result = reduce(std::span<const Prefix>(input), params);
      EXPECT_LE(result.prefixes.size(), cover.size())
          << "seed " << seed << " round " << round;
    }
  }
}

}  // namespace
}  // namespace tass::bgp
