// Tests for census/io: the snapshot/series container format, including
// every rejection path a robust reader needs.
#include "census/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "census/population.hpp"
#include "census/series.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace tass::census {
namespace {

std::shared_ptr<const Topology> topo_a() {
  static const auto topo = [] {
    TopologyParams params;
    params.seed = 71;
    params.l_prefix_count = 80;
    return generate_topology(params);
  }();
  return topo;
}

std::shared_ptr<const Topology> topo_b() {
  static const auto topo = [] {
    TopologyParams params;
    params.seed = 72;
    params.l_prefix_count = 80;
    return generate_topology(params);
  }();
  return topo;
}

Snapshot sample_snapshot() {
  PopulationParams params;
  params.host_scale = 0.0008;
  params.seed = 12;
  return generate_population(topo_a(), protocol_profile(Protocol::kHttps),
                             params);
}

TEST(SnapshotIo, RoundTripsExactly) {
  const Snapshot original = sample_snapshot();
  const auto bytes = encode_snapshot(original);
  const Snapshot decoded = decode_snapshot(bytes, topo_a());
  EXPECT_EQ(decoded.protocol(), original.protocol());
  EXPECT_EQ(decoded.month_index(), original.month_index());
  EXPECT_EQ(decoded.total_hosts(), original.total_hosts());
  EXPECT_EQ(decoded.addresses(), original.addresses());
  // The stable/volatile split survives too.
  for (std::uint32_t cell = 0; cell < original.cell_count(); ++cell) {
    EXPECT_EQ(decoded.cell(cell).stable, original.cell(cell).stable);
    EXPECT_EQ(decoded.cell(cell).volatile_hosts,
              original.cell(cell).volatile_hosts);
  }
}

TEST(SnapshotIo, DeltaVarintIsCompact) {
  const Snapshot original = sample_snapshot();
  const auto bytes = encode_snapshot(original);
  // Raw encoding would be ~4 bytes per host plus per-cell headers; the
  // delta-varint payload should beat 4 bytes/host comfortably.
  EXPECT_LT(bytes.size(),
            original.total_hosts() * 4 + original.cell_count() * 4);
}

TEST(SnapshotIo, RejectsWrongTopology) {
  const auto bytes = encode_snapshot(sample_snapshot());
  EXPECT_THROW(decode_snapshot(bytes, topo_b()), FormatError);
}

TEST(SnapshotIo, RejectsCorruption) {
  auto bytes = encode_snapshot(sample_snapshot());
  // Flip one payload byte: checksum must catch it.
  bytes[bytes.size() / 2] ^= std::byte{0x40};
  EXPECT_THROW(decode_snapshot(bytes, topo_a()), FormatError);
}

TEST(SnapshotIo, RejectsBadMagicTruncationAndTrailer) {
  const Snapshot original = sample_snapshot();
  auto bytes = encode_snapshot(original);

  auto bad_magic = bytes;
  bad_magic[0] = std::byte{0x00};
  EXPECT_THROW(decode_snapshot(bad_magic, topo_a()), FormatError);

  EXPECT_THROW(decode_snapshot(std::span(bytes).first(10), topo_a()),
               FormatError);

  auto trailing = bytes;
  trailing.push_back(std::byte{0});
  EXPECT_THROW(decode_snapshot(trailing, topo_a()), FormatError);
}

TEST(SnapshotIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tass_snapshot_test.tsnp";
  const Snapshot original = sample_snapshot();
  save_snapshot(path.string(), original);
  const Snapshot loaded = load_snapshot(path.string(), topo_a());
  EXPECT_EQ(loaded.addresses(), original.addresses());
  std::filesystem::remove(path);
  EXPECT_THROW(load_snapshot(path.string(), topo_a()), Error);
}

TEST(SeriesIo, RoundTripsAllMonths) {
  SeriesParams params;
  params.months = 3;
  params.host_scale = 0.0008;
  params.seed = 5;
  const auto series =
      CensusSeries::generate(topo_a(), Protocol::kFtp, params);
  const auto bytes = encode_series(series.months());
  const auto decoded = decode_series(bytes, topo_a());
  ASSERT_EQ(decoded.size(), 3u);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(decoded[static_cast<std::size_t>(m)].addresses(),
              series.month(m).addresses());
    EXPECT_EQ(decoded[static_cast<std::size_t>(m)].month_index(), m);
  }
}

TEST(SeriesIo, RejectsSnapshotAsSeries) {
  const auto bytes = encode_snapshot(sample_snapshot());
  EXPECT_THROW(decode_series(bytes, topo_a()), FormatError);
}

TEST(TopologyFingerprint, DistinguishesTopologies) {
  EXPECT_EQ(topology_fingerprint(*topo_a()), topology_fingerprint(*topo_a()));
  EXPECT_NE(topology_fingerprint(*topo_a()), topology_fingerprint(*topo_b()));
}

TEST(Fnv1a, KnownVectorsAndStreaming) {
  // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
  util::Fnv1a64 empty;
  EXPECT_EQ(empty.digest(), util::Fnv1a64::kOffsetBasis);
  util::Fnv1a64 a;
  a.update(static_cast<std::uint8_t>('a'));
  EXPECT_EQ(a.digest(), 0xaf63dc4c8601ec8cULL);
  // Streaming equals one-shot.
  const char text[] = "topology aware scanning";
  util::Fnv1a64 stream;
  for (const char c : std::string_view(text)) {
    stream.update(static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(stream.digest(),
            util::fnv1a64(std::as_bytes(
                std::span(text, std::string_view(text).size()))));
}

}  // namespace
}  // namespace tass::census
