// Tests for net/special_use: the IANA special-use registry and the derived
// reserved / scannable spaces (the paper's Figure 1 scoping levels).
#include "net/special_use.hpp"

#include <gtest/gtest.h>

namespace tass::net {
namespace {

TEST(SpecialUse, RegistryIsSortedAndNonEmpty) {
  const auto ranges = special_use_ranges();
  ASSERT_GE(ranges.size(), 10u);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LT(ranges[i - 1].prefix, ranges[i].prefix);
  }
}

TEST(SpecialUse, KnownRangesPresent) {
  bool saw_rfc1918 = false;
  bool saw_multicast = false;
  for (const SpecialUseRange& range : special_use_ranges()) {
    if (range.prefix == Prefix::parse_or_throw("10.0.0.0/8")) {
      saw_rfc1918 = true;
      EXPECT_EQ(range.rfc, "RFC1918");
      EXPECT_FALSE(range.globally_reachable);
    }
    if (range.prefix == Prefix::parse_or_throw("224.0.0.0/4")) {
      saw_multicast = true;
    }
  }
  EXPECT_TRUE(saw_rfc1918);
  EXPECT_TRUE(saw_multicast);
}

TEST(SpecialUse, ReservedBlocksExpectedAddresses) {
  const IntervalSet& reserved = reserved_space();
  EXPECT_TRUE(reserved.contains(Ipv4Address::parse_or_throw("10.1.2.3")));
  EXPECT_TRUE(reserved.contains(Ipv4Address::parse_or_throw("127.0.0.1")));
  EXPECT_TRUE(reserved.contains(Ipv4Address::parse_or_throw("192.168.1.1")));
  EXPECT_TRUE(reserved.contains(Ipv4Address::parse_or_throw("239.1.1.1")));
  EXPECT_TRUE(reserved.contains(Ipv4Address::parse_or_throw("255.1.1.1")));
  EXPECT_FALSE(reserved.contains(Ipv4Address::parse_or_throw("8.8.8.8")));
  // 6to4 anycast is globally reachable, hence scannable.
  EXPECT_FALSE(reserved.contains(Ipv4Address::parse_or_throw("192.88.99.1")));
}

TEST(SpecialUse, ReservedAndScannablePartitionTheSpace) {
  const IntervalSet& reserved = reserved_space();
  const IntervalSet& scannable = scannable_space();
  EXPECT_EQ(reserved.address_count() + scannable.address_count(),
            kIpv4SpaceSize);
  EXPECT_TRUE(reserved.intersect(scannable).empty());
}

TEST(SpecialUse, ClassifyResolvesRegistryEntries) {
  const SpecialUseRange* priv =
      classify(Ipv4Address::parse_or_throw("192.168.1.1"));
  ASSERT_NE(priv, nullptr);
  EXPECT_EQ(priv->name, "Private-Use");
  const SpecialUseRange* anycast =
      classify(Ipv4Address::parse_or_throw("192.88.99.1"));
  ASSERT_NE(anycast, nullptr);
  EXPECT_TRUE(anycast->globally_reachable);
  EXPECT_EQ(classify(Ipv4Address::parse_or_throw("8.8.8.8")), nullptr);
}

TEST(SpecialUse, IsReservedAgreesWithReservedSpaceEverywhere) {
  // The LpmIndex fast path and the IntervalSet must agree, including the
  // edges of the space and every registry boundary +/- 1.
  const IntervalSet& reserved = reserved_space();
  std::vector<std::uint32_t> probes = {0u, ~0u};
  for (const SpecialUseRange& entry : special_use_ranges()) {
    const std::uint32_t first = entry.prefix.first().value();
    const std::uint32_t last = entry.prefix.last().value();
    probes.push_back(first);
    probes.push_back(last);
    if (first != 0) probes.push_back(first - 1);
    if (last != ~0u) probes.push_back(last + 1);
  }
  for (const std::uint32_t value : probes) {
    const Ipv4Address addr(value);
    EXPECT_EQ(is_reserved(addr), reserved.contains(addr))
        << addr.to_string();
  }
}

TEST(SpecialUse, ScannableIsRoughlyThePaperScale) {
  // The paper's Figure 1: ~3.7B allocated/scannable addresses.
  const double billions =
      static_cast<double>(scannable_space().address_count()) / 1e9;
  EXPECT_GT(billions, 3.5);
  EXPECT_LT(billions, 3.8);
}

}  // namespace
}  // namespace tass::net
