// Tests for util/rng: the deterministic generator and distributions the
// census simulation depends on for reproducibility.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace tass::util {
namespace {

TEST(Splitmix, IsDeterministicAndMixes) {
  std::uint64_t a = 1;
  std::uint64_t b = 1;
  const std::uint64_t first = splitmix64(a);
  EXPECT_EQ(first, splitmix64(b));   // same state, same output
  EXPECT_NE(first, splitmix64(a));   // the stream advances
  a = 1;
  b = 2;
  EXPECT_NE(splitmix64(a), splitmix64(b));  // nearby seeds diverge
}

TEST(Mix64, SeparatesStreams) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
  EXPECT_EQ(mix64(7, 9), mix64(7, 9));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBuckets)];
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformU32Inclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t value = rng.uniform_u32(5, 8);
    EXPECT_GE(value, 5u);
    EXPECT_LE(value, 8u);
    saw_lo = saw_lo || value == 5;
    saw_hi = saw_hi || value == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(29);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 50000, 0.5, 0.02);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, LognormalIsPositiveWithSaneMedian) {
  Rng rng(37);
  std::vector<double> draws;
  for (int i = 0; i < 20001; ++i) {
    const double x = rng.lognormal(0.0, 0.5);
    EXPECT_GT(x, 0.0);
    draws.push_back(x);
  }
  std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
  EXPECT_NEAR(draws[10000], 1.0, 0.05);  // median of LogNormal(0, s) is 1
}

TEST(Rng, NormalMoments) {
  Rng rng(41);
  double sum = 0;
  double sq = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / kDraws - mean * mean), 2.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(43);
  for (const double mean : {0.5, 4.0, 100.0}) {
    double sum = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.05 + 0.05);
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(47);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  auto shuffled = values;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(53);
  const auto sample = rng.sample_without_replacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_EQ(std::set<std::uint64_t>(sample.begin(), sample.end()).size(),
            100u);
  for (const std::uint64_t value : sample) EXPECT_LT(value, 1000u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(59);
  const auto sample = rng.sample_without_replacement(16, 16);
  EXPECT_EQ(sample.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(sample[i], i);
}

TEST(DiscreteSampler, RespectsWeights) {
  const double weights[] = {1.0, 0.0, 3.0};
  DiscreteSampler sampler(weights);
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_DOUBLE_EQ(sampler.total(), 4.0);

  Rng rng(61);
  int counts[3] = {};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  EXPECT_EQ(counts[1], 0);  // zero weight is never drawn
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.75, 0.02);
}

TEST(DiscreteSampler, SingleCategory) {
  const double weights[] = {0.7};
  DiscreteSampler sampler(weights);
  Rng rng(67);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

}  // namespace
}  // namespace tass::util
