// Integration tests over the checked-in sample data files: the formats a
// real deployment drops in (CAIDA pfx2as, blocklist.conf) must parse and
// behave end to end.
#include <gtest/gtest.h>

#include <string>

#include "bgp/pfx2as.hpp"
#include "bgp/rib.hpp"
#include "bgp/table6.hpp"
#include "census/hitlist6.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "scan/blocklist.hpp"

#ifndef TASS_DATA_DIR
#error "TASS_DATA_DIR must be defined by the build"
#endif

namespace tass {
namespace {

std::string data_path(const char* name) {
  return std::string(TASS_DATA_DIR) + "/" + name;
}

TEST(DataFiles, SamplePfx2AsParsesAndClassifies) {
  const auto records = bgp::load_pfx2as(data_path("sample.pfx2as"));
  ASSERT_GE(records.size(), 20u);

  const auto table = bgp::RoutingTable::from_pfx2as(records);
  const auto stats = table.stats();
  EXPECT_EQ(stats.prefix_count, records.size());
  EXPECT_GT(stats.m_prefix_count, 0u);
  EXPECT_LT(stats.m_prefix_count, stats.prefix_count);

  // Known relationships from the sample: 45.32.0.0/12 sits inside
  // 45.0.0.0/8; 100.0.0.0/12 inside 100.0.0.0/8; the AS-set row parses.
  const auto l = table.l_prefixes();
  const auto m = table.m_prefixes();
  EXPECT_TRUE(std::find(l.begin(), l.end(),
                        net::Prefix::parse_or_throw("45.0.0.0/8")) !=
              l.end());
  EXPECT_TRUE(std::find(m.begin(), m.end(),
                        net::Prefix::parse_or_throw("45.32.0.0/12")) !=
              m.end());
  bool saw_as_set = false;
  for (const bgp::RouteEntry& route : table.routes()) {
    if (route.prefix == net::Prefix::parse_or_throw("128.9.0.0/16")) {
      saw_as_set = route.origins.size() == 3;
    }
  }
  EXPECT_TRUE(saw_as_set);
}

TEST(DataFiles, SamplePfx2AsDrivesTheFullPipeline) {
  const auto records = bgp::load_pfx2as(data_path("sample.pfx2as"));
  const auto topo = census::topology_from_table(
      bgp::RoutingTable::from_pfx2as(records), /*seed=*/3);
  EXPECT_GT(topo->m_partition.size(), topo->l_partition.size());
  EXPECT_EQ(topo->advertised_addresses, topo->m_partition.address_count());
  // Every m-cell still maps into an l-cell.
  for (std::uint32_t cell = 0; cell < topo->m_partition.size(); ++cell) {
    EXPECT_LT(topo->cell_to_l[cell], topo->l_partition.size());
  }
}

TEST(DataFiles, BlocklistConfParses) {
  const auto blocklist = scan::Blocklist::load(data_path("blocklist.conf"));
  EXPECT_TRUE(blocklist.blocks(net::Ipv4Address::parse_or_throw(
      "192.0.2.200")));
  EXPECT_TRUE(blocklist.blocks(net::Ipv4Address::parse_or_throw(
      "203.0.112.17")));
  EXPECT_FALSE(blocklist.blocks(net::Ipv4Address::parse_or_throw(
      "203.0.112.18")));
  EXPECT_TRUE(blocklist.blocks(net::Ipv4Address::parse_or_throw(
      "100.100.0.1")));  // inside the CGN range entry
  EXPECT_FALSE(blocklist.blocks(net::Ipv4Address::parse_or_throw(
      "8.8.8.8")));
  // IPv6 entries land in the v6 scope instead of being dropped.
  EXPECT_TRUE(blocklist.blocks(net::Ipv6Address::parse_or_throw(
      "2001:db8:1234::1")));
  EXPECT_TRUE(blocklist.blocks(net::Ipv6Address::parse_or_throw(
      "2001:4860:dead::1")));
  EXPECT_FALSE(blocklist.blocks(net::Ipv6Address::parse_or_throw(
      "2001:4860:dead::2")));
  EXPECT_EQ(blocklist.blocked6().size(), 2u);
}

TEST(DataFiles, SamplePfx2As6AndHitlistDriveTheV6Pipeline) {
  const auto records = bgp::load_pfx2as6(data_path("sample6.pfx2as"));
  ASSERT_GE(records.size(), 8u);
  const auto table = bgp::RoutingTable6::from_pfx2as(records);
  const bgp::PrefixPartition6 partition = table.m_partition();
  EXPECT_GT(partition.size(), records.size());  // deaggregation split

  const auto hitlist = census::load_hitlist6(data_path("hitlist6.txt"));
  ASSERT_GE(hitlist.size(), 8u);
  std::vector<std::uint32_t> counts(partition.size(), 0);
  std::uint64_t attributed = 0;
  std::uint64_t unattributed = 0;
  partition.tally_cells(hitlist, counts, attributed, unattributed);
  EXPECT_EQ(attributed, hitlist.size());
  EXPECT_EQ(unattributed, 0u);

  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);
  EXPECT_GT(ranking.ranked.size(), 0u);
  EXPECT_EQ(ranking.total_hosts, hitlist.size());
}

}  // namespace
}  // namespace tass
