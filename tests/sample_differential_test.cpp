// Differential suite: sampled-scan estimates vs exhaustive ground truth.
//
// For a grid of (rng seed x probe budget x marking bias) the sampled
// pipeline — plan_sample -> SampledScope -> probe -> estimate_from_sample
// — must produce confidence intervals that cover the exhaustive truth
// over the same frame, for both the responsive population and a planted
// "vulnerable" subpopulation (including the adversarial sparse-biased
// planting the per-cell floor exists for). The engine cross-check pins
// the sampled scope to ScanEngine semantics: run_attributed over the
// materialised scope must agree bit-for-bit with the scope's own probe().
// (The name "differential" puts this file in the ctest label the
// sanitizer CI job runs.)
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "bgp/pfx2as.hpp"
#include "bgp/table6.hpp"
#include "census/population.hpp"
#include "census/protocol.hpp"
#include "census/series.hpp"
#include "census/snapshot_index.hpp"
#include "census/topology.hpp"
#include "core/estimator.hpp"
#include "core/ranking.hpp"
#include "net/interval.hpp"
#include "scan/engine.hpp"
#include "scan/sampled_scope.hpp"
#include "util/rng.hpp"

namespace tass {
namespace {

class SampleDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    census::TopologyParams topo_params;
    topo_params.seed = 47;
    topo_params.l_prefix_count = 400;
    topo_ = census::generate_topology(topo_params);
    census::PopulationParams pop;
    pop.host_scale = 0.002;
    snapshot_ = std::make_unique<census::Snapshot>(census::generate_population(
        topo_, census::protocol_profile(census::Protocol::kHttps), pop));
    ranking_ = std::make_unique<core::DensityRanking>(
        core::rank_by_density(*snapshot_, core::PrefixMode::kMore));
    oracle_ = std::make_unique<census::SnapshotIndex>(*snapshot_);
  }
  static void TearDownTestSuite() {
    oracle_.reset();
    ranking_.reset();
    snapshot_.reset();
    topo_.reset();
  }

  static std::shared_ptr<const census::Topology> topo_;
  static std::unique_ptr<census::Snapshot> snapshot_;
  static std::unique_ptr<core::DensityRanking> ranking_;
  static std::unique_ptr<census::SnapshotIndex> oracle_;
};

std::shared_ptr<const census::Topology> SampleDifferentialTest::topo_;
std::unique_ptr<census::Snapshot> SampleDifferentialTest::snapshot_;
std::unique_ptr<core::DensityRanking> SampleDifferentialTest::ranking_;
std::unique_ptr<census::SnapshotIndex> SampleDifferentialTest::oracle_;

struct Truth {
  std::uint64_t hosts = 0;
  std::uint64_t marked = 0;
};

template <class Design>
Truth exhaustive_truth(const Design& design,
                       const census::SnapshotIndex& oracle,
                       const census::SnapshotIndex& marked) {
  Truth truth;
  for (const auto& row : design.cells) {
    const auto interval = net::Interval::of(row.prefix);
    truth.hosts += oracle.count_responsive(interval);
    truth.marked += marked.count_responsive(interval);
  }
  return truth;
}

TEST_F(SampleDifferentialTest, CisCoverTruthAcrossSeedsBudgetsAndBiases) {
  const std::uint64_t budgets[] = {5'000, 20'000, 80'000};
  const std::uint64_t seeds[] = {1, 2, 3, 4};
  const core::MarkingBias biases[] = {core::MarkingBias::kUniform,
                                      core::MarkingBias::kSparseBiased};
  for (const core::MarkingBias bias : biases) {
    const auto marked = core::mark_hosts(*snapshot_, 0.1, bias, 99);
    ASSERT_EQ(marked.addresses.size(), marked.total_marked);
    const census::SnapshotIndex marked_oracle(marked.addresses);
    for (const std::uint64_t seed : seeds) {
      for (const std::uint64_t budget : budgets) {
        scan::SampleParams params;
        params.budget = budget;
        params.seed = seed;
        const auto design = scan::plan_sample(*ranking_, params);
        ASSERT_GT(design.frame_units, budget)
            << "world too small for a meaningful sample";
        const scan::SampledScope scope(design);
        const auto result = scope.probe(
            [&](net::Ipv4Address addr) { return oracle_->contains(addr); },
            [&](net::Ipv4Address addr) {
              return marked_oracle.contains(addr);
            });
        EXPECT_EQ(result.probes_sent, budget);

        const auto estimate = core::estimate_from_sample(result, *ranking_);
        const Truth truth =
            exhaustive_truth(design, *oracle_, marked_oracle);
        // Conservative CIs (binomial smoothing + stratification + FPC)
        // make nominal 95% coverage an under-statement; the fixed grid
        // is verified to hold exactly.
        EXPECT_TRUE(
            estimate.hosts_ci_covers(static_cast<double>(truth.hosts)))
            << "hosts CI [" << estimate.hosts_low << ", "
            << estimate.hosts_high << "] misses " << truth.hosts
            << " (bias=" << static_cast<int>(bias) << " seed=" << seed
            << " budget=" << budget << ")";
        EXPECT_TRUE(
            estimate.marked_ci_covers(static_cast<double>(truth.marked)))
            << "marked CI [" << estimate.marked_low << ", "
            << estimate.marked_high << "] misses " << truth.marked
            << " (bias=" << static_cast<int>(bias) << " seed=" << seed
            << " budget=" << budget << ")";
        EXPECT_GT(estimate.probe_reduction(), 1.0);
      }
    }
  }
}

TEST_F(SampleDifferentialTest, EngineRunAgreesWithProbeBitForBit) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    scan::SampleParams params;
    params.budget = 20'000;
    params.seed = seed;
    const scan::SampledScope scope(scan::plan_sample(*ranking_, params));
    const auto probed = scope.probe(
        [&](net::Ipv4Address addr) { return oracle_->contains(addr); });

    const scan::ScanEngine engine;
    const scan::SnapshotOracle engine_oracle(*snapshot_);
    const auto attributed = engine.run_attributed(scope.scope(), engine_oracle,
                                                  topo_->m_partition);
    ASSERT_EQ(attributed.result.stats.probes_sent, probed.probes_sent);
    ASSERT_EQ(attributed.result.stats.responses, probed.hits);
    const auto folded = scope.attribute(attributed.cell_counts);
    ASSERT_EQ(folded.cells.size(), probed.cells.size());
    for (std::size_t i = 0; i < folded.cells.size(); ++i) {
      ASSERT_EQ(folded.cells[i].hits, probed.cells[i].hits)
          << "cell " << folded.cells[i].cell << " seed " << seed;
    }
  }
}

TEST_F(SampleDifferentialTest, ExhaustiveBudgetRecoversTruthExactly) {
  // budget >= frame: every cell samples its whole universe, the FPC
  // zeroes the variance, and the estimate degenerates to the exhaustive
  // count — the sampled pipeline is a strict generalisation.
  scan::SampleParams params;
  params.budget = ~0ull >> 1;
  const auto design = scan::plan_sample(*ranking_, params);
  EXPECT_EQ(design.total_draws, design.frame_units);
  const scan::SampledScope scope(design);
  const auto result = scope.probe(
      [&](net::Ipv4Address addr) { return oracle_->contains(addr); });
  const auto estimate = core::estimate_from_sample(result, *ranking_);
  const Truth truth = exhaustive_truth(design, *oracle_, *oracle_);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts,
                   static_cast<double>(truth.hosts));
  EXPECT_DOUBLE_EQ(estimate.hosts_low, estimate.hosts_high);
}

TEST_F(SampleDifferentialTest, CurveErrorShrinksWithBudget) {
  const std::uint64_t budgets[] = {2'000, 20'000, 200'000};
  scan::SampleParams params;
  params.seed = 3;
  const auto curve = core::estimate_curve(*ranking_, *oracle_, budgets,
                                          params);
  ASSERT_EQ(curve.size(), 3u);
  for (const auto& point : curve) {
    EXPECT_LE(point.probes_sent, point.budget);
    EXPECT_TRUE(point.estimated_hosts >= point.low &&
                point.estimated_hosts <= point.high);
  }
  // More probes, tighter estimate (monotone on this fixed grid).
  EXPECT_LT(curve[2].error, curve[0].error);
}

TEST_F(SampleDifferentialTest, SampledTrendCoversEveryMonthsTruth) {
  // One plan from month 0, re-probed against every month: the sampled
  // trend must track the churned truth inside its CI each month, with a
  // constant footprint (same target list every cycle).
  census::SeriesParams series_params;
  series_params.months = 4;
  series_params.host_scale = 0.002;
  census::CensusSeries series = census::CensusSeries::generate(
      topo_, census::Protocol::kHttps, series_params);

  scan::SampleParams params;
  params.budget = 40'000;
  params.seed = 5;
  const auto points =
      census::sampled_trend(series, core::PrefixMode::kMore, params);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& point : points) {
    EXPECT_EQ(point.month_index, &point - points.data());
    EXPECT_EQ(point.probes_sent, params.budget);
    EXPECT_EQ(point.frame_units, points[0].frame_units);
    EXPECT_GT(point.truth_hosts, 0u);
    EXPECT_TRUE(point.ci_covers_truth())
        << "month " << point.month_index << " CI [" << point.low << ", "
        << point.high << "] misses " << point.truth_hosts;
  }

  // Deterministic in (series, mode, params).
  const auto again =
      census::sampled_trend(series, core::PrefixMode::kMore, params);
  ASSERT_EQ(again.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(again[i].truth_hosts, points[i].truth_hosts);
    EXPECT_DOUBLE_EQ(again[i].estimated_hosts, points[i].estimated_hosts);
    EXPECT_DOUBLE_EQ(again[i].low, points[i].low);
    EXPECT_DOUBLE_EQ(again[i].high, points[i].high);
  }
}

// ---------------------------------------------------------------------
// IPv6: the differential contract over a synthetic hitlist world.

constexpr const char* kTable6 =
    "2001:db8::\t32\t64500\n"
    "2001:db8:8000::\t33\t64501\n"
    "2620:1::\t48\t64502\n"
    "2a00:20::\t40\t64503\n";

// Deterministic responsiveness: ~30% of candidates respond.
bool responds6(net::Ipv6Address addr) {
  return util::mix64(addr.lo(), 0xfeed) % 10 < 3;
}
// Deterministic marking among responders: ~1 in 4.
bool marked6(net::Ipv6Address addr) {
  return util::mix64(addr.lo(), 0xbeef) % 4 == 0;
}

TEST(SampleDifferential6, CisCoverTruthOnCandidateWorld) {
  const auto table =
      bgp::RoutingTable6::from_pfx2as(bgp::parse_pfx2as6(kTable6));
  const auto partition = table.m_partition();

  std::vector<net::Ipv6Address> candidates;
  util::Rng rng(17);
  const net::Ipv6Address bases[] = {
      net::Ipv6Address::parse_or_throw("2001:db8::"),
      net::Ipv6Address::parse_or_throw("2001:db8:8000::"),
      net::Ipv6Address::parse_or_throw("2620:1::"),
      net::Ipv6Address::parse_or_throw("2a00:20::")};
  const std::size_t counts_per[] = {4000, 2500, 900, 300};
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t i = 0; i < counts_per[p]; ++i) {
      candidates.emplace_back(bases[p].hi() | (rng() & 0xffff), rng());
    }
  }

  std::vector<std::uint32_t> cell_counts(partition.size(), 0);
  std::uint64_t attributed = 0;
  std::uint64_t unattributed = 0;
  partition.tally_cells(candidates, cell_counts, attributed, unattributed);
  ASSERT_EQ(attributed, candidates.size());
  const auto ranking = core::rank_by_density(
      std::span<const std::uint32_t>(cell_counts), partition,
      core::PrefixMode::kMore);

  std::vector<std::uint32_t> located(candidates.size());
  partition.locate_many(candidates, located);

  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    for (const std::uint64_t budget : {400ull, 1'200ull, 3'000ull}) {
      scan::SampleParams params;
      params.budget = budget;
      params.seed = seed;
      params.floor = 32;
      const auto design = scan::plan_sample(ranking, params);
      const scan::SampledScope6 scope(design, candidates, partition);
      const auto result = scope.probe(responds6, marked6);
      EXPECT_LE(result.probes_sent, budget);

      const auto estimate =
          core::estimate_from_sample(result, ranking);

      // Exhaustive truth: walk every candidate of every design cell.
      std::set<std::uint32_t> design_cells;
      for (const auto& row : scope.design().cells) {
        design_cells.insert(row.cell);
      }
      Truth truth;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!design_cells.contains(located[i])) continue;
        if (!responds6(candidates[i])) continue;
        ++truth.hosts;
        if (marked6(candidates[i])) ++truth.marked;
      }
      EXPECT_TRUE(
          estimate.hosts_ci_covers(static_cast<double>(truth.hosts)))
          << "v6 hosts CI [" << estimate.hosts_low << ", "
          << estimate.hosts_high << "] misses " << truth.hosts
          << " (seed=" << seed << " budget=" << budget << ")";
      EXPECT_TRUE(
          estimate.marked_ci_covers(static_cast<double>(truth.marked)))
          << "v6 marked CI [" << estimate.marked_low << ", "
          << estimate.marked_high << "] misses " << truth.marked
          << " (seed=" << seed << " budget=" << budget << ")";
    }
  }
}

}  // namespace
}  // namespace tass
