// Unit tests for the sampled-scan machinery: the low-discrepancy draw
// primitives (scan/sobol.hpp), the budget allocator and both family
// scopes (scan/sampled_scope.hpp).
#include "scan/sampled_scope.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bgp/pfx2as.hpp"
#include "bgp/table6.hpp"
#include "census/population.hpp"
#include "census/protocol.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "scan/engine.hpp"
#include "scan/sobol.hpp"
#include "util/rng.hpp"

namespace tass::scan {
namespace {

TEST(Sobol, BitReverseAndRadicalInverse) {
  EXPECT_EQ(bit_reverse(0b1, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bit_reverse(0, 8), 0u);
  EXPECT_DOUBLE_EQ(radical_inverse(0), 0.0);
  EXPECT_DOUBLE_EQ(radical_inverse(1), 0.5);
  EXPECT_DOUBLE_EQ(radical_inverse(2), 0.25);
  EXPECT_DOUBLE_EQ(radical_inverse(3), 0.75);
}

TEST(Sobol, ProgressiveOrderIsPermutation) {
  for (const std::uint64_t count : {1ull, 2ull, 7ull, 8ull, 100ull, 257ull}) {
    const auto order = progressive_order(count);
    ASSERT_EQ(order.size(), count);
    std::set<std::uint64_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), count);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), count - 1);
  }
  EXPECT_TRUE(progressive_order(0).empty());
}

TEST(Sobol, ProgressiveOrderPrefixSpreads) {
  // The first half of the visit order must touch both halves of the
  // range roughly equally — the property that makes an aborted sampled
  // scan still usable.
  const auto order = progressive_order(256);
  std::size_t low_half = 0;
  for (std::size_t i = 0; i < 128; ++i) {
    if (order[i] < 128) ++low_half;
  }
  EXPECT_EQ(low_half, 64u);
}

TEST(Sobol, StratifiedOffsetsOnePerStratum) {
  const std::uint64_t universe = 1000;
  const std::uint64_t draws = 37;
  const auto offsets = stratified_offsets(universe, draws, 42);
  ASSERT_EQ(offsets.size(), draws);
  // Stratum s covers [s*U/n, (s+1)*U/n); exactly one offset must land
  // in each window.
  std::vector<std::uint64_t> per_stratum(draws, 0);
  for (const std::uint64_t offset : offsets) {
    ASSERT_LT(offset, universe);
    for (std::uint64_t s = 0; s < draws; ++s) {
      if (offset >= s * universe / draws &&
          offset < (s + 1) * universe / draws) {
        ++per_stratum[s];
        break;
      }
    }
  }
  for (std::uint64_t s = 0; s < draws; ++s) {
    EXPECT_EQ(per_stratum[s], 1u) << "stratum " << s;
  }
  // Deterministic in the seed.
  EXPECT_EQ(offsets, stratified_offsets(universe, draws, 42));
  EXPECT_NE(offsets, stratified_offsets(universe, draws, 43));
}

TEST(Sobol, StratifiedOffsetsExhaustiveClamp) {
  const auto offsets = stratified_offsets(8, 20, 1);
  ASSERT_EQ(offsets.size(), 8u);
  std::set<std::uint64_t> seen(offsets.begin(), offsets.end());
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

core::DensityRanking tiny_ranking() {
  // Three cells: dense /24, medium /22, sparse /20.
  core::DensityRanking ranking;
  ranking.mode = core::PrefixMode::kMore;
  const struct {
    const char* prefix;
    std::uint32_t cell;
    std::uint64_t hosts;
  } rows[] = {{"10.0.0.0/24", 0, 200},
              {"10.1.0.0/22", 1, 300},
              {"10.2.0.0/20", 2, 100}};
  for (const auto& row : rows) {
    core::RankedPrefix entry;
    entry.index = row.cell;
    entry.prefix = net::Prefix::parse_or_throw(row.prefix);
    entry.size = entry.prefix.size();
    entry.hosts = row.hosts;
    entry.density = static_cast<double>(row.hosts) /
                    static_cast<double>(entry.size);
    ranking.total_hosts += row.hosts;
    ranking.advertised_addresses += entry.size;
    ranking.ranked.push_back(entry);
  }
  for (auto& entry : ranking.ranked) {
    entry.host_share = static_cast<double>(entry.hosts) /
                       static_cast<double>(ranking.total_hosts);
  }
  return ranking;
}

TEST(PlanSample, FloorAndDensityWeightedRemainder) {
  const auto ranking = tiny_ranking();
  SampleParams params;
  params.budget = 600;
  params.floor = 50;
  const auto design = plan_sample(ranking, params);
  ASSERT_EQ(design.cells.size(), 3u);
  EXPECT_EQ(design.total_draws, 600u);
  std::uint64_t draws_by_cell[3] = {};
  for (const auto& row : design.cells) {
    EXPECT_GE(row.draws, 50u);  // the floor
    EXPECT_LE(row.draws, row.universe);
    draws_by_cell[row.cell] = row.draws;
  }
  // Remainder (450) splits ~ proportional to seed hosts 200:300:100.
  EXPECT_GT(draws_by_cell[1], draws_by_cell[0]);
  EXPECT_GT(draws_by_cell[0], draws_by_cell[2]);
  EXPECT_EQ(design.frame_units,
            net::Prefix::parse_or_throw("10.0.0.0/24").size() +
                net::Prefix::parse_or_throw("10.1.0.0/22").size() +
                net::Prefix::parse_or_throw("10.2.0.0/20").size());
}

TEST(PlanSample, CapsAtUniverseAndRedistributes) {
  const auto ranking = tiny_ranking();
  SampleParams params;
  // Hosts weight 200:300:100 pushes the /24 (universe 256) well past
  // its frame; the overflow must land in cells with spare capacity.
  params.budget = 2000;
  const auto design = plan_sample(ranking, params);
  std::uint64_t total = 0;
  for (const auto& row : design.cells) {
    EXPECT_LE(row.draws, row.universe);
    if (row.cell == 0) {
      EXPECT_EQ(row.draws, 256u);  // capped at the /24
    }
    total += row.draws;
  }
  EXPECT_EQ(total, 2000u);  // nothing lost to the cap
}

TEST(PlanSample, BudgetExceedingFrameGoesExhaustive) {
  const auto ranking = tiny_ranking();
  SampleParams params;
  params.budget = 1u << 20;  // more than the whole frame
  const auto design = plan_sample(ranking, params);
  EXPECT_EQ(design.total_draws, design.frame_units);
  EXPECT_DOUBLE_EQ(design.probe_reduction(), 1.0);
}

TEST(PlanSample, StarvedBudgetKeepsDensestCells) {
  const auto ranking = tiny_ranking();
  SampleParams params;
  params.budget = 100;
  params.floor = 50;  // can fund the floor for only 2 of 3 cells
  const auto design = plan_sample(ranking, params);
  ASSERT_EQ(design.cells.size(), 2u);
  // Ranking order is density descending: /24 (200/256) then /22.
  EXPECT_EQ(design.cells[0].cell, 0u);
  EXPECT_EQ(design.cells[1].cell, 1u);
  EXPECT_EQ(design.total_draws, 100u);
}

TEST(PlanSample, PhiSelectsTheRankingPrefix) {
  const auto ranking = tiny_ranking();
  SampleParams params;
  params.budget = 100;
  params.floor = 10;
  params.phi = 0.3;  // the densest cell (200/600 = 0.33) suffices
  const auto design = plan_sample(ranking, params);
  ASSERT_EQ(design.cells.size(), 1u);
  EXPECT_EQ(design.cells[0].cell, 0u);
}

TEST(PlanSample, DeterministicInInputs) {
  const auto ranking = tiny_ranking();
  SampleParams params;
  params.budget = 777;
  const auto a = plan_sample(ranking, params);
  const auto b = plan_sample(ranking, params);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].draws, b.cells[i].draws);
  }
}

TEST(SampledScope, TargetsLandInsideTheirCells) {
  const auto ranking = tiny_ranking();
  SampleParams params;
  params.budget = 500;
  params.seed = 9;
  const auto design = plan_sample(ranking, params);
  const SampledScope scope(design);
  EXPECT_EQ(scope.target_count(), design.total_draws);
  EXPECT_EQ(scope.scope().address_count(), design.total_draws);
  for (std::size_t i = 0; i < design.cells.size(); ++i) {
    const auto& row = design.cells[i];
    const auto targets = scope.cell_targets(i);
    EXPECT_EQ(targets.size(), row.draws);
    for (const net::Ipv4Address addr : targets) {
      EXPECT_TRUE(row.prefix.contains(addr))
          << addr.to_string() << " outside " << row.prefix.to_string();
    }
    // Distinct targets (strata are disjoint).
    std::set<net::Ipv4Address> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), targets.size());
  }
}

TEST(SampledScope, PermutationAndShardsCoverTargetsExactlyOnce) {
  const auto ranking = tiny_ranking();
  SampleParams params;
  params.budget = 300;
  const SampledScope scope(plan_sample(ranking, params));

  std::multiset<std::uint32_t> full;
  auto it = scope.permutation(5);
  while (const auto addr = scope.next_target(it)) {
    full.insert(addr->value());
  }
  EXPECT_EQ(full.size(), scope.target_count());

  std::multiset<std::uint32_t> sharded;
  for (std::uint32_t shard = 0; shard < 3; ++shard) {
    auto part = scope.permutation_shard(5, shard, 3);
    while (const auto addr = scope.next_target(part)) {
      sharded.insert(addr->value());
    }
  }
  EXPECT_EQ(sharded, full);
}

TEST(SampledScope, ProbeMatchesEngineRunOverScope) {
  // The engine consumes scope() unchanged; per-cell attribution of the
  // engine run must equal the scope's own probe() rows.
  census::TopologyParams topo_params;
  topo_params.seed = 47;
  topo_params.l_prefix_count = 120;
  const auto topo = census::generate_topology(topo_params);
  census::PopulationParams pop;
  pop.host_scale = 0.002;
  const auto snapshot = census::generate_population(
      topo, census::protocol_profile(census::Protocol::kHttps), pop);
  const auto ranking =
      core::rank_by_density(snapshot, core::PrefixMode::kMore);

  SampleParams params;
  params.budget = 20'000;
  params.floor = 8;
  const SampledScope scope(plan_sample(ranking, params));

  const SnapshotOracle oracle(snapshot);
  const auto probed = scope.probe(
      [&](net::Ipv4Address addr) { return oracle.responds(addr); });

  const ScanEngine engine;
  const auto attributed =
      engine.run_attributed(scope.scope(), oracle, topo->m_partition);
  EXPECT_EQ(attributed.result.stats.probes_sent, probed.probes_sent);
  EXPECT_EQ(attributed.result.stats.responses, probed.hits);

  const auto folded = scope.attribute(attributed.cell_counts);
  ASSERT_EQ(folded.cells.size(), probed.cells.size());
  for (std::size_t i = 0; i < folded.cells.size(); ++i) {
    EXPECT_EQ(folded.cells[i].hits, probed.cells[i].hits)
        << "cell " << folded.cells[i].cell;
  }
}

TEST(SampledScope6, SubsamplesCandidateListsPerCell) {
  const auto records = bgp::parse_pfx2as6(
      "2001:db8::\t32\t64500\n"
      "2001:db8:8000::\t33\t64501\n"
      "2620:1::\t48\t64502\n");
  const auto table = bgp::RoutingTable6::from_pfx2as(records);
  const auto partition = table.m_partition();

  // Deterministic candidates spread over the three prefixes.
  std::vector<net::Ipv6Address> candidates;
  util::Rng rng(11);
  const net::Ipv6Address bases[] = {
      net::Ipv6Address::parse_or_throw("2001:db8::"),
      net::Ipv6Address::parse_or_throw("2001:db8:8000::"),
      net::Ipv6Address::parse_or_throw("2620:1::")};
  const std::size_t counts[] = {400, 150, 50};
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t i = 0; i < counts[p]; ++i) {
      candidates.emplace_back(bases[p].hi() | (rng() & 0xffff),
                              rng());
    }
  }

  std::vector<std::uint32_t> cell_counts(partition.size(), 0);
  std::uint64_t attributed = 0;
  std::uint64_t unattributed = 0;
  partition.tally_cells(candidates, cell_counts, attributed, unattributed);
  ASSERT_EQ(attributed, candidates.size());
  const auto ranking = core::rank_by_density(cell_counts, partition,
                                             core::PrefixMode::kMore);

  SampleParams params;
  params.budget = 120;
  params.floor = 10;
  const auto design = plan_sample(ranking, params);
  const SampledScope6 scope(design, candidates, partition);

  EXPECT_EQ(scope.target_count(), scope.design().total_draws);
  EXPECT_LE(scope.design().total_draws, params.budget);
  std::set<net::Ipv6Address> candidate_set(candidates.begin(),
                                           candidates.end());
  std::uint64_t universe_total = 0;
  for (std::size_t i = 0; i < scope.design().cells.size(); ++i) {
    const auto& row = scope.design().cells[i];
    // Re-capped universe = the cell's actual candidate count.
    EXPECT_EQ(row.universe, cell_counts[row.cell]);
    EXPECT_LE(row.draws, row.universe);
    universe_total += row.universe;
    const auto targets = scope.cell_targets(i);
    EXPECT_EQ(targets.size(), row.draws);
    for (const net::Ipv6Address addr : targets) {
      EXPECT_TRUE(candidate_set.contains(addr));
      EXPECT_TRUE(row.prefix.contains(addr));
    }
    std::set<net::Ipv6Address> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), targets.size());
  }
  EXPECT_EQ(scope.design().frame_units, universe_total);

  // Probing the candidate membership itself hits every draw.
  const auto result = scope.probe([&](net::Ipv6Address addr) {
    return candidate_set.contains(addr);
  });
  EXPECT_EQ(result.hits, result.probes_sent);
}

}  // namespace
}  // namespace tass::scan
