// Tests for core/estimator: the section-5 partial-scan population
// estimator and the marked-census generator.
#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "census/population.hpp"
#include "census/topology.hpp"

namespace tass::core {
namespace {

using census::Protocol;

TEST(PopulationEstimate, ScaleUpArithmetic) {
  const auto estimate = estimate_population(5000, 250, 0.5);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts(), 10000.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked(), 500.0);
  EXPECT_DOUBLE_EQ(estimate.marked_share(), 0.05);
  EXPECT_GT(estimate.share_stderr(), 0.0);
  EXPECT_LT(estimate.marked_low(), 500.0);
  EXPECT_GT(estimate.marked_high(), 500.0);
}

TEST(PopulationEstimate, FullCoverageIsExact) {
  const auto estimate = estimate_population(1234, 56, 1.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts(), 1234.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked(), 56.0);
}

TEST(PopulationEstimate, EmptyObservation) {
  const auto estimate = estimate_population(0, 0, 0.5);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked(), 0.0);
  EXPECT_DOUBLE_EQ(estimate.marked_share(), 0.0);
  EXPECT_DOUBLE_EQ(estimate.share_stderr(), 0.0);
}

TEST(PopulationEstimate, RejectsBadInputs) {
  EXPECT_DEATH(estimate_population(10, 20, 0.5), "Precondition");
  EXPECT_DEATH(estimate_population(10, 5, 0.0), "Precondition");
  EXPECT_DEATH(estimate_population(10, 5, 1.5), "Precondition");
}

class MarkedCensusTest : public ::testing::Test {
 protected:
  static const census::Snapshot& snapshot() {
    static const census::Snapshot instance = [] {
      census::TopologyParams params;
      params.seed = 47;
      params.l_prefix_count = 400;
      const auto topo = census::generate_topology(params);
      census::PopulationParams pop;
      pop.host_scale = 0.002;
      return census::generate_population(
          topo, census::protocol_profile(Protocol::kHttps), pop);
    }();
    return instance;
  }
};

TEST_F(MarkedCensusTest, UniformMarkingHitsTheRate) {
  const auto marked =
      mark_hosts(snapshot(), 0.05, MarkingBias::kUniform, 1);
  const double share = static_cast<double>(marked.total_marked) /
                       static_cast<double>(snapshot().total_hosts());
  EXPECT_NEAR(share, 0.05, 0.005);
  // No cell can have more marked hosts than hosts.
  const auto counts = snapshot().counts_per_cell();
  for (std::size_t cell = 0; cell < counts.size(); ++cell) {
    EXPECT_LE(marked.marked_per_cell[cell], counts[cell]);
  }
}

TEST_F(MarkedCensusTest, SparseBiasKeepsTheOverallRate) {
  const auto marked =
      mark_hosts(snapshot(), 0.05, MarkingBias::kSparseBiased, 1);
  const double share = static_cast<double>(marked.total_marked) /
                       static_cast<double>(snapshot().total_hosts());
  EXPECT_NEAR(share, 0.05, 0.01);
}

TEST_F(MarkedCensusTest, DeterministicInSeed) {
  const auto a = mark_hosts(snapshot(), 0.03, MarkingBias::kUniform, 9);
  const auto b = mark_hosts(snapshot(), 0.03, MarkingBias::kUniform, 9);
  EXPECT_EQ(a.marked_per_cell, b.marked_per_cell);
  const auto c = mark_hosts(snapshot(), 0.03, MarkingBias::kUniform, 10);
  EXPECT_NE(a.marked_per_cell, c.marked_per_cell);
}

TEST_F(MarkedCensusTest, UniformEstimateIsAccurateAtPhiHalf) {
  // The paper's section-5 hypothesis: when vulnerable hosts distribute
  // like all hosts, a phi = 0.5 TASS scan estimates them accurately.
  const auto ranking = rank_by_density(snapshot(), PrefixMode::kMore);
  SelectionParams params;
  params.phi = 0.5;
  const auto selection = select_by_density(ranking, params);
  const auto marked =
      mark_hosts(snapshot(), 0.05, MarkingBias::kUniform, 3);

  const auto estimate = estimate_population(
      selection.covered_hosts, marked.marked_in(selection),
      selection.host_coverage());
  const double error =
      std::abs(estimate.estimated_marked() -
               static_cast<double>(marked.total_marked)) /
      static_cast<double>(marked.total_marked);
  EXPECT_LT(error, 0.10);
}

TEST_F(MarkedCensusTest, SparseBiasBreaksTheEstimate) {
  // The adversarial case: vulnerable hosts concentrated in sparse (mostly
  // unselected) prefixes make the phi = 0.5 scale-up underestimate.
  const auto ranking = rank_by_density(snapshot(), PrefixMode::kMore);
  SelectionParams params;
  params.phi = 0.5;
  const auto selection = select_by_density(ranking, params);
  const auto marked =
      mark_hosts(snapshot(), 0.05, MarkingBias::kSparseBiased, 3);

  const auto estimate = estimate_population(
      selection.covered_hosts, marked.marked_in(selection),
      selection.host_coverage());
  // Underestimates by a wide margin (the dense half carries few marks).
  EXPECT_LT(estimate.estimated_marked(),
            0.8 * static_cast<double>(marked.total_marked));
}

TEST_F(MarkedCensusTest, MarkedInRequiresMoreMode) {
  const auto ranking = rank_by_density(snapshot(), PrefixMode::kLess);
  SelectionParams params;
  params.phi = 0.5;
  const auto selection = select_by_density(ranking, params);
  const auto marked = mark_hosts(snapshot(), 0.05, MarkingBias::kUniform, 2);
  EXPECT_DEATH(marked.marked_in(selection), "Precondition");
}

}  // namespace
}  // namespace tass::core
