// Tests for core/estimator: the section-5 partial-scan population
// estimator and the marked-census generator.
#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "census/population.hpp"
#include "census/topology.hpp"

namespace tass::core {
namespace {

using census::Protocol;

TEST(PopulationEstimate, ScaleUpArithmetic) {
  const auto estimate = estimate_population(5000, 250, 0.5);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts(), 10000.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked(), 500.0);
  EXPECT_DOUBLE_EQ(estimate.marked_share(), 0.05);
  EXPECT_GT(estimate.share_stderr(), 0.0);
  EXPECT_LT(estimate.marked_low(), 500.0);
  EXPECT_GT(estimate.marked_high(), 500.0);
}

TEST(PopulationEstimate, FullCoverageIsExact) {
  const auto estimate = estimate_population(1234, 56, 1.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts(), 1234.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked(), 56.0);
}

TEST(PopulationEstimate, EmptyObservation) {
  const auto estimate = estimate_population(0, 0, 0.5);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked(), 0.0);
  EXPECT_DOUBLE_EQ(estimate.marked_share(), 0.0);
  EXPECT_DOUBLE_EQ(estimate.share_stderr(), 0.0);
}

TEST(PopulationEstimate, RejectsBadInputs) {
  EXPECT_DEATH(estimate_population(10, 20, 0.5), "Precondition");
  EXPECT_DEATH(estimate_population(10, 5, 0.0), "Precondition");
  EXPECT_DEATH(estimate_population(10, 5, 1.5), "Precondition");
}

TEST(PopulationEstimate, ZeroObservedHostsHasDegenerateCi) {
  const auto estimate = estimate_population(0, 0, 0.25);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts(), 0.0);
  EXPECT_DOUBLE_EQ(estimate.marked_low(), 0.0);
  EXPECT_DOUBLE_EQ(estimate.marked_high(), 0.0);
}

TEST(PopulationEstimate, AllObservedMarkedSaturatesTheShare) {
  const auto estimate = estimate_population(200, 200, 0.5);
  EXPECT_DOUBLE_EQ(estimate.marked_share(), 1.0);
  EXPECT_DOUBLE_EQ(estimate.share_stderr(), 0.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked(), estimate.estimated_hosts());
  EXPECT_DOUBLE_EQ(estimate.marked_low(), estimate.estimated_hosts());
  EXPECT_DOUBLE_EQ(estimate.marked_high(), estimate.estimated_hosts());
}

TEST(PopulationEstimate, CiClampsToTheValidRange) {
  // A rare mark: the naive low endpoint would go negative.
  const auto rare = estimate_population(10, 1, 0.5);
  EXPECT_DOUBLE_EQ(rare.marked_low(), 0.0);
  EXPECT_GT(rare.marked_high(), rare.estimated_marked());
  // A near-universal mark: the naive high endpoint would exceed the
  // estimated host population.
  const auto common = estimate_population(10, 9, 0.5);
  EXPECT_DOUBLE_EQ(common.marked_high(), common.estimated_hosts());
  EXPECT_LT(common.marked_low(), common.estimated_marked());
}

TEST(PopulationEstimate, CoverageOneKeepsCiInsideTheObservation) {
  const auto estimate = estimate_population(400, 100, 1.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts(), 400.0);
  EXPECT_GE(estimate.marked_low(), 0.0);
  EXPECT_LE(estimate.marked_high(), 400.0);
  EXPECT_LT(estimate.marked_low(), 100.0);
  EXPECT_GT(estimate.marked_high(), 100.0);
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
  EXPECT_LT(normal_quantile(0.1), normal_quantile(0.9));
  EXPECT_DEATH(normal_quantile(0.0), "Precondition");
  EXPECT_DEATH(normal_quantile(1.0), "Precondition");
}

// A single-cell ranking/sample pair for exercising the per-cell
// scale-up edge cases in isolation.
struct TinySample {
  DensityRanking ranking;
  scan::SampleResult sample;
};

TinySample tiny_sample(std::uint64_t universe, std::uint64_t draws,
                       std::uint64_t hits, std::uint64_t marked_hits) {
  TinySample out;
  RankedPrefix entry;
  entry.index = 0;
  entry.prefix = net::Prefix::parse_or_throw("10.0.0.0/24");
  entry.size = entry.prefix.size();
  entry.hosts = hits;
  entry.density = 0.5;
  entry.host_share = 1.0;
  out.ranking.mode = PrefixMode::kMore;
  out.ranking.total_hosts = entry.hosts;
  out.ranking.advertised_addresses = entry.size;
  out.ranking.ranked.push_back(entry);

  scan::SampleCellResult cell;
  cell.cell = 0;
  cell.universe = universe;
  cell.draws = draws;
  cell.hits = hits;
  cell.marked_hits = marked_hits;
  out.sample.cells.push_back(cell);
  out.sample.probes_sent = draws;
  out.sample.hits = hits;
  out.sample.marked_hits = marked_hits;
  out.sample.frame_units = universe;
  return out;
}

TEST(EstimateFromSample, ZeroHitCellStaysHonest) {
  const auto tiny = tiny_sample(1000, 50, 0, 0);
  const auto estimate = estimate_from_sample(tiny.sample, tiny.ranking);
  ASSERT_EQ(estimate.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(estimate.cells[0].estimated, 0.0);
  EXPECT_DOUBLE_EQ(estimate.cells[0].low, 0.0);
  // The (k+1/2)/(n+1) smoothing keeps the upper endpoint off zero: no
  // observed hits never proves an empty cell.
  EXPECT_GT(estimate.cells[0].high, 0.0);
  EXPECT_LE(estimate.cells[0].high, 1000.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts, 0.0);
  EXPECT_GT(estimate.hosts_high, 0.0);
}

TEST(EstimateFromSample, FullDrawsCollapseTheInterval) {
  // draws == universe: the finite-population correction zeroes the
  // variance and the estimate is the exhaustive count.
  const auto tiny = tiny_sample(64, 64, 17, 5);
  const auto estimate = estimate_from_sample(tiny.sample, tiny.ranking);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts, 17.0);
  EXPECT_DOUBLE_EQ(estimate.hosts_low, 17.0);
  EXPECT_DOUBLE_EQ(estimate.hosts_high, 17.0);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked, 5.0);
  EXPECT_DOUBLE_EQ(estimate.marked_low, 5.0);
  EXPECT_DOUBLE_EQ(estimate.marked_high, 5.0);
}

TEST(EstimateFromSample, AllHitsMarkedTracksTheHostEstimate) {
  const auto tiny = tiny_sample(500, 40, 12, 12);
  const auto estimate = estimate_from_sample(tiny.sample, tiny.ranking);
  EXPECT_DOUBLE_EQ(estimate.estimated_marked, estimate.estimated_hosts);
  EXPECT_DOUBLE_EQ(estimate.marked_low, estimate.hosts_low);
  EXPECT_DOUBLE_EQ(estimate.marked_high, estimate.hosts_high);
}

TEST(EstimateFromSample, TotalsClampToTheFrame) {
  // Every draw hit: the point estimate is the whole frame, so the upper
  // endpoint must clamp to frame_units rather than exceed it.
  const auto tiny = tiny_sample(100, 2, 2, 0);
  const auto estimate = estimate_from_sample(tiny.sample, tiny.ranking);
  EXPECT_DOUBLE_EQ(estimate.estimated_hosts, 100.0);
  EXPECT_DOUBLE_EQ(estimate.hosts_high, 100.0);
  EXPECT_GE(estimate.hosts_low, 0.0);
}

TEST(EstimateFromSample, UndrawnCellKeepsFullUncertainty) {
  // draws == 0 (a cell planned but never probed, e.g. an aborted scan):
  // the only honest interval is [0, universe].
  auto tiny = tiny_sample(100, 0, 0, 0);
  tiny.sample.probes_sent = 0;
  const auto estimate = estimate_from_sample(tiny.sample, tiny.ranking);
  ASSERT_EQ(estimate.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(estimate.cells[0].estimated, 0.0);
  EXPECT_DOUBLE_EQ(estimate.cells[0].low, 0.0);
  EXPECT_DOUBLE_EQ(estimate.cells[0].high, 100.0);
}

TEST(EstimateFromSample, RejectsInconsistentInputs) {
  {
    auto tiny = tiny_sample(100, 10, 3, 1);
    tiny.sample.cells[0].hits = 11;  // more hits than draws
    EXPECT_DEATH(estimate_from_sample(tiny.sample, tiny.ranking),
                 "Precondition");
  }
  {
    auto tiny = tiny_sample(100, 10, 3, 1);
    tiny.sample.cells[0].cell = 7;  // not a cell of the ranking
    EXPECT_DEATH(estimate_from_sample(tiny.sample, tiny.ranking),
                 "Precondition");
  }
  {
    const auto tiny = tiny_sample(100, 10, 3, 1);
    EXPECT_DEATH(estimate_from_sample(tiny.sample, tiny.ranking, 1.0),
                 "Precondition");
  }
}

class MarkedCensusTest : public ::testing::Test {
 protected:
  static const census::Snapshot& snapshot() {
    static const census::Snapshot instance = [] {
      census::TopologyParams params;
      params.seed = 47;
      params.l_prefix_count = 400;
      const auto topo = census::generate_topology(params);
      census::PopulationParams pop;
      pop.host_scale = 0.002;
      return census::generate_population(
          topo, census::protocol_profile(Protocol::kHttps), pop);
    }();
    return instance;
  }
};

TEST_F(MarkedCensusTest, UniformMarkingHitsTheRate) {
  const auto marked =
      mark_hosts(snapshot(), 0.05, MarkingBias::kUniform, 1);
  const double share = static_cast<double>(marked.total_marked) /
                       static_cast<double>(snapshot().total_hosts());
  EXPECT_NEAR(share, 0.05, 0.005);
  // No cell can have more marked hosts than hosts.
  const auto counts = snapshot().counts_per_cell();
  for (std::size_t cell = 0; cell < counts.size(); ++cell) {
    EXPECT_LE(marked.marked_per_cell[cell], counts[cell]);
  }
}

TEST_F(MarkedCensusTest, SparseBiasKeepsTheOverallRate) {
  const auto marked =
      mark_hosts(snapshot(), 0.05, MarkingBias::kSparseBiased, 1);
  const double share = static_cast<double>(marked.total_marked) /
                       static_cast<double>(snapshot().total_hosts());
  EXPECT_NEAR(share, 0.05, 0.01);
}

TEST_F(MarkedCensusTest, DeterministicInSeed) {
  const auto a = mark_hosts(snapshot(), 0.03, MarkingBias::kUniform, 9);
  const auto b = mark_hosts(snapshot(), 0.03, MarkingBias::kUniform, 9);
  EXPECT_EQ(a.marked_per_cell, b.marked_per_cell);
  const auto c = mark_hosts(snapshot(), 0.03, MarkingBias::kUniform, 10);
  EXPECT_NE(a.marked_per_cell, c.marked_per_cell);
}

TEST_F(MarkedCensusTest, UniformEstimateIsAccurateAtPhiHalf) {
  // The paper's section-5 hypothesis: when vulnerable hosts distribute
  // like all hosts, a phi = 0.5 TASS scan estimates them accurately.
  const auto ranking = rank_by_density(snapshot(), PrefixMode::kMore);
  SelectionParams params;
  params.phi = 0.5;
  const auto selection = select_by_density(ranking, params);
  const auto marked =
      mark_hosts(snapshot(), 0.05, MarkingBias::kUniform, 3);

  const auto estimate = estimate_population(
      selection.covered_hosts, marked.marked_in(selection),
      selection.host_coverage());
  const double error =
      std::abs(estimate.estimated_marked() -
               static_cast<double>(marked.total_marked)) /
      static_cast<double>(marked.total_marked);
  EXPECT_LT(error, 0.10);
}

TEST_F(MarkedCensusTest, SparseBiasBreaksTheEstimate) {
  // The adversarial case: vulnerable hosts concentrated in sparse (mostly
  // unselected) prefixes make the phi = 0.5 scale-up underestimate.
  const auto ranking = rank_by_density(snapshot(), PrefixMode::kMore);
  SelectionParams params;
  params.phi = 0.5;
  const auto selection = select_by_density(ranking, params);
  const auto marked =
      mark_hosts(snapshot(), 0.05, MarkingBias::kSparseBiased, 3);

  const auto estimate = estimate_population(
      selection.covered_hosts, marked.marked_in(selection),
      selection.host_coverage());
  // Underestimates by a wide margin (the dense half carries few marks).
  EXPECT_LT(estimate.estimated_marked(),
            0.8 * static_cast<double>(marked.total_marked));
}

TEST_F(MarkedCensusTest, MarkedInRequiresMoreMode) {
  const auto ranking = rank_by_density(snapshot(), PrefixMode::kLess);
  SelectionParams params;
  params.phi = 0.5;
  const auto selection = select_by_density(ranking, params);
  const auto marked = mark_hosts(snapshot(), 0.05, MarkingBias::kUniform, 2);
  EXPECT_DEATH(marked.marked_in(selection), "Precondition");
}

}  // namespace
}  // namespace tass::core
