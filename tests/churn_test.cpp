// Tests for census/churn: the monthly evolution operator behind
// Figures 5 and 6.
#include "census/churn.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "census/population.hpp"
#include "census/series.hpp"

namespace tass::census {
namespace {

std::shared_ptr<const Topology> test_topology() {
  static const auto topo = [] {
    TopologyParams params;
    params.seed = 31;
    params.l_prefix_count = 600;
    return generate_topology(params);
  }();
  return topo;
}

Snapshot seed_snapshot(Protocol protocol) {
  PopulationParams params;
  params.host_scale = 0.002;
  params.seed = 4;
  return generate_population(test_topology(), protocol_profile(protocol),
                             params);
}

TEST(Churn, Deterministic) {
  const Snapshot seed = seed_snapshot(Protocol::kHttp);
  const auto& profile = protocol_profile(Protocol::kHttp);
  const Snapshot a = advance_month(seed, profile, 123);
  const Snapshot b = advance_month(seed, profile, 123);
  EXPECT_EQ(a.addresses(), b.addresses());
  const Snapshot c = advance_month(seed, profile, 124);
  EXPECT_NE(a.addresses(), c.addresses());
}

TEST(Churn, AdvancesMonthIndex) {
  const Snapshot seed = seed_snapshot(Protocol::kFtp);
  const auto& profile = protocol_profile(Protocol::kFtp);
  const Snapshot next = advance_month(seed, profile, 1);
  EXPECT_EQ(next.month_index(), 1);
  EXPECT_EQ(advance_month(next, profile, 1).month_index(), 2);
  EXPECT_EQ(next.protocol(), Protocol::kFtp);
}

TEST(Churn, PopulationIsRoughlyStationary) {
  Snapshot snapshot = seed_snapshot(Protocol::kCwmp);
  const auto& profile = protocol_profile(Protocol::kCwmp);
  const double initial = static_cast<double>(snapshot.total_hosts());
  for (int month = 0; month < 6; ++month) {
    snapshot = advance_month(snapshot, profile, 55);
    EXPECT_NEAR(static_cast<double>(snapshot.total_hosts()), initial,
                initial * 0.03);
  }
}

TEST(Churn, StableHostsKeepTheirAddresses) {
  const Snapshot seed = seed_snapshot(Protocol::kHttp);
  const auto& profile = protocol_profile(Protocol::kHttp);
  const Snapshot next = advance_month(seed, profile, 9);

  // Count how many stable addresses survive in place: expected fraction is
  // (1 - monthly_death_rate); births may add a few more coincidentally.
  std::uint64_t stable_before = 0;
  std::uint64_t survived = 0;
  for (std::uint32_t cell = 0; cell < seed.cell_count(); ++cell) {
    const auto& old_stable = seed.cell(cell).stable;
    const auto& new_stable = next.cell(cell).stable;
    stable_before += old_stable.size();
    for (const std::uint32_t offset : old_stable) {
      if (std::binary_search(new_stable.begin(), new_stable.end(), offset)) {
        ++survived;
      }
    }
  }
  const double survival = static_cast<double>(survived) /
                          static_cast<double>(stable_before);
  EXPECT_NEAR(survival, 1.0 - profile.monthly_death_rate, 0.01);
}

TEST(Churn, VolatileHostsReshuffle) {
  const Snapshot seed = seed_snapshot(Protocol::kCwmp);
  const auto& profile = protocol_profile(Protocol::kCwmp);
  const Snapshot next = advance_month(seed, profile, 9);

  // A volatile address surviving in place should be rare: the new offset
  // collides with the old one only by chance (~density).
  std::uint64_t volatile_before = 0;
  std::uint64_t in_place = 0;
  for (std::uint32_t cell = 0; cell < seed.cell_count(); ++cell) {
    const auto& old_volatile = seed.cell(cell).volatile_hosts;
    const auto& new_volatile = next.cell(cell).volatile_hosts;
    volatile_before += old_volatile.size();
    for (const std::uint32_t offset : old_volatile) {
      if (std::binary_search(new_volatile.begin(), new_volatile.end(),
                             offset)) {
        ++in_place;
      }
    }
  }
  EXPECT_LT(static_cast<double>(in_place),
            0.05 * static_cast<double>(volatile_before));
  // But the volatile *population* persists (sizes stay comparable).
  std::uint64_t volatile_after = 0;
  for (std::uint32_t cell = 0; cell < next.cell_count(); ++cell) {
    volatile_after += next.cell(cell).volatile_hosts.size();
  }
  EXPECT_NEAR(static_cast<double>(volatile_after),
              static_cast<double>(volatile_before),
              static_cast<double>(volatile_before) * 0.1);
}

TEST(Churn, HostsStayInsideTheirCells) {
  const Snapshot seed = seed_snapshot(Protocol::kTelnet);
  const auto& profile = protocol_profile(Protocol::kTelnet);
  Snapshot snapshot = advance_month(seed, profile, 2);
  const auto topo = snapshot.topology_ptr();
  for (std::uint32_t cell = 0; cell < snapshot.cell_count(); ++cell) {
    const std::uint64_t size = topo->m_partition.prefix(cell).size();
    const CellPopulation& population = snapshot.cell(cell);
    if (!population.stable.empty()) {
      EXPECT_LT(population.stable.back(), size);
      EXPECT_TRUE(std::is_sorted(population.stable.begin(),
                                 population.stable.end()));
    }
    if (!population.volatile_hosts.empty()) {
      EXPECT_LT(population.volatile_hosts.back(), size);
    }
    // No duplicate across the stable/volatile split.
    std::vector<std::uint32_t> intersection;
    std::set_intersection(population.stable.begin(), population.stable.end(),
                          population.volatile_hosts.begin(),
                          population.volatile_hosts.end(),
                          std::back_inserter(intersection));
    EXPECT_TRUE(intersection.empty());
  }
}

TEST(Churn, SeedsPreviouslyEmptyCells) {
  // The mechanism behind TASS decay: after several months some hosts must
  // live in cells that were empty at t0.
  const Snapshot seed = seed_snapshot(Protocol::kCwmp);
  const auto& profile = protocol_profile(Protocol::kCwmp);
  Snapshot snapshot = seed;
  for (int month = 0; month < 4; ++month) {
    snapshot = advance_month(snapshot, profile, 77);
  }
  const auto counts0 = seed.counts_per_cell();
  const auto counts4 = snapshot.counts_per_cell();
  std::uint64_t hosts_in_new_cells = 0;
  for (std::size_t cell = 0; cell < counts0.size(); ++cell) {
    if (counts0[cell] == 0) hosts_in_new_cells += counts4[cell];
  }
  EXPECT_GT(hosts_in_new_cells, 0u);
  // ... but only a few percent of the population (linear, slow decay).
  EXPECT_LT(static_cast<double>(hosts_in_new_cells),
            0.08 * static_cast<double>(snapshot.total_hosts()));
}

TEST(CensusSeries, GeneratesRequestedMonths) {
  SeriesParams params;
  params.months = 4;
  params.host_scale = 0.002;
  params.seed = 3;
  const auto series = CensusSeries::generate(test_topology(),
                                             Protocol::kHttps, params);
  EXPECT_EQ(series.month_count(), 4);
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(series.month(m).month_index(), m);
    EXPECT_EQ(series.month(m).protocol(), Protocol::kHttps);
  }
  // Deterministic regeneration.
  const auto again = CensusSeries::generate(test_topology(),
                                            Protocol::kHttps, params);
  EXPECT_EQ(series.month(3).addresses(), again.month(3).addresses());
}

}  // namespace
}  // namespace tass::census
