// Tests for report/table and report/series: the emitters behind every
// bench binary.
#include "report/series.hpp"
#include "report/table.hpp"

#include <gtest/gtest.h>

namespace tass::report {
namespace {

TEST(Table, TextAlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "10,000"});
  const std::string text = table.to_text();
  EXPECT_NE(text.find("name   value"), std::string::npos);
  EXPECT_NE(text.find("alpha  1"), std::string::npos);
  EXPECT_NE(text.find("b      10,000"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, CellFormatters) {
  EXPECT_EQ(Table::cell(static_cast<std::uint64_t>(1234567)), "1,234,567");
  EXPECT_EQ(Table::cell(0.12345, 3), "0.123");
  EXPECT_EQ(Table::cell("text"), "text");
}

TEST(Table, CsvEscapesSpecialCells) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("plain,\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(Table, MarkdownHasHeaderRule) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "Precondition");
}

TEST(SeriesSet, EmitsTsvWithHeader) {
  SeriesSet set("month");
  set.set_ticks({"09/15", "10/15"});
  set.add_series("ftp", {1.0, 0.9971});
  set.add_series("http", {1.0, 0.9969});
  const std::string tsv = set.to_tsv();
  EXPECT_NE(tsv.find("month\tftp\thttp"), std::string::npos);
  EXPECT_NE(tsv.find("09/15\t1.0000\t1.0000"), std::string::npos);
  EXPECT_NE(tsv.find("10/15\t0.9971\t0.9969"), std::string::npos);
}

TEST(SeriesSet, RejectsLengthMismatch) {
  SeriesSet set("x");
  set.set_ticks({"a", "b"});
  set.add_series("s", {1.0});
  EXPECT_DEATH(set.to_tsv(), "Precondition");
}

}  // namespace
}  // namespace tass::report
