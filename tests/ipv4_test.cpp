// Unit tests for net/ipv4: parsing, formatting, ordering, octet access.
#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tass::net {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  const auto addr = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0xC0000201u);
}

TEST(Ipv4Address, ParsesBoundaries) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(Ipv4Address::parse(" 1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1..3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.-4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
}

TEST(Ipv4Address, RejectsLeadingZeros) {
  EXPECT_FALSE(Ipv4Address::parse("01.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.02.3.4").has_value());
  EXPECT_TRUE(Ipv4Address::parse("0.2.3.4").has_value());
}

TEST(Ipv4Address, ParseOrThrowThrowsParseError) {
  EXPECT_THROW(Ipv4Address::parse_or_throw("not-an-ip"), ParseError);
  EXPECT_EQ(Ipv4Address::parse_or_throw("10.0.0.1").value(), 0x0A000001u);
}

TEST(Ipv4Address, RoundTripsThroughString) {
  for (const char* text : {"0.0.0.0", "10.1.2.3", "172.16.254.1",
                           "255.255.255.255", "8.8.8.8"}) {
    const auto addr = Ipv4Address::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->to_string(), text);
  }
}

TEST(Ipv4Address, OctetAccess) {
  const Ipv4Address addr = Ipv4Address::from_octets(192, 168, 1, 42);
  EXPECT_EQ(addr.octet(0), 192);
  EXPECT_EQ(addr.octet(1), 168);
  EXPECT_EQ(addr.octet(2), 1);
  EXPECT_EQ(addr.octet(3), 42);
}

TEST(Ipv4Address, OrdersNumerically) {
  EXPECT_LT(Ipv4Address::parse_or_throw("1.2.3.4"),
            Ipv4Address::parse_or_throw("1.2.3.5"));
  EXPECT_LT(Ipv4Address::parse_or_throw("9.255.255.255"),
            Ipv4Address::parse_or_throw("10.0.0.0"));
  EXPECT_EQ(Ipv4Address::parse_or_throw("10.0.0.1"),
            Ipv4Address(0x0A000001u));
}

}  // namespace
}  // namespace tass::net
