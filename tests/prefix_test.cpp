// Tests for net/prefix: canonicalisation, containment, navigation and the
// minimal-CIDR-cover primitive.
#include "net/prefix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::net {
namespace {

TEST(Prefix, CanonicalisesHostBits) {
  const Prefix prefix(Ipv4Address::parse_or_throw("192.0.2.77"), 24);
  EXPECT_EQ(prefix.to_string(), "192.0.2.0/24");
  EXPECT_EQ(Prefix(Ipv4Address(~0u), 0).to_string(), "0.0.0.0/0");
}

TEST(Prefix, ParseAcceptsAndCanonicalises) {
  const auto prefix = Prefix::parse("10.1.2.3/8");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->to_string(), "10.0.0.0/8");
}

TEST(Prefix, ParseStrictRejectsHostBits) {
  EXPECT_FALSE(Prefix::parse_strict("10.1.2.3/8").has_value());
  EXPECT_TRUE(Prefix::parse_strict("10.0.0.0/8").has_value());
  EXPECT_TRUE(Prefix::parse_strict("10.1.2.3/32").has_value());
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0/8").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/08x").has_value());
  EXPECT_THROW(Prefix::parse_or_throw("bogus"), ParseError);
}

TEST(Prefix, MaskValues) {
  EXPECT_EQ(Prefix::mask(0), 0u);
  EXPECT_EQ(Prefix::mask(8), 0xFF000000u);
  EXPECT_EQ(Prefix::mask(24), 0xFFFFFF00u);
  EXPECT_EQ(Prefix::mask(32), 0xFFFFFFFFu);
}

TEST(Prefix, SizeAndBounds) {
  const Prefix slash0 = Prefix::parse_or_throw("0.0.0.0/0");
  EXPECT_EQ(slash0.size(), 1ULL << 32);
  const Prefix p = Prefix::parse_or_throw("192.168.4.0/22");
  EXPECT_EQ(p.size(), 1024u);
  EXPECT_EQ(p.first().to_string(), "192.168.4.0");
  EXPECT_EQ(p.last().to_string(), "192.168.7.255");
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = Prefix::parse_or_throw("172.16.0.0/12");
  EXPECT_TRUE(p.contains(Ipv4Address::parse_or_throw("172.16.0.0")));
  EXPECT_TRUE(p.contains(Ipv4Address::parse_or_throw("172.31.255.255")));
  EXPECT_FALSE(p.contains(Ipv4Address::parse_or_throw("172.32.0.0")));
  EXPECT_FALSE(p.contains(Ipv4Address::parse_or_throw("172.15.255.255")));
}

TEST(Prefix, ContainsPrefixIsReflexiveAndAntisymmetric) {
  const Prefix outer = Prefix::parse_or_throw("10.0.0.0/8");
  const Prefix inner = Prefix::parse_or_throw("10.32.0.0/12");
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.overlaps(inner));
  EXPECT_TRUE(inner.overlaps(outer));
  const Prefix disjoint = Prefix::parse_or_throw("11.0.0.0/8");
  EXPECT_FALSE(outer.overlaps(disjoint));
}

TEST(Prefix, HalvesTileTheParent) {
  const Prefix p = Prefix::parse_or_throw("100.0.0.0/8");
  EXPECT_EQ(p.lower_half().to_string(), "100.0.0.0/9");
  EXPECT_EQ(p.upper_half().to_string(), "100.128.0.0/9");
  EXPECT_EQ(p.lower_half().size() + p.upper_half().size(), p.size());
  EXPECT_EQ(p.lower_half().parent(), p);
  EXPECT_EQ(p.upper_half().parent(), p);
  EXPECT_EQ(p.lower_half().sibling(), p.upper_half());
  EXPECT_EQ(p.upper_half().sibling(), p.lower_half());
}

TEST(Prefix, AtAndOffsetRoundTrip) {
  const Prefix p = Prefix::parse_or_throw("198.51.100.0/24");
  const Ipv4Address addr = p.at(37);
  EXPECT_EQ(addr.to_string(), "198.51.100.37");
  EXPECT_EQ(p.offset_of(addr), 37u);
}

TEST(Prefix, OrderingSortsContainedAfterContainer) {
  const Prefix a = Prefix::parse_or_throw("10.0.0.0/8");
  const Prefix b = Prefix::parse_or_throw("10.0.0.0/12");
  const Prefix c = Prefix::parse_or_throw("10.16.0.0/12");
  const Prefix d = Prefix::parse_or_throw("11.0.0.0/8");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
}

TEST(CoverRange, SingleAddress) {
  const auto cover = cover_range(Ipv4Address(5), Ipv4Address(5));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].to_string(), "0.0.0.5/32");
}

TEST(CoverRange, ExactPrefix) {
  const Prefix p = Prefix::parse_or_throw("192.168.0.0/16");
  const auto cover = cover_range(p.first(), p.last());
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], p);
}

TEST(CoverRange, FullSpace) {
  const auto cover = cover_range(Ipv4Address(0), Ipv4Address(~0u));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].length(), 0);
}

TEST(CoverRange, UnalignedRangeIsMinimal) {
  // [10.0.0.1, 10.0.0.6] -> /32, /31, /31 /32? Minimal cover:
  // 1 /32 (.1), 2 /31 (.2-.3, .4-.5), 1 /32 (.6) = 4 prefixes.
  const auto cover = cover_range(Ipv4Address::parse_or_throw("10.0.0.1"),
                                 Ipv4Address::parse_or_throw("10.0.0.6"));
  ASSERT_EQ(cover.size(), 4u);
  EXPECT_EQ(cover[0].to_string(), "10.0.0.1/32");
  EXPECT_EQ(cover[1].to_string(), "10.0.0.2/31");
  EXPECT_EQ(cover[2].to_string(), "10.0.0.4/31");
  EXPECT_EQ(cover[3].to_string(), "10.0.0.6/32");
}

// Property sweep: random ranges are covered exactly, disjointly and in
// order.
class CoverRangeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverRangeProperty, CoversExactlyAndDisjointly) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto a = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    const auto b = static_cast<std::uint32_t>(rng.bounded(1ULL << 32));
    const Ipv4Address lo(std::min(a, b));
    const Ipv4Address hi(std::max(a, b));
    const auto cover = cover_range(lo, hi);

    ASSERT_FALSE(cover.empty());
    // In order, adjacent, and sized exactly.
    std::uint64_t total = 0;
    std::uint64_t expected_next = lo.value();
    for (const Prefix prefix : cover) {
      EXPECT_EQ(prefix.first().value(), expected_next);
      expected_next = prefix.first().value() + prefix.size();
      total += prefix.size();
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(hi.value()) - lo.value() + 1);
    // Minimality: at most 2 prefixes per bit level.
    EXPECT_LE(cover.size(), 62u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverRangeProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tass::net
