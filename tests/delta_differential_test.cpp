// Randomized churn-replay differential suite for the incremental delta
// pipeline (PR-2-style: seeded generators, an independent from-scratch
// oracle, exact equality).
//
// Per seed, a synthetic world (disjoint prefix table + host population)
// replays >= 10 churn steps. Each step draws BGP churn (withdrawals,
// deaggregation splits, aggregation merges, reorigins) and host churn,
// round-trips the RibDelta through the MRT BGP4MP update codec, patches
// the partition in place, and runs core::churn_step. After every step the
// delta-applied state must be *bit-identical* to a full rebuild:
//   * counts        == re-attributing the whole scope from scratch,
//   * ranking       == rank_by_density over the same partition (every
//                      field, float bits included),
//   * LpmIndex      == a fresh index built from the patched entry table,
//   * partition     == a freshly constructed partition over the live
//                      prefix set (semantically: locate -> same prefix),
//   * fresh ranking == the incremental one on (prefix, hosts, density,
//                      host_share), cell numbering aside.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "bgp/partition.hpp"
#include "bgp/rib_delta.hpp"
#include "census/topology.hpp"
#include "core/ranking.hpp"
#include "core/reseed.hpp"
#include "net/interval.hpp"
#include "scan/engine.hpp"
#include "scan/scope.hpp"
#include "util/rng.hpp"

namespace tass {
namespace {

// Probe oracle over a sorted, duplicate-free address vector, with the
// batched interval queries the enumerate path needs (binary search; the
// per-address default would make full-scope reference scans quadratic).
class VectorOracle final : public scan::ProbeOracle {
 public:
  explicit VectorOracle(std::vector<std::uint32_t> hosts)
      : hosts_(std::move(hosts)) {}

  bool responds(net::Ipv4Address addr) const override {
    return std::binary_search(hosts_.begin(), hosts_.end(), addr.value());
  }
  std::uint64_t count_responsive(net::Interval interval) const override {
    return static_cast<std::uint64_t>(range(interval).second -
                                      range(interval).first);
  }
  void collect_responsive(net::Interval interval,
                          std::vector<std::uint32_t>& out) const override {
    const auto [first, last] = range(interval);
    out.insert(out.end(), first, last);
  }

 private:
  std::pair<std::vector<std::uint32_t>::const_iterator,
            std::vector<std::uint32_t>::const_iterator>
  range(net::Interval interval) const {
    return {std::lower_bound(hosts_.begin(), hosts_.end(),
                             interval.first.value()),
            std::upper_bound(hosts_.begin(), hosts_.end(),
                             interval.last.value())};
  }

  std::vector<std::uint32_t> hosts_;
};

std::vector<std::uint32_t> attribute_from_scratch(
    const bgp::PrefixPartition& partition, const scan::ProbeOracle& oracle,
    const scan::ScanEngine& engine) {
  const scan::ScanScope scope(
      net::IntervalSet::of_prefixes(partition.live_prefixes()));
  const auto attributed = engine.run_attributed(scope, oracle, partition);
  std::vector<std::uint32_t> counts(attributed.cell_counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>(attributed.cell_counts[i]);
  }
  return counts;
}

void expect_rankings_bit_identical(const core::DensityRanking& got,
                                   const core::DensityRanking& want) {
  EXPECT_EQ(got.mode, want.mode);
  EXPECT_EQ(got.total_hosts, want.total_hosts);
  EXPECT_EQ(got.advertised_addresses, want.advertised_addresses);
  ASSERT_EQ(got.ranked.size(), want.ranked.size());
  for (std::size_t i = 0; i < got.ranked.size(); ++i) {
    const core::RankedPrefix& a = got.ranked[i];
    const core::RankedPrefix& b = want.ranked[i];
    ASSERT_EQ(a.index, b.index) << "rank " << i;
    ASSERT_EQ(a.prefix, b.prefix) << "rank " << i;
    ASSERT_EQ(a.size, b.size) << "rank " << i;
    ASSERT_EQ(a.hosts, b.hosts) << "rank " << i;
    // Exact float equality is the contract, not a tolerance.
    ASSERT_EQ(a.density, b.density) << "rank " << i;
    ASSERT_EQ(a.host_share, b.host_share) << "rank " << i;
  }
}

struct World {
  std::vector<bgp::Pfx2AsRecord> table;   // live routes, any order
  std::vector<std::uint32_t> hosts;       // sorted responsive addresses
};

World generate_world(std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<net::Prefix> space{
      net::Prefix::parse_or_throw("4.0.0.0/6"),
      net::Prefix::parse_or_throw("64.0.0.0/6"),
      net::Prefix::parse_or_throw("128.0.0.0/6"),
      net::Prefix::parse_or_throw("196.0.0.0/6"),
  };
  census::BuddyAllocator allocator(space);
  World world;
  for (int i = 0; i < 2200; ++i) {
    const int length = 18 + static_cast<int>(rng.bounded(11));  // /18../28
    const auto prefix = allocator.allocate(length, rng);
    if (!prefix) continue;
    world.table.push_back(
        {*prefix, {static_cast<std::uint32_t>(1 + rng.bounded(500))}});
  }
  for (const auto& record : world.table) {
    if (!rng.chance(0.6)) continue;
    const std::uint64_t population = 1 + rng.bounded(16);
    for (std::uint64_t h = 0; h < population; ++h) {
      world.hosts.push_back(record.prefix.network().value() +
                            static_cast<std::uint32_t>(
                                rng.bounded(record.prefix.size())));
    }
  }
  std::sort(world.hosts.begin(), world.hosts.end());
  world.hosts.erase(std::unique(world.hosts.begin(), world.hosts.end()),
                    world.hosts.end());
  return world;
}

// Draws one step of BGP churn against the current table: withdrawals,
// deaggregation splits, aggregation merges, and reorigins.
bgp::RibDelta draw_churn(const std::vector<bgp::Pfx2AsRecord>& table,
                         util::Rng& rng) {
  std::vector<std::size_t> order(table.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(std::span(order));

  // Sorted prefix view for sibling lookups.
  std::vector<net::Prefix> sorted;
  sorted.reserve(table.size());
  for (const auto& record : table) sorted.push_back(record.prefix);
  std::sort(sorted.begin(), sorted.end());
  const auto is_live = [&](net::Prefix p) {
    return std::binary_search(sorted.begin(), sorted.end(), p);
  };

  bgp::RibDelta delta;
  std::vector<bool> used(table.size(), false);
  std::size_t cursor = 0;
  const auto next_unused = [&]() -> std::optional<std::size_t> {
    while (cursor < order.size() && used[order[cursor]]) ++cursor;
    if (cursor == order.size()) return std::nullopt;
    used[order[cursor]] = true;
    return order[cursor++];
  };

  const std::size_t withdrawals = 1 + rng.bounded(10);
  for (std::size_t k = 0; k < withdrawals; ++k) {
    if (const auto i = next_unused()) {
      delta.withdraw.push_back(table[*i].prefix);
    }
  }
  const std::size_t splits = 1 + rng.bounded(8);
  for (std::size_t k = 0; k < splits; ++k) {
    if (const auto i = next_unused()) {
      const net::Prefix prefix = table[*i].prefix;
      if (prefix.length() >= 30) continue;  // withdrawn, never split
      delta.withdraw.push_back(prefix);
      delta.announce.push_back({prefix.lower_half(), table[*i].origins});
      delta.announce.push_back({prefix.upper_half(), table[*i].origins});
    }
  }
  const std::size_t merges = 1 + rng.bounded(6);
  for (std::size_t k = 0; k < merges; ++k) {
    if (const auto i = next_unused()) {
      const net::Prefix prefix = table[*i].prefix;
      const net::Prefix sibling = prefix.sibling();
      if (prefix.length() == 0 || !is_live(sibling)) continue;
      // Only merge when the sibling is unused so far this step.
      const auto sib = std::find_if(
          table.begin(), table.end(),
          [&](const bgp::Pfx2AsRecord& r) { return r.prefix == sibling; });
      const auto sib_index =
          static_cast<std::size_t>(sib - table.begin());
      if (used[sib_index]) continue;
      used[sib_index] = true;
      delta.withdraw.push_back(prefix);
      delta.withdraw.push_back(sibling);
      delta.announce.push_back({prefix.parent(), table[*i].origins});
    }
  }
  const std::size_t reorigins = 1 + rng.bounded(6);
  for (std::size_t k = 0; k < reorigins; ++k) {
    if (const auto i = next_unused()) {
      delta.reorigin.push_back(
          {table[*i].prefix,
           {table[*i].origins.front() + 1 +
            static_cast<std::uint32_t>(rng.bounded(100))}});
    }
  }

  const auto by_prefix = [](const bgp::Pfx2AsRecord& a,
                            const bgp::Pfx2AsRecord& b) {
    return a.prefix < b.prefix;
  };
  std::sort(delta.announce.begin(), delta.announce.end(), by_prefix);
  std::sort(delta.withdraw.begin(), delta.withdraw.end());
  std::sort(delta.reorigin.begin(), delta.reorigin.end(), by_prefix);
  delta.validate();
  return delta;
}

TEST(DeltaDifferentialTest, ChurnReplayMatchesFullRebuildEveryStep) {
  constexpr int kSteps = 12;
  for (const std::uint64_t seed : {101ull, 202ull, 303ull, 404ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::Rng rng(util::mix64(seed, 1));
    World world = generate_world(seed);

    std::vector<net::Prefix> initial;
    initial.reserve(world.table.size());
    for (const auto& record : world.table) initial.push_back(record.prefix);
    bgp::PrefixPartition partition(initial);

    scan::EngineConfig config;
    config.threads = 1;
    const scan::ScanEngine engine(config);

    VectorOracle oracle(world.hosts);
    std::vector<std::uint32_t> counts =
        attribute_from_scratch(partition, oracle, engine);
    core::DensityRanking ranking =
        core::rank_by_density(counts, partition, core::PrefixMode::kMore);

    for (int step = 0; step < kSteps; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));

      // --- BGP churn, round-tripped through the MRT update codec ------
      const bgp::RibDelta delta = draw_churn(world.table, rng);
      const auto wire = bgp::encode_mrt_updates(
          delta, static_cast<std::uint32_t>(1441584000 + step));
      std::size_t skipped = 99;
      const bgp::RibDelta decoded =
          bgp::rebased(bgp::decode_mrt_updates(wire, &skipped), world.table);
      EXPECT_EQ(skipped, 0u);
      ASSERT_EQ(decoded, delta);  // the wire carries the delta faithfully

      world.table = delta.apply(world.table);
      std::vector<net::Prefix> target;
      target.reserve(world.table.size());
      for (const auto& record : world.table) target.push_back(record.prefix);

      // --- patch the partition in place -------------------------------
      const bgp::PartitionDelta pdelta = partition_delta(partition, target);
      EXPECT_EQ(pdelta.remove.size(), delta.withdraw.size());
      EXPECT_EQ(pdelta.add.size(), delta.announce.size());
      const bgp::PartitionApplyResult applied =
          partition.apply_delta(pdelta);

      // --- host churn -------------------------------------------------
      std::vector<std::uint32_t> touched_addresses;
      {
        // Deaths: drop a small sample of existing hosts.
        const std::size_t deaths =
            std::min<std::size_t>(world.hosts.size(), 1 + rng.bounded(30));
        for (std::size_t k = 0; k < deaths && !world.hosts.empty(); ++k) {
          const auto victim =
              static_cast<std::size_t>(rng.bounded(world.hosts.size()));
          touched_addresses.push_back(world.hosts[victim]);
          world.hosts.erase(world.hosts.begin() +
                            static_cast<std::ptrdiff_t>(victim));
        }
        // Births: new hosts inside random live cells.
        const std::size_t births = 1 + rng.bounded(30);
        for (std::size_t k = 0; k < births; ++k) {
          const auto slot =
              static_cast<std::size_t>(rng.bounded(partition.size()));
          if (!partition.live(slot)) continue;
          const net::Prefix prefix = partition.prefix(slot);
          const std::uint32_t address =
              prefix.network().value() +
              static_cast<std::uint32_t>(rng.bounded(prefix.size()));
          touched_addresses.push_back(address);
          world.hosts.push_back(address);
        }
        std::sort(world.hosts.begin(), world.hosts.end());
        world.hosts.erase(
            std::unique(world.hosts.begin(), world.hosts.end()),
            world.hosts.end());
      }
      // Dirty cells: wherever a touched address lives now, minus the
      // delta's added cells (those are rescanned regardless).
      std::vector<std::uint32_t> dirty;
      for (const std::uint32_t address : touched_addresses) {
        if (const auto cell = partition.locate(net::Ipv4Address(address))) {
          dirty.push_back(*cell);
        }
      }
      std::sort(dirty.begin(), dirty.end());
      dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
      std::erase_if(dirty, [&](std::uint32_t cell) {
        return std::binary_search(applied.added_cells.begin(),
                                  applied.added_cells.end(), cell);
      });

      // --- the incremental step under test ----------------------------
      VectorOracle churned_oracle(world.hosts);
      const core::ChurnStepStats stats = core::churn_step(
          ranking, counts, partition, applied, churned_oracle, engine,
          dirty);
      EXPECT_LE(stats.rescanned_addresses, partition.address_count());

      // --- full-rebuild references ------------------------------------
      // 1. Counts: re-attribute the whole live scope from scratch.
      const std::vector<std::uint32_t> counts_ref =
          attribute_from_scratch(partition, churned_oracle, engine);
      ASSERT_EQ(counts, counts_ref);

      // 2. Ranking: full re-rank over the same partition, bit for bit.
      expect_rankings_bit_identical(
          ranking, core::rank_by_density(counts_ref, partition,
                                         core::PrefixMode::kMore));

      // 3. LpmIndex: fresh build from the patched entry table.
      const auto table_now = partition.index().entries();
      const trie::LpmIndex fresh_index(
          std::vector<trie::LpmIndex::Entry>(table_now.begin(),
                                             table_now.end()));
      // 4. Partition semantics: a fresh partition over the live prefixes
      // maps every probe to the same prefix (cell numbering aside).
      const bgp::PrefixPartition fresh_partition(partition.live_prefixes());
      EXPECT_EQ(fresh_partition.address_count(), partition.address_count());
      util::Rng probe_rng(util::mix64(seed, 1000 + step));
      std::vector<std::uint32_t> probes;
      for (int k = 0; k < 2000; ++k) {
        probes.push_back(
            static_cast<std::uint32_t>(probe_rng.bounded(1ull << 32)));
      }
      for (const net::Prefix prefix : pdelta.add) {
        probes.insert(probes.end(),
                      {prefix.network().value(), prefix.last().value(),
                       prefix.network().value() - 1,
                       prefix.last().value() + 1});
      }
      for (const std::uint32_t probe : probes) {
        const net::Ipv4Address address(probe);
        ASSERT_EQ(partition.index().lookup(address),
                  fresh_index.lookup(address))
            << address.to_string();
        const auto patched_cell = partition.locate(address);
        const auto fresh_cell = fresh_partition.locate(address);
        ASSERT_EQ(patched_cell.has_value(), fresh_cell.has_value())
            << address.to_string();
        if (patched_cell) {
          ASSERT_EQ(partition.prefix(*patched_cell),
                    fresh_partition.prefix(*fresh_cell))
              << address.to_string();
        }
      }

      // 5. Fresh-pipeline ranking: identical on every index-independent
      // field and in the same order (the prefix tie-break makes the order
      // canonical across cell numberings).
      const core::DensityRanking fresh_ranking = core::rank_by_density(
          attribute_from_scratch(fresh_partition, churned_oracle, engine),
          fresh_partition, core::PrefixMode::kMore);
      ASSERT_EQ(ranking.ranked.size(), fresh_ranking.ranked.size());
      EXPECT_EQ(ranking.total_hosts, fresh_ranking.total_hosts);
      for (std::size_t i = 0; i < ranking.ranked.size(); ++i) {
        const core::RankedPrefix& a = ranking.ranked[i];
        const core::RankedPrefix& b = fresh_ranking.ranked[i];
        ASSERT_EQ(a.prefix, b.prefix) << "rank " << i;
        ASSERT_EQ(a.hosts, b.hosts) << "rank " << i;
        ASSERT_EQ(a.density, b.density) << "rank " << i;
        ASSERT_EQ(a.host_share, b.host_share) << "rank " << i;
      }
    }
  }
}

// Thread-count invariance of the incremental step: the sharded engine
// path must give bit-identical counts and rankings for any thread count.
TEST(DeltaDifferentialTest, ChurnStepIsThreadCountInvariant) {
  const std::uint64_t seed = 515;
  World world = generate_world(seed);
  std::vector<net::Prefix> initial;
  for (const auto& record : world.table) initial.push_back(record.prefix);

  std::optional<core::DensityRanking> reference;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    bgp::PrefixPartition partition(initial);
    scan::EngineConfig config;
    config.threads = threads;
    config.min_addresses_per_shard = 1u << 12;  // force real sharding
    const scan::ScanEngine engine(config);
    VectorOracle oracle(world.hosts);
    std::vector<std::uint32_t> counts =
        attribute_from_scratch(partition, oracle, engine);
    core::DensityRanking ranking =
        core::rank_by_density(counts, partition, core::PrefixMode::kMore);

    util::Rng rng(util::mix64(seed, 2));
    auto table = world.table;
    for (int step = 0; step < 3; ++step) {
      const bgp::RibDelta delta = draw_churn(table, rng);
      table = delta.apply(table);
      std::vector<net::Prefix> target;
      for (const auto& record : table) target.push_back(record.prefix);
      const auto applied =
          partition.apply_delta(partition_delta(partition, target));
      core::churn_step(ranking, counts, partition, applied, oracle, engine);
    }
    if (!reference) {
      reference = ranking;
    } else {
      expect_rankings_bit_identical(ranking, *reference);
    }
  }
}

}  // namespace
}  // namespace tass
