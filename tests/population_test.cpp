// Tests for census/population: the calibrated month-0 host placement.
#include "census/population.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace tass::census {
namespace {

std::shared_ptr<const Topology> test_topology() {
  static const auto topo = [] {
    TopologyParams params;
    params.seed = 77;
    params.l_prefix_count = 600;
    return generate_topology(params);
  }();
  return topo;
}

PopulationParams small_params() {
  PopulationParams params;
  params.host_scale = 0.002;
  params.seed = 9;
  return params;
}

TEST(Population, DeterministicInSeedAndProtocol) {
  const auto& profile = protocol_profile(Protocol::kFtp);
  const Snapshot a =
      generate_population(test_topology(), profile, small_params());
  const Snapshot b =
      generate_population(test_topology(), profile, small_params());
  EXPECT_EQ(a.addresses(), b.addresses());

  auto other_seed = small_params();
  other_seed.seed = 10;
  const Snapshot c =
      generate_population(test_topology(), profile, other_seed);
  EXPECT_NE(a.addresses(), c.addresses());

  const Snapshot d = generate_population(
      test_topology(), protocol_profile(Protocol::kHttp), small_params());
  EXPECT_NE(a.addresses(), d.addresses());
}

TEST(Population, HitsTheTargetHostCount) {
  const auto& profile = protocol_profile(Protocol::kHttp);
  const auto params = small_params();
  const Snapshot snapshot =
      generate_population(test_topology(), profile, params);
  const auto target = profile.base_hosts * params.host_scale;
  EXPECT_NEAR(static_cast<double>(snapshot.total_hosts()), target,
              target * 0.02);
}

TEST(Population, VolatileShareMatchesProfile) {
  const auto& profile = protocol_profile(Protocol::kCwmp);
  const Snapshot snapshot =
      generate_population(test_topology(), profile, small_params());
  std::uint64_t volatile_hosts = 0;
  for (std::uint32_t cell = 0; cell < snapshot.cell_count(); ++cell) {
    volatile_hosts += snapshot.cell(cell).volatile_hosts.size();
  }
  const double share = static_cast<double>(volatile_hosts) /
                       static_cast<double>(snapshot.total_hosts());
  EXPECT_NEAR(share, profile.volatile_fraction, 0.02);
}

TEST(Population, EmptyLSpaceShareMatchesProfile) {
  const auto topo = test_topology();
  const auto& profile = protocol_profile(Protocol::kFtp);
  const Snapshot snapshot =
      generate_population(topo, profile, small_params());
  const auto l_counts = snapshot.counts_per_l();
  std::uint64_t empty_space = 0;
  for (std::uint32_t l = 0; l < l_counts.size(); ++l) {
    if (l_counts[l] == 0) empty_space += topo->l_partition.prefix(l).size();
  }
  const double share = static_cast<double>(empty_space) /
                       static_cast<double>(topo->advertised_addresses);
  // Granularity of whole l-prefixes makes this approximate.
  EXPECT_NEAR(share, profile.empty_l_space_share, 0.06);
}

TEST(Population, ZeroTierSpaceShareMatchesProfile) {
  const auto topo = test_topology();
  const auto& profile = protocol_profile(Protocol::kCwmp);
  const Snapshot snapshot =
      generate_population(topo, profile, small_params());
  const auto counts = snapshot.counts_per_cell();
  std::uint64_t occupied_space = 0;
  for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
    if (counts[cell] > 0) {
      occupied_space += topo->m_partition.prefix(cell).size();
    }
  }
  const double tier_space = std::accumulate(
      profile.tiers.begin(), profile.tiers.end(), 0.0,
      [](double acc, const DensityTier& t) { return acc + t.space_share; });
  const double share = static_cast<double>(occupied_space) /
                       static_cast<double>(topo->advertised_addresses);
  EXPECT_NEAR(share, tier_space, 0.06);
}

TEST(Population, LorenzCurveIsSteep) {
  // The defining shape of Figure 4 / Table 1: the densest slice of space
  // carries a wildly disproportionate host share.
  const auto topo = test_topology();
  const Snapshot snapshot = generate_population(
      topo, protocol_profile(Protocol::kFtp), small_params());
  const auto counts = snapshot.counts_per_cell();

  std::vector<std::pair<double, std::uint32_t>> by_density;
  for (std::uint32_t cell = 0; cell < counts.size(); ++cell) {
    if (counts[cell] == 0) continue;
    by_density.emplace_back(
        -static_cast<double>(counts[cell]) /
            static_cast<double>(topo->m_partition.prefix(cell).size()),
        cell);
  }
  std::sort(by_density.begin(), by_density.end());

  std::uint64_t hosts = 0;
  std::uint64_t space = 0;
  for (const auto& [neg_density, cell] : by_density) {
    hosts += counts[cell];
    space += topo->m_partition.prefix(cell).size();
    if (static_cast<double>(hosts) >=
        0.5 * static_cast<double>(snapshot.total_hosts())) {
      break;
    }
  }
  // Half the hosts in (far) under 5% of the advertised space.
  EXPECT_LT(static_cast<double>(space),
            0.05 * static_cast<double>(topo->advertised_addresses));
}

TEST(Population, OffsetsAreWithinCellsAndUnique) {
  const auto topo = test_topology();
  const Snapshot snapshot = generate_population(
      topo, protocol_profile(Protocol::kSsh), small_params());
  for (std::uint32_t cell = 0; cell < snapshot.cell_count(); ++cell) {
    const CellPopulation& population = snapshot.cell(cell);
    const std::uint64_t size = topo->m_partition.prefix(cell).size();
    auto check = [&](const std::vector<std::uint32_t>& offsets) {
      EXPECT_TRUE(std::is_sorted(offsets.begin(), offsets.end()));
      EXPECT_TRUE(std::adjacent_find(offsets.begin(), offsets.end()) ==
                  offsets.end());
      if (!offsets.empty()) {
        EXPECT_LT(offsets.back(), size);
      }
    };
    check(population.stable);
    check(population.volatile_hosts);
  }
}

}  // namespace
}  // namespace tass::census
