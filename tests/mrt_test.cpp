// Tests for bgp/mrt: the RFC 6396 TABLE_DUMP_V2 reader/writer (the
// libbgpdump substitute) — round trips, attribute handling and the error
// paths a robust dump reader must cover.
#include "bgp/mrt.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/endian.hpp"
#include "util/error.hpp"

namespace tass::bgp {
namespace {

MrtRibDump make_dump() {
  MrtRibDump dump;
  dump.timestamp = 1441584000;
  dump.collector_id = net::Ipv4Address::parse_or_throw("198.32.160.10");
  dump.view_name = "test-view";
  dump.peers.push_back({net::Ipv4Address::parse_or_throw("203.0.113.1"),
                        net::Ipv4Address::parse_or_throw("203.0.113.1"),
                        6447});
  dump.peers.push_back({net::Ipv4Address::parse_or_throw("198.51.100.2"),
                        net::Ipv4Address::parse_or_throw("198.51.100.2"),
                        397213});  // 4-byte ASN

  MrtRibRecord record;
  record.sequence = 0;
  record.prefix = net::Prefix::parse_or_throw("10.0.0.0/8");
  MrtRibEntry entry;
  entry.peer_index = 0;
  entry.originated_time = 1441000000;
  entry.origin = BgpOrigin::kIgp;
  entry.as_path.push_back(
      {AsPathSegment::Kind::kAsSequence, {6447, 3356, 64500}});
  entry.next_hop = net::Ipv4Address::parse_or_throw("203.0.113.1");
  record.entries.push_back(entry);

  MrtRibEntry second;
  second.peer_index = 1;
  second.originated_time = 1441000001;
  second.origin = BgpOrigin::kIncomplete;
  second.as_path.push_back(
      {AsPathSegment::Kind::kAsSequence, {397213, 174}});
  second.as_path.push_back({AsPathSegment::Kind::kAsSet, {64501, 64502}});
  record.entries.push_back(second);
  dump.records.push_back(record);

  MrtRibRecord slash0;
  slash0.sequence = 1;
  slash0.prefix = net::Prefix::parse_or_throw("0.0.0.0/0");
  MrtRibEntry default_route;
  default_route.peer_index = 0;
  default_route.as_path.push_back(
      {AsPathSegment::Kind::kAsSequence, {6447}});
  slash0.entries.push_back(default_route);
  dump.records.push_back(slash0);
  return dump;
}

TEST(Mrt, EncodeDecodeRoundTrips) {
  const MrtRibDump dump = make_dump();
  const auto bytes = encode_mrt(dump);
  const MrtRibDump decoded = decode_mrt(bytes);

  EXPECT_EQ(decoded.timestamp, dump.timestamp);
  EXPECT_EQ(decoded.collector_id, dump.collector_id);
  EXPECT_EQ(decoded.view_name, dump.view_name);
  EXPECT_EQ(decoded.peers, dump.peers);
  EXPECT_EQ(decoded.records, dump.records);
  EXPECT_EQ(decoded.skipped_records, 0u);
}

TEST(Mrt, PrefixByteLengthsRoundTrip) {
  // Prefix encoding uses ceil(len/8) bytes; exercise every byte count.
  MrtRibDump dump = make_dump();
  dump.records.clear();
  std::uint32_t sequence = 0;
  for (const char* text :
       {"0.0.0.0/0", "128.0.0.0/1", "10.0.0.0/7", "10.0.0.0/8",
        "10.128.0.0/9", "10.255.0.0/16", "10.255.128.0/17", "1.2.3.0/24",
        "1.2.3.128/25", "1.2.3.4/32"}) {
    MrtRibRecord record;
    record.sequence = sequence++;
    record.prefix = net::Prefix::parse_or_throw(text);
    MrtRibEntry entry;
    entry.peer_index = 0;
    entry.as_path.push_back({AsPathSegment::Kind::kAsSequence, {1}});
    record.entries.push_back(entry);
    dump.records.push_back(record);
  }
  const MrtRibDump decoded = decode_mrt(encode_mrt(dump));
  EXPECT_EQ(decoded.records, dump.records);
}

TEST(Mrt, ExtendedLengthAttributesRoundTrip) {
  // An AS_PATH longer than 255 bytes forces the extended-length flag.
  MrtRibDump dump = make_dump();
  dump.records.clear();
  MrtRibRecord record;
  record.sequence = 0;
  record.prefix = net::Prefix::parse_or_throw("10.0.0.0/8");
  MrtRibEntry entry;
  entry.peer_index = 0;
  AsPathSegment long_segment;
  long_segment.kind = AsPathSegment::Kind::kAsSequence;
  for (std::uint32_t asn = 1; asn <= 120; ++asn) {
    long_segment.asns.push_back(asn);  // 120 * 4 + 2 bytes > 255
  }
  entry.as_path.push_back(long_segment);
  record.entries.push_back(entry);
  dump.records.push_back(record);

  const MrtRibDump decoded = decode_mrt(encode_mrt(dump));
  ASSERT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(decoded.records[0].entries[0].as_path, entry.as_path);
  EXPECT_EQ(decoded.records[0].entries[0].origin_as(), 120u);
}

TEST(Mrt, OriginAsSemantics) {
  MrtRibEntry entry;
  EXPECT_FALSE(entry.origin_as().has_value());
  EXPECT_TRUE(entry.origin_set().empty());

  entry.as_path.push_back(
      {AsPathSegment::Kind::kAsSequence, {100, 200, 300}});
  EXPECT_EQ(entry.origin_as(), 300u);
  EXPECT_EQ(entry.origin_set(), std::vector<std::uint32_t>{300});

  entry.as_path.push_back({AsPathSegment::Kind::kAsSet, {400, 500}});
  EXPECT_FALSE(entry.origin_as().has_value());
  EXPECT_EQ(entry.origin_set(), (std::vector<std::uint32_t>{400, 500}));
}

TEST(Mrt, UnknownSubtypeIsSkippedNotFatal) {
  const MrtRibDump dump = make_dump();
  auto bytes = encode_mrt(dump);

  // Append a record with an unknown subtype (RIB_IPV6_UNICAST = 4).
  util::ByteWriter extra;
  extra.u32(dump.timestamp);
  extra.u16(13);  // TABLE_DUMP_V2
  extra.u16(4);   // unsupported subtype
  extra.u32(3);
  extra.u8(0xDE);
  extra.u8(0xAD);
  extra.u8(0x00);
  const auto tail = std::move(extra).take();
  bytes.insert(bytes.end(), tail.begin(), tail.end());

  const MrtRibDump decoded = decode_mrt(bytes);
  EXPECT_EQ(decoded.records.size(), dump.records.size());
  EXPECT_EQ(decoded.skipped_records, 1u);
}

TEST(Mrt, UnknownTopLevelTypeIsSkipped) {
  util::ByteWriter writer;
  writer.u32(0);
  writer.u16(16);  // BGP4MP
  writer.u16(1);
  writer.u32(2);
  writer.u16(0);
  const auto bytes = std::move(writer).take();
  const MrtRibDump decoded = decode_mrt(bytes);
  EXPECT_EQ(decoded.skipped_records, 1u);
  EXPECT_TRUE(decoded.records.empty());
}

TEST(Mrt, TruncatedHeaderThrows) {
  const auto bytes = encode_mrt(make_dump());
  const std::span<const std::byte> truncated(bytes.data(),
                                             bytes.size() - 3);
  EXPECT_THROW(decode_mrt(truncated), FormatError);
}

TEST(Mrt, RibBeforePeerTableThrows) {
  const MrtRibDump dump = make_dump();
  const auto bytes = encode_mrt(dump);
  // Skip the PEER_INDEX_TABLE record: its total length is 12-byte header
  // plus body length stored at offset 8.
  util::ByteReader header(bytes);
  header.u32();
  header.u16();
  header.u16();
  const std::uint32_t body_len = header.u32();
  const std::span<const std::byte> tail(bytes.data() + 12 + body_len,
                                        bytes.size() - 12 - body_len);
  EXPECT_THROW(decode_mrt(tail), FormatError);
}

TEST(Mrt, BadPeerIndexThrowsOnEncodeAndDecode) {
  MrtRibDump dump = make_dump();
  dump.records[0].entries[0].peer_index = 99;
  EXPECT_THROW(encode_mrt(dump), FormatError);
}

TEST(Mrt, InvalidPrefixLengthThrows) {
  MrtRibDump dump = make_dump();
  auto bytes = encode_mrt(dump);
  // Corrupt the prefix length byte of the first RIB record: it sits right
  // after the record's 12-byte header + 4-byte sequence number. Find the
  // first RIB record: header(12) + peer body.
  util::ByteReader header(bytes);
  header.u32();
  header.u16();
  header.u16();
  const std::uint32_t peer_body = header.u32();
  const std::size_t offset = 12 + peer_body + 12 + 4;
  bytes[offset] = std::byte{77};  // prefix length 77 > 32
  EXPECT_THROW(decode_mrt(bytes), FormatError);
}

TEST(Mrt, FileSaveLoadRoundTrips) {
  const auto path =
      std::filesystem::temp_directory_path() / "tass_mrt_test.mrt";
  const MrtRibDump dump = make_dump();
  save_mrt(path.string(), dump);
  const MrtRibDump loaded = load_mrt(path.string());
  EXPECT_EQ(loaded.records, dump.records);
  EXPECT_EQ(loaded.peers, dump.peers);
  std::filesystem::remove(path);
  EXPECT_THROW(load_mrt(path.string()), Error);
}

}  // namespace
}  // namespace tass::bgp
