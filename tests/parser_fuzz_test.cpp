// Seeded corrupt-input tests for the two external-format parsers the
// prefix pipeline depends on: the CAIDA pfx2as text reader and the MRT
// TABLE_DUMP_V2 binary decoder.
//
// The contract under test is narrow but vital for anything that eats
// collector output from the open Internet: for arbitrary corruption the
// parsers either succeed or throw a tass::Error subclass — they never
// crash, hang, or read out of bounds (the CI sanitizer job runs this
// suite under ASan+UBSan to enforce the latter). All corruption is
// generated from fixed seeds so failures reproduce exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bgp/mrt.hpp"
#include "bgp/pfx2as.hpp"
#include "bgp/rib.hpp"
#include "bgp/rib_delta.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tass::bgp {
namespace {

// --- pfx2as ----------------------------------------------------------

std::string valid_pfx2as_document() {
  return
      "# CAIDA-style header comment\n"
      "1.0.0.0\t24\t13335\n"
      "8.0.0.0\t9\t3356\n"
      "8.8.8.0\t24\t15169\n"
      "9.9.9.0\t24\t19281,42\n"
      "11.0.0.0\t8\t4_5_6\n";
}

TEST(Pfx2AsCorruption, BadMaskRejectedCleanly) {
  for (const char* line : {"10.0.0.0\t33\t1", "10.0.0.0\t300\t1",
                           "10.0.0.0\t-1\t1", "10.0.0.0\t4294967296\t1"}) {
    EXPECT_THROW(parse_pfx2as_line(line), ParseError) << line;
  }
}

TEST(Pfx2AsCorruption, StructuralGarbageRejectedCleanly) {
  for (const char* line :
       {"", "10.0.0.0", "10.0.0.0\t24", "10.0.0.0\t24\t1\textra",
        "999.0.0.0\t8\t1", "10.0.0.0\t8\t", "10.0.0.0\t8\tAS13335",
        "10.0.0.0\t8\t1,,2", "10.0.0.0\t8\t1__2_"}) {
    EXPECT_THROW(parse_pfx2as_line(line), ParseError)
        << "'" << line << "'";
  }
}

TEST(Pfx2AsCorruption, OverlappingDuplicatesAreDataNotErrors) {
  // Duplicate and overlapping announcements are routine in real tables;
  // the parser must accept them and RoutingTable must merge origins.
  const auto records = parse_pfx2as(
      "10.0.0.0\t8\t1\n"
      "10.0.0.0\t8\t2\n"
      "10.128.0.0\t9\t3\n");
  ASSERT_EQ(records.size(), 3u);
  const RoutingTable table = RoutingTable::from_pfx2as(records);
  ASSERT_EQ(table.size(), 2u);  // duplicates merged
  EXPECT_EQ(table.routes()[0].origins, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(table.routes()[1].more_specific);
}

TEST(Pfx2AsCorruption, SeededTruncationsNeverCrash) {
  const std::string document = valid_pfx2as_document();
  for (std::size_t cut = 0; cut <= document.size(); ++cut) {
    const std::string_view truncated(document.data(), cut);
    try {
      parse_pfx2as(truncated);  // strict: may throw ParseError
    } catch (const Error&) {
    }
    // Lenient mode must swallow every line-level problem.
    std::size_t skipped = 0;
    EXPECT_NO_THROW(parse_pfx2as(truncated, /*strict=*/false, &skipped));
  }
}

TEST(Pfx2AsCorruption, SeededByteFlipsNeverCrash) {
  const std::string document = valid_pfx2as_document();
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 200; ++round) {
      std::string mutated = document;
      const std::size_t flips = 1 + rng.bounded(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const auto pos = static_cast<std::size_t>(
            rng.bounded(mutated.size()));
        mutated[pos] = static_cast<char>(rng.bounded(256));
      }
      try {
        const auto records = parse_pfx2as(mutated);
        // Whatever survived must be structurally sane.
        for (const auto& record : records) {
          EXPECT_LE(record.prefix.length(), 32);
          EXPECT_FALSE(record.origins.empty());
        }
      } catch (const Error&) {
        // Clean rejection is the other acceptable outcome.
      }
    }
  }
}

// --- MRT -------------------------------------------------------------

MrtRibDump valid_dump() {
  MrtRibDump dump;
  dump.timestamp = 1441584000;  // 2015-09-07, the paper's snapshot
  dump.collector_id = net::Ipv4Address::from_octets(198, 51, 100, 1);
  dump.view_name = "tass-test";
  dump.peers.push_back({net::Ipv4Address::from_octets(192, 0, 2, 1),
                        net::Ipv4Address::from_octets(192, 0, 2, 2), 64500});
  dump.peers.push_back({net::Ipv4Address::from_octets(192, 0, 2, 3),
                        net::Ipv4Address::from_octets(192, 0, 2, 4), 64501});
  for (std::uint32_t i = 0; i < 8; ++i) {
    MrtRibRecord record;
    record.sequence = i;
    record.prefix = net::Prefix(net::Ipv4Address(0x0a000000u + (i << 16)),
                                i % 2 == 0 ? 16 : 24);
    MrtRibEntry entry;
    entry.peer_index = static_cast<std::uint16_t>(i % 2);
    entry.originated_time = dump.timestamp - i;
    entry.origin = BgpOrigin::kIgp;
    entry.as_path.push_back(
        {AsPathSegment::Kind::kAsSequence, {64500, 3356, 13335 + i}});
    entry.next_hop = net::Ipv4Address::from_octets(192, 0, 2, 2);
    record.entries.push_back(std::move(entry));
    dump.records.push_back(std::move(record));
  }
  return dump;
}

TEST(MrtCorruption, RoundTripSurvives) {
  const MrtRibDump dump = valid_dump();
  const auto bytes = encode_mrt(dump);
  const MrtRibDump decoded = decode_mrt(bytes);
  ASSERT_EQ(decoded.records.size(), dump.records.size());
  EXPECT_EQ(decoded.peers, dump.peers);
  EXPECT_EQ(decoded.records, dump.records);
}

TEST(MrtCorruption, EveryTruncationPointRejectedCleanly) {
  const auto bytes = encode_mrt(valid_dump());
  // A truncated dump must either decode a clean prefix of the records or
  // throw FormatError — at every possible cut point.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    try {
      const MrtRibDump decoded =
          decode_mrt(std::span(bytes.data(), cut));
      EXPECT_LE(decoded.records.size(), 8u);
    } catch (const Error&) {
    }
  }
}

TEST(MrtCorruption, BadPrefixLengthRejected) {
  // Corrupt the prefix-length byte of the first RIB record to every
  // invalid value; the decoder must throw FormatError, never build a
  // Prefix with length > 32 (which would corrupt downstream masks).
  const MrtRibDump dump = valid_dump();
  const auto bytes = encode_mrt(dump);
  // Locate the first RIB record's length byte: scan for the encoded
  // sequence number 0 followed by the known prefix length 16.
  std::size_t length_offset = 0;
  for (std::size_t i = 0; i + 4 < bytes.size(); ++i) {
    if (std::to_integer<std::uint8_t>(bytes[i]) == 0 &&
        std::to_integer<std::uint8_t>(bytes[i + 1]) == 0 &&
        std::to_integer<std::uint8_t>(bytes[i + 2]) == 0 &&
        std::to_integer<std::uint8_t>(bytes[i + 3]) == 0 &&
        std::to_integer<std::uint8_t>(bytes[i + 4]) == 16) {
      length_offset = i + 4;
      break;
    }
  }
  ASSERT_NE(length_offset, 0u) << "could not locate RIB record";
  for (int bad = 33; bad < 256; bad += 37) {
    auto mutated = bytes;
    mutated[length_offset] = static_cast<std::byte>(bad);
    EXPECT_THROW(decode_mrt(mutated), FormatError) << "length=" << bad;
  }
}

TEST(MrtCorruption, SeededByteFlipsNeverCrash) {
  const auto bytes = encode_mrt(valid_dump());
  for (const std::uint64_t seed : {7ull, 77ull, 777ull, 7777ull, 77777ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 400; ++round) {
      auto mutated = bytes;
      const std::size_t flips = 1 + rng.bounded(6);
      for (std::size_t i = 0; i < flips; ++i) {
        const auto pos = static_cast<std::size_t>(
            rng.bounded(mutated.size()));
        mutated[pos] = static_cast<std::byte>(rng.bounded(256));
      }
      try {
        const MrtRibDump decoded = decode_mrt(mutated);
        for (const MrtRibRecord& record : decoded.records) {
          EXPECT_LE(record.prefix.length(), 32);
        }
      } catch (const Error&) {
        // Structural corruption must surface as FormatError (a subclass
        // of Error), nothing else.
      }
    }
  }
}

TEST(MrtCorruption, SeededTruncatedTailsNeverCrash) {
  const auto bytes = encode_mrt(valid_dump());
  for (const std::uint64_t seed : {3ull, 5ull, 9ull, 13ull, 21ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 100; ++round) {
      // Random cut plus random flip near the cut — the classic shape of
      // an interrupted transfer.
      const auto cut = static_cast<std::size_t>(rng.bounded(bytes.size()));
      std::vector<std::byte> mutated(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
      if (!mutated.empty()) {
        const auto pos =
            static_cast<std::size_t>(rng.bounded(mutated.size()));
        mutated[pos] = static_cast<std::byte>(rng.bounded(256));
      }
      try {
        decode_mrt(mutated);
      } catch (const Error&) {
      }
    }
  }
}

// --- MRT BGP4MP update streams (bgp::rib_delta) ----------------------

RibDelta valid_update_delta() {
  RibDelta delta;
  delta.announce = {
      {net::Prefix::parse_or_throw("198.18.0.0/15"), {600, 601}},
      {net::Prefix::parse_or_throw("198.51.100.0/24"), {500}},
  };
  delta.withdraw = {net::Prefix::parse_or_throw("172.16.0.0/12"),
                    net::Prefix::parse_or_throw("192.0.2.0/24")};
  delta.reorigin = {{net::Prefix::parse_or_throw("10.64.0.0/10"), {250}}};
  return delta;
}

TEST(MrtUpdateCorruption, EveryTruncationParsesOrThrows) {
  const auto bytes = encode_mrt_updates(valid_update_delta(), 1441584000);
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::span<const std::byte> truncated(bytes.data(), cut);
    try {
      decode_mrt_updates(truncated);
    } catch (const Error&) {
      // Clean rejection is the other acceptable outcome.
    }
  }
}

TEST(MrtUpdateCorruption, SeededByteFlipsNeverCrash) {
  const auto bytes = encode_mrt_updates(valid_update_delta(), 1441584000);
  for (const std::uint64_t seed : {19ull, 29ull, 39ull, 49ull, 59ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 400; ++round) {
      auto mutated = bytes;
      const std::size_t flips = 1 + rng.bounded(6);
      for (std::size_t i = 0; i < flips; ++i) {
        const auto pos =
            static_cast<std::size_t>(rng.bounded(mutated.size()));
        mutated[pos] = static_cast<std::byte>(rng.bounded(256));
      }
      try {
        const RibDelta decoded = decode_mrt_updates(mutated);
        // Whatever survived must be structurally sane.
        for (const auto& record : decoded.announce) {
          EXPECT_LE(record.prefix.length(), 32);
          EXPECT_FALSE(record.origins.empty());
        }
        EXPECT_NO_THROW(decoded.validate());
      } catch (const Error&) {
      }
    }
  }
}

TEST(MrtUpdateCorruption, ForeignRecordsAreSkippedNotFatal) {
  // A TABLE_DUMP_V2 dump fed to the update reader is well-formed MRT of
  // the wrong type: every record must be counted as skipped, not die.
  const auto bytes = encode_mrt(valid_dump());
  std::size_t skipped = 0;
  const RibDelta decoded = decode_mrt_updates(bytes, &skipped);
  EXPECT_TRUE(decoded.empty());
  EXPECT_GT(skipped, 0u);
  // And the reverse: an update stream fed to the RIB reader.
  const auto updates = encode_mrt_updates(valid_update_delta(), 0);
  const MrtRibDump dump = decode_mrt(updates);
  EXPECT_TRUE(dump.records.empty());
  EXPECT_GT(dump.skipped_records, 0u);
}

TEST(MrtUpdateCorruption, DuplicateAndConflictingDeltasAreRejected) {
  const auto table = valid_update_delta().apply(std::vector<Pfx2AsRecord>{
      {net::Prefix::parse_or_throw("172.16.0.0/12"), {1}},
      {net::Prefix::parse_or_throw("192.0.2.0/24"), {2}},
      {net::Prefix::parse_or_throw("10.64.0.0/10"), {3}},
  });
  // The delta layer throws on duplicated work instead of corrupting
  // downstream state: double withdraw, double announce, cross-section
  // duplicates — every one is an Error, never a crash or a half-apply.
  RibDelta twice;
  twice.withdraw = {net::Prefix::parse_or_throw("198.51.100.0/24"),
                    net::Prefix::parse_or_throw("198.51.100.0/24")};
  EXPECT_THROW(twice.validate(), Error);
  EXPECT_THROW(twice.apply(table), Error);

  RibDelta conflicted;
  conflicted.announce = {{net::Prefix::parse_or_throw("7.0.0.0/8"), {9}}};
  conflicted.withdraw = {net::Prefix::parse_or_throw("7.0.0.0/8")};
  EXPECT_THROW(conflicted.validate(), Error);
  EXPECT_THROW(conflicted.apply(table), Error);

  RibDelta replay = valid_update_delta();  // applying twice must fail loud
  EXPECT_THROW(replay.apply(replay.apply(table)), Error);
}

}  // namespace
}  // namespace tass::bgp

// --- TSIM state image ------------------------------------------------
//
// The zero-copy state image is mmap'ed and indexed in place, so the
// loader's validation is the only thing between a corrupted file and an
// out-of-bounds read. Contract: for arbitrary corruption, attach()
// either succeeds or throws tass::FormatError — never crashes (the
// sanitizer job runs this suite under ASan+UBSan). Where a corruption
// would be caught by the checksum alone, the tests also re-seal the
// checksum so the deeper structural validators are the ones on trial.

#include <cstring>

#include "state/image.hpp"
#include "util/endian.hpp"
#include "util/hash.hpp"

namespace tass::state {
namespace {

std::vector<std::byte> valid_image() {
  std::vector<net::Prefix> prefixes;
  for (std::uint32_t i = 0; i < 48; ++i) {
    prefixes.push_back(net::Prefix(net::Ipv4Address((i + 1) << 24), 12));
  }
  // One deep cell so the LPM index has a full three-level node chain
  // (root block -> stride-6 -> stride-6 -> stride-4), which the
  // depth-aware validator tests below need to reach.
  prefixes.push_back(
      net::Prefix(net::Ipv4Address(0xF0000000u), 30));
  bgp::PrefixPartition partition(std::move(prefixes));
  // One delta so the image carries a live bitmap and a free list.
  bgp::PartitionDelta delta;
  delta.remove.push_back(partition.prefix(3));
  delta.remove.push_back(partition.prefix(7));
  delta.add.push_back(partition.prefix(7).lower_half());
  partition.apply_delta(delta);
  std::vector<std::uint32_t> counts(partition.size(), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (partition.live(i)) {
      counts[i] = static_cast<std::uint32_t>(1 + 37 * i % 211);
    }
  }
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);
  return encode_image(partition, ranking);
}

// Recomputes the payload checksum after a deliberate corruption, so the
// tampering survives the checksum gate and reaches the validators.
void reseal(std::vector<std::byte>& image) {
  const std::uint64_t digest = util::fnv1a64_wide(
      std::span<const std::byte>(image).subspan(kChecksummedFrom));
  util::store_le64(
      digest, std::span<std::byte, 8>(image.data() + kChecksumOffset, 8));
}

TEST(StateImageCorruption, ValidImageAttaches) {
  const auto image = valid_image();
  EXPECT_NO_THROW(StateImage::attach(image));
}

TEST(StateImageCorruption, EveryHeaderTruncationRejected) {
  const auto image = valid_image();
  // Every cut inside the header and section table, then seeded cuts
  // through the payload (a full sweep would attach ~300k times).
  std::vector<std::size_t> cuts;
  for (std::size_t cut = 0; cut < kHeaderSize + 64; ++cut) {
    cuts.push_back(cut);
  }
  util::Rng rng(2016);
  for (int i = 0; i < 400; ++i) {
    cuts.push_back(static_cast<std::size_t>(rng.bounded(image.size())));
  }
  for (const std::size_t cut : cuts) {
    std::vector<std::byte> truncated(image.begin(),
                                     image.begin() + static_cast<long>(cut));
    EXPECT_THROW(StateImage::attach(truncated), FormatError)
        << "cut at " << cut;
  }
}

TEST(StateImageCorruption, FlippedMagicAndVersionRejected) {
  for (std::size_t at = 0; at < 8; ++at) {
    auto image = valid_image();
    image[at] ^= std::byte{0x20};
    EXPECT_THROW(StateImage::attach(image), FormatError) << "byte " << at;
  }
}

TEST(StateImageCorruption, WrongTopologyFingerprintRejected) {
  // Binding to the wrong topology: caller-supplied expectation mismatch.
  const auto image = valid_image();
  const StateImage attached = StateImage::attach(image);
  const std::uint64_t fingerprint = attached.info().fingerprint;
  EXPECT_NO_THROW(StateImage::attach(image, fingerprint));
  EXPECT_THROW(StateImage::attach(image, fingerprint ^ 0x10), FormatError);

  // A flipped fingerprint *field* is caught even without an expectation:
  // the field sits inside the checksummed region.
  auto tampered = valid_image();
  tampered[kFingerprintOffset] ^= std::byte{1};
  EXPECT_THROW(StateImage::attach(tampered), FormatError);
  // ...and resealing the checksum cannot forge a binding either.
  reseal(tampered);
  EXPECT_THROW(StateImage::attach(tampered, fingerprint), FormatError);
}

TEST(StateImageCorruption, MisalignedSectionOffsetsRejected) {
  // Nudge each section's offset field off the canonical 8-byte-aligned
  // layout; reseal so the checksum gate passes and the section-table
  // validator is what rejects it.
  for (std::size_t section = 0; section < kSectionCount; ++section) {
    for (const std::uint64_t nudge :
         {std::uint64_t{4}, std::uint64_t{8}, ~std::uint64_t{0} - 6}) {
      auto image = valid_image();
      const std::size_t field = kSectionTableOffset + section * 24 + 16;
      const std::span<std::byte, 8> bytes{image.data() + field, 8};
      util::store_le64(
          util::load_le64(std::span<const std::byte, 8>(bytes)) + nudge,
          bytes);
      reseal(image);
      EXPECT_THROW(StateImage::attach(image), FormatError)
          << "section " << section << " nudge " << nudge;
    }
  }
}

TEST(StateImageCorruption, ForgedThirdLevelNodeRejected) {
  // lookup() never consults child_bits at the third node level, so a
  // node reachable as a grandchild must start slot 0 with a leaf run;
  // forge one that satisfies every per-node bound (so only the
  // depth-aware reachability rule can reject it) and reseal. Without
  // that rule, locate(240.0.0.0) would read leaves[leaf_base - 1].
  auto image = valid_image();
  const auto u64_at = [&](std::size_t offset) {
    return util::load_le64(
        std::span<const std::byte, 8>(image.data() + offset, 8));
  };
  const std::size_t root_off =
      static_cast<std::size_t>(u64_at(kSectionTableOffset + 16));
  const std::size_t nodes_off =
      static_cast<std::size_t>(u64_at(kSectionTableOffset + 24 + 16));
  const auto node_at = [&](std::uint32_t index) {
    trie::LpmIndex::Node node;
    std::memcpy(&node, image.data() + nodes_off + index * sizeof(node),
                sizeof(node));
    return node;
  };
  // Walk the 240.0.0.0/30 chain: root block 0xF000, then slot 0 twice
  // (all address bits below /16 are zero).
  const std::uint32_t word = static_cast<std::uint32_t>(
      util::load_le32(std::span<const std::byte, 4>(
          image.data() + root_off + 4 * 0xF000, 4)));
  ASSERT_NE(word & trie::LpmIndex::kNodeFlag, 0u);
  const trie::LpmIndex::Node level1 =
      node_at(word & ~trie::LpmIndex::kNodeFlag);
  ASSERT_NE(level1.child_bits & 1, 0u);
  const trie::LpmIndex::Node level2 = node_at(level1.child_base);
  ASSERT_NE(level2.child_bits & 1, 0u);
  const std::uint32_t grandchild = level2.child_base;

  trie::LpmIndex::Node forged = node_at(grandchild);
  forged.child_bits = 0x7;  // 3 children at base 0: within node bounds
  forged.leaf_bits = 0x8;   // first non-child slot (3) is covered, but
  forged.child_base = 0;    // slot 0 has no leaf run at or below it
  forged.leaf_base = 0;
  std::memcpy(image.data() + nodes_off + grandchild * sizeof(forged),
              &forged, sizeof(forged));
  reseal(image);
  EXPECT_THROW(StateImage::attach(image), FormatError);
}

TEST(StateImageCorruption, ChecksumMismatchRejected) {
  const auto pristine = valid_image();
  util::Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    auto image = pristine;
    const std::size_t at =
        kChecksummedFrom +
        static_cast<std::size_t>(
            rng.bounded(image.size() - kChecksummedFrom));
    const auto flip =
        static_cast<std::byte>(1 + rng.bounded(255));
    image[at] ^= flip;
    EXPECT_THROW(StateImage::attach(image), FormatError)
        << "flip at " << at;
  }
}

TEST(StateImageCorruption, ResealedByteFlipsNeverCrash) {
  // The adversarial tier: corrupt, then forge a valid checksum. The
  // structural validators must still keep every attach memory-safe —
  // either the image loads (value corruption the structure tolerates)
  // or it throws FormatError; under ASan neither path may fault.
  const auto pristine = valid_image();
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 300; ++round) {
      auto image = pristine;
      const std::size_t flips = 1 + rng.bounded(6);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t at =
            kChecksummedFrom +
            static_cast<std::size_t>(
                rng.bounded(image.size() - kChecksummedFrom));
        image[at] ^= static_cast<std::byte>(1 + rng.bounded(255));
      }
      reseal(image);
      try {
        const StateImage attached = StateImage::attach(image);
        // Survivors must stay safe to query across the whole space, and
        // the deep audit must itself parse-or-throw, never crash.
        for (int probe = 0; probe < 512; ++probe) {
          const net::Ipv4Address addr(
              static_cast<std::uint32_t>(rng.bounded(1ull << 32)));
          (void)attached.partition().locate(addr);
        }
        try {
          attached.verify();
        } catch (const FormatError&) {
        }
      } catch (const FormatError&) {
      }
    }
  }
}

// --- IPv6 TSIM images -------------------------------------------------
//
// The v6 image rides the same container on wider rows ("TSI6" magic,
// 24-byte prefixes, 19 node levels). The corruption contract is
// identical — parse or FormatError, never a crash — plus the
// cross-family rule: a v6 image fed to the v4 loader (and vice versa)
// fails with a typed FormatError, never a misread.

std::vector<std::byte> valid_image6() {
  std::vector<net::Ipv6Prefix> prefixes;
  for (std::uint64_t i = 0; i < 40; ++i) {
    prefixes.emplace_back(
        net::Ipv6Address(0x2001000000000000ULL | ((i + 1) << 32), 0), 36);
  }
  // Deep cells so the LPM walk has long node chains, including one past
  // the 64-bit half edge.
  prefixes.emplace_back(net::Ipv6Address(0x20ff000000000000ULL, 0), 64);
  prefixes.emplace_back(
      net::Ipv6Address(0x20fe000000000000ULL, 0xff00000000000000ULL), 72);
  bgp::PrefixPartition6 partition(std::move(prefixes));
  // One delta so the image carries a live bitmap and a free list.
  bgp::PartitionDelta6 delta;
  delta.remove.push_back(partition.prefix(3));
  delta.remove.push_back(partition.prefix(7));
  delta.add.push_back(partition.prefix(7).lower_half());
  partition.apply_delta(delta);
  std::vector<std::uint32_t> counts(partition.size(), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (partition.live(i)) {
      counts[i] = static_cast<std::uint32_t>(1 + 37 * i % 211);
    }
  }
  const auto ranking =
      core::rank_by_density(counts, partition, core::PrefixMode::kMore);
  return encode_image(partition, ranking);
}

TEST(StateImage6Corruption, ValidImageAttaches) {
  const auto image = valid_image6();
  EXPECT_NO_THROW(StateImage6::attach(image));
  EXPECT_EQ(image_family(image), net::AddressFamily::kIpv6);
}

TEST(StateImage6Corruption, CrossFamilyLoadsAreTypedErrors) {
  const auto v6 = valid_image6();
  const auto v4 = valid_image();
  // Family misroutes throw FormatError with a message naming the right
  // loader — never a crash, never a silent misread.
  try {
    StateImage::attach(v6);
    FAIL() << "v4 loader accepted a v6 image";
  } catch (const FormatError& error) {
    EXPECT_NE(std::string(error.what()).find("IPv6"), std::string::npos);
  }
  try {
    StateImage6::attach(v4);
    FAIL() << "v6 loader accepted a v4 image";
  } catch (const FormatError& error) {
    EXPECT_NE(std::string(error.what()).find("IPv4"), std::string::npos);
  }
}

TEST(StateImage6Corruption, EveryHeaderTruncationRejected) {
  const auto image = valid_image6();
  std::vector<std::size_t> cuts;
  for (std::size_t cut = 0; cut < kHeaderSize + 64; ++cut) {
    cuts.push_back(cut);
  }
  util::Rng rng(2016);
  for (int i = 0; i < 400; ++i) {
    cuts.push_back(static_cast<std::size_t>(rng.bounded(image.size())));
  }
  for (const std::size_t cut : cuts) {
    std::vector<std::byte> truncated(image.begin(),
                                     image.begin() + static_cast<long>(cut));
    EXPECT_THROW(StateImage6::attach(truncated), FormatError)
        << "cut at " << cut;
  }
}

TEST(StateImage6Corruption, FlippedMagicAndVersionRejected) {
  for (std::size_t at = 0; at < 8; ++at) {
    auto image = valid_image6();
    image[at] ^= std::byte{0x20};
    EXPECT_THROW(StateImage6::attach(image), FormatError) << "byte " << at;
  }
  // A forged family field (mode word byte 1) must not survive either,
  // even with a resealed checksum: the magic and the field must agree.
  auto forged = valid_image6();
  forged[25] = std::byte{4};
  reseal(forged);
  EXPECT_THROW(StateImage6::attach(forged), FormatError);
}

TEST(StateImage6Corruption, ResealedByteFlipsNeverCrash) {
  const auto pristine = valid_image6();
  for (const std::uint64_t seed : {404ull, 505ull, 606ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 300; ++round) {
      auto image = pristine;
      const std::size_t flips = 1 + rng.bounded(6);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t at =
            kChecksummedFrom +
            static_cast<std::size_t>(
                rng.bounded(image.size() - kChecksummedFrom));
        image[at] ^= static_cast<std::byte>(1 + rng.bounded(255));
      }
      reseal(image);
      try {
        const StateImage6 attached = StateImage6::attach(image);
        // Survivors must stay safe to query across the whole space, and
        // the deep audit must itself parse-or-throw, never crash.
        for (int probe = 0; probe < 512; ++probe) {
          const net::Ipv6Address addr(rng(), rng());
          (void)attached.partition().locate(addr);
        }
        try {
          attached.verify();
        } catch (const FormatError&) {
        }
      } catch (const FormatError&) {
      }
    }
  }
}

}  // namespace
}  // namespace tass::state

// --- Streaming MRT framer --------------------------------------------
//
// The framer sits in front of decode_mrt_updates on the live feed path,
// so it inherits the parser corruption contract and adds its own: for
// arbitrary feed bytes, arbitrarily fragmented, it never throws and
// never crashes (the sanitizer job enforces memory safety), every byte
// is accounted (decoded, discarded, or truncated tail), and whatever
// records survive decode are structurally sane.

#include "stream/framer.hpp"

namespace tass::stream {
namespace {

std::vector<std::byte> valid_update_stream() {
  bgp::RibDelta first;
  first.announce = {
      {net::Prefix::parse_or_throw("198.18.0.0/15"), {600, 601}},
      {net::Prefix::parse_or_throw("198.51.100.0/24"), {500}},
  };
  first.withdraw = {net::Prefix::parse_or_throw("172.16.0.0/12"),
                    net::Prefix::parse_or_throw("192.0.2.0/24")};
  auto bytes = bgp::encode_mrt_updates(first, 1441584000);
  bgp::RibDelta second;
  second.withdraw = {net::Prefix::parse_or_throw("10.64.0.0/10")};
  const auto more = bgp::encode_mrt_updates(second, 1441584001);
  bytes.insert(bytes.end(), more.begin(), more.end());
  return bytes;
}

/// Pushes `wire` through a framer in seeded random fragments, draining
/// after every push; returns the number of surfaced records after
/// verifying each one is structurally sane.
std::size_t replay_fragmented(MrtFramer& framer,
                              std::span<const std::byte> wire,
                              util::Rng& rng) {
  std::size_t surfaced = 0;
  std::size_t offset = 0;
  while (offset < wire.size()) {
    const std::size_t take = std::min<std::size_t>(
        wire.size() - offset, 1 + rng.bounded(53));
    framer.push(wire.subspan(offset, take));
    while (auto delta = framer.next()) {
      for (const auto& record : delta->announce) {
        EXPECT_LE(record.prefix.length(), 32);
        EXPECT_FALSE(record.origins.empty());
      }
      ++surfaced;
    }
    offset += take;
  }
  return surfaced;
}

TEST(StreamFramerCorruption, PureRandomBytesNeverCrash) {
  for (const std::uint64_t seed : {61ull, 62ull, 63ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 50; ++round) {
      std::vector<std::byte> garbage(64 + rng.bounded(4096));
      for (std::byte& b : garbage) {
        b = static_cast<std::byte>(rng.bounded(256));
      }
      MrtFramer framer;
      replay_fragmented(framer, garbage, rng);
      framer.finish();
      // Every byte is accounted for, none is read out of bounds.
      EXPECT_EQ(framer.stats().bytes_in, garbage.size());
    }
  }
}

TEST(StreamFramerCorruption, SeededCutsAndFlipsNeverCrash) {
  const auto pristine = valid_update_stream();
  for (const std::uint64_t seed : {71ull, 72ull, 73ull, 74ull}) {
    util::Rng rng(seed);
    for (int round = 0; round < 150; ++round) {
      // Random cut plus flips near the cut — an interrupted transfer
      // with line noise, fed through fragmented reads.
      const auto cut =
          static_cast<std::size_t>(rng.bounded(pristine.size() + 1));
      std::vector<std::byte> wire(pristine.begin(),
                                  pristine.begin() +
                                      static_cast<std::ptrdiff_t>(cut));
      if (!wire.empty()) {
        const std::size_t flips = 1 + rng.bounded(4);
        for (std::size_t i = 0; i < flips; ++i) {
          const auto pos =
              static_cast<std::size_t>(rng.bounded(wire.size()));
          wire[pos] = static_cast<std::byte>(rng.bounded(256));
        }
      }
      MrtFramer framer;
      const std::size_t surfaced = replay_fragmented(framer, wire, rng);
      framer.finish();
      EXPECT_EQ(framer.stats().records, surfaced);
      EXPECT_EQ(framer.stats().bytes_in, wire.size());
    }
  }
}

TEST(StreamFramerCorruption, EveryTruncationOfValidStreamIsClean) {
  const auto wire = valid_update_stream();
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    MrtFramer framer;
    framer.push(std::span(wire.data(), cut));
    while (framer.next()) {
    }
    framer.finish();
    // A clean truncation is a truncated tail, never a decode error.
    EXPECT_EQ(framer.stats().decode_errors, 0u) << "cut " << cut;
    EXPECT_EQ(framer.stats().resyncs, 0u) << "cut " << cut;
  }
}

}  // namespace
}  // namespace tass::stream
