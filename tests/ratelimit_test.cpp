// Tests for scan/ratelimit: token bucket, pacing arithmetic and sharded
// scope iteration.
#include "scan/ratelimit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tass::scan {
namespace {

TEST(TokenBucket, StartsFullAndConsumes) {
  TokenBucket bucket(100.0, 10.0);
  EXPECT_DOUBLE_EQ(bucket.available(0.0), 10.0);
  EXPECT_TRUE(bucket.try_consume(10.0, 0.0));
  EXPECT_FALSE(bucket.try_consume(1.0, 0.0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(100.0, 50.0);
  EXPECT_TRUE(bucket.try_consume(50.0, 0.0));
  EXPECT_FALSE(bucket.try_consume(20.0, 0.1));  // only 10 accrued
  EXPECT_TRUE(bucket.try_consume(20.0, 0.2));   // 20 accrued by now
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket bucket(1000.0, 5.0);
  EXPECT_TRUE(bucket.try_consume(5.0, 0.0));
  // After a long idle period the bucket holds only `burst` tokens.
  EXPECT_DOUBLE_EQ(bucket.available(100.0), 5.0);
  EXPECT_FALSE(bucket.try_consume(6.0, 200.0));
}

TEST(TokenBucket, ReadyTimePredictsConsumability) {
  TokenBucket bucket(10.0, 10.0);
  EXPECT_TRUE(bucket.try_consume(10.0, 0.0));
  const double ready = bucket.ready_time(5.0, 0.0);
  EXPECT_DOUBLE_EQ(ready, 0.5);
  EXPECT_FALSE(bucket.try_consume(5.0, 0.49));
  EXPECT_TRUE(bucket.try_consume(5.0, 0.51));
}

TEST(TokenBucket, TimeNeverRunsBackwards) {
  TokenBucket bucket(10.0, 10.0);
  EXPECT_TRUE(bucket.try_consume(10.0, 5.0));
  // An earlier timestamp must not refill.
  EXPECT_FALSE(bucket.try_consume(1.0, 1.0));
}

TEST(PacingPlan, CycleArithmetic) {
  // 2.8B targets at 100kpps: a full cycle takes ~7.8 hours; a polite
  // 10kpps stretches it to ~3.2 days.
  const auto fast = plan_cycle(2'800'000'000ULL, 100'000.0, 1);
  EXPECT_NEAR(fast.cycle_seconds / 3600.0, 7.78, 0.01);
  EXPECT_GT(fast.cycles_per_month(), 90.0);

  const auto slow = plan_cycle(2'800'000'000ULL, 10'000.0, 28);
  EXPECT_NEAR(slow.cycle_seconds / 86400.0, 3.24, 0.01);
  EXPECT_EQ(slow.shards, 28);
}

TEST(ShardedScope, ShardsPartitionTheScope) {
  const std::vector<net::Prefix> prefixes = {
      net::Prefix::parse_or_throw("100.64.0.0/20"),
      net::Prefix::parse_or_throw("100.96.0.0/22")};
  const ScanScope scope(prefixes, Blocklist{});
  const std::uint64_t total = scope.address_count();

  constexpr std::uint32_t kShards = 5;
  std::set<std::uint32_t> seen;
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    ShardedScopeIterator iterator(scope, 11, shard, kShards);
    std::uint64_t count = 0;
    while (const auto addr = iterator.next()) {
      EXPECT_TRUE(scope.contains(*addr));
      EXPECT_TRUE(seen.insert(addr->value()).second);
      ++count;
    }
    // Shards are near-equal: the only imbalance comes from the few group
    // elements above the universe (p - 1 - total of them) plus rounding.
    EXPECT_NEAR(static_cast<double>(count),
                static_cast<double>(total) / kShards, 40.0);
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(TokenBucket, ReadyTimeRoundTripsThroughTryConsume) {
  // ready_time and try_consume must agree under one tolerance: the
  // instant ready_time reports is an instant try_consume accepts.
  TokenBucket bucket(3.0, 5.0);
  ASSERT_TRUE(bucket.try_consume(5.0, 0.0));  // drain the burst
  double now = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double demand = 1.0 + (i % 7) * 0.41;
    const double at = bucket.ready_time(demand, now);
    EXPECT_GE(at, now);
    EXPECT_TRUE(bucket.try_consume(demand, at)) << "iteration " << i;
    now = at;
  }
}

TEST(TokenBucket, ReadyTimeRoundTripsAtLargeClockMagnitudes) {
  // Epoch-style timestamps: 1e9 seconds is where a ULP exceeds the
  // 1e-9 absolute tolerance, so this exercises the nextafter closure.
  TokenBucket bucket(10.0, 2.0);
  double now = 1.7e9;
  ASSERT_TRUE(bucket.try_consume(2.0, now));
  for (int i = 0; i < 1000; ++i) {
    const double at = bucket.ready_time(1.5, now);
    EXPECT_GE(at, now);
    ASSERT_TRUE(bucket.try_consume(1.5, at)) << "iteration " << i;
    now = at;
  }
}

TEST(TokenBucket, ReadyTimeIsInfiniteAboveCapacity) {
  // Demands the bucket can never hold must not map to a finite instant
  // at which try_consume still refuses.
  TokenBucket bucket(10.0, 5.0);
  const double at = bucket.ready_time(6.0, 0.0);
  EXPECT_TRUE(std::isinf(at));
  EXPECT_GT(at, 0.0);
  // At (and just over) capacity the round-trip guarantee still holds.
  const double edge = bucket.ready_time(5.0, 0.0);
  EXPECT_TRUE(std::isfinite(edge));
  EXPECT_TRUE(bucket.try_consume(5.0, edge));
}

TEST(TokenBucket, ReadyTimeToleratesBackwardsClock) {
  TokenBucket bucket(2.0, 1.0);
  ASSERT_TRUE(bucket.try_consume(1.0, 100.0));
  // A now earlier than the last refill must still produce a usable
  // (and non-decreasing) ready time.
  const double at = bucket.ready_time(1.0, 50.0);
  EXPECT_GE(at, 100.0);
  EXPECT_TRUE(bucket.try_consume(1.0, at));
}

TEST(ShardedScope, EmptyScopeYieldsNothing) {
  const ScanScope scope;
  ShardedScopeIterator iterator(scope, 1, 0, 1);
  EXPECT_FALSE(iterator.next().has_value());
}

}  // namespace
}  // namespace tass::scan
