// Tests for util/thread_pool: exact shard coverage, deterministic chunk
// boundaries, caller participation, nesting and exception propagation —
// the guarantees the parallel scan pipeline is built on.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tass::util {
namespace {

TEST(ShardCountFor, ScalesWithWorkloadNotPool) {
  EXPECT_EQ(shard_count_for(0, 100), 1u);
  EXPECT_EQ(shard_count_for(99, 100), 1u);
  EXPECT_EQ(shard_count_for(100, 100), 1u);
  EXPECT_EQ(shard_count_for(1000, 100), 10u);
  EXPECT_EQ(shard_count_for(1'000'000, 100, 64), 64u);  // capped
  EXPECT_EQ(shard_count_for(42, 0), 42u);  // zero grain treated as 1
}

TEST(ShardCountForSlots, ZeroBytesPerCellDoesNotDivideByZero) {
  // bytes_per_cell == 0 models a slot-free reduction; it must clamp to
  // a 1-byte slot instead of dividing the memory budget by zero.
  const std::size_t shards = shard_count_for_slots(1'000'000, 1'000, 0, 0);
  EXPECT_GE(shards, 1u);
  EXPECT_LE(shards, 1024u);
  // And it agrees with the smallest legal slot description.
  EXPECT_EQ(shards, shard_count_for_slots(1'000'000, 1'000, 1, 1));
}

TEST(ShardCountForSlots, BudgetCapStillApplies) {
  // A huge slot (1M cells x 8 bytes = 8 MiB) caps fan-out at
  // 64 MiB / 8 MiB = 8 shards however large the workload is.
  EXPECT_EQ(shard_count_for_slots(1ULL << 40, 1, 1'000'000, 8), 8u);
}

TEST(ThreadPool, RunsEveryShardExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(137);
    pool.for_each_shard(hits.size(), [&](std::size_t shard) {
      hits[shard].fetch_add(1);
    });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, ParallelForChunksCoverTheRangeExactly) {
  ThreadPool pool(4);
  // Chunk boundaries must tile [begin, end) without gaps or overlaps and
  // be identical for any pool size (they depend only on the arguments).
  const std::uint64_t begin = 1000;
  const std::uint64_t end = 1000 + 12345;
  std::vector<std::atomic<int>> touched(12345);
  pool.parallel_for(begin, end, 16,
                    [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
                      EXPECT_LT(lo, hi);
                      for (std::uint64_t i = lo; i < hi; ++i) {
                        touched[i - begin].fetch_add(1);
                      }
                    });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ChunkBoundariesAreDeterministic) {
  // Record the boundaries with two differently-sized pools; they must
  // agree because the merge-order determinism of the pipeline depends on
  // it.
  const auto boundaries = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks(7);
    pool.parallel_for(3, 1000, 7,
                      [&](std::size_t shard, std::uint64_t lo,
                          std::uint64_t hi) { chunks[shard] = {lo, hi}; });
    return chunks;
  };
  EXPECT_EQ(boundaries(1), boundaries(8));
}

TEST(ThreadPool, ShardCountLargerThanRangeIsClamped) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 2, 100,
                    [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
                      EXPECT_EQ(hi, lo + 1);
                      calls.fetch_add(1);
                    });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.for_each_shard(32,
                          [&](std::size_t shard) {
                            if (shard == 7) {
                              throw std::runtime_error("shard 7 failed");
                            }
                            completed.fetch_add(1);
                          }),
      std::runtime_error);
  // The remaining shards still ran to completion.
  EXPECT_EQ(completed.load(), 31);
}

TEST(ThreadPool, NestedRegionsMakeProgress) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.for_each_shard(8, [&](std::size_t outer) {
    pool.parallel_for(0, 100, 4,
                      [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
                        sum.fetch_add((hi - lo) * (outer + 1));
                      });
  });
  // sum = 100 * (1 + 2 + ... + 8)
  EXPECT_EQ(sum.load(), 100u * 36u);
}

TEST(ThreadPool, SharedPoolIsUsableAndStable) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<std::uint64_t> sum{0};
  a.parallel_for(0, 1'000, 13,
                 [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
                   std::uint64_t local = 0;
                   for (std::uint64_t i = lo; i < hi; ++i) local += i;
                   sum.fetch_add(local);
                 });
  EXPECT_EQ(sum.load(), 999u * 1000u / 2);
}

}  // namespace
}  // namespace tass::util
