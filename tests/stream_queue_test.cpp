// Unit tests for the bounded per-prefix-coalescing churn queue: folding
// semantics (newest wins, FIFO position and oldest timestamp kept),
// backpressure under both overflow policies, and the counters the
// reactor's burst accounting is built on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/prefix.hpp"
#include "stream/queue.hpp"

namespace tass::stream {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse_or_throw(text); }

PrefixAction announce(const char* text, std::vector<std::uint32_t> origins,
                      double at = 0.0) {
  return PrefixAction{pfx(text), std::move(origins), at};
}

PrefixAction withdraw(const char* text, double at = 0.0) {
  return PrefixAction{pfx(text), std::nullopt, at};
}

TEST(CoalescingQueueTest, AnnounceWithdrawAnnounceCollapsesToFinalState) {
  CoalescingQueue queue(16);
  EXPECT_TRUE(queue.offer(announce("10.0.0.0/24", {1}, 1.0)));
  EXPECT_TRUE(queue.offer(withdraw("10.0.0.0/24", 2.0)));
  EXPECT_TRUE(queue.offer(announce("10.0.0.0/24", {7}, 3.0)));

  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_FALSE(drained[0].is_withdraw());
  EXPECT_EQ(*drained[0].origins, (std::vector<std::uint32_t>{7}));
  // The fold keeps the oldest enqueue time so latency is never
  // under-reported for an update that sat through the whole flap.
  EXPECT_EQ(drained[0].enqueued_at, 1.0);

  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.coalesced, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.drained, 1u);
  EXPECT_EQ(stats.high_water, 1u);
}

TEST(CoalescingQueueTest, FoldKeepsFifoPosition) {
  CoalescingQueue queue(16);
  ASSERT_TRUE(queue.offer(announce("10.0.0.0/24", {1})));
  ASSERT_TRUE(queue.offer(announce("10.0.1.0/24", {2})));
  ASSERT_TRUE(queue.offer(withdraw("10.0.0.0/24")));  // folds into slot 0

  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].prefix, pfx("10.0.0.0/24"));
  EXPECT_TRUE(drained[0].is_withdraw());
  EXPECT_EQ(drained[1].prefix, pfx("10.0.1.0/24"));
}

TEST(CoalescingQueueTest, DrainedPrefixRequeuesAsNewEntry) {
  CoalescingQueue queue(16);
  ASSERT_TRUE(queue.offer(announce("10.0.0.0/24", {1})));
  ASSERT_EQ(queue.drain().size(), 1u);
  // After a drain the prefix's index entry is gone: the next offer is a
  // fresh push, not a fold into a phantom slot.
  ASSERT_TRUE(queue.offer(withdraw("10.0.0.0/24")));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.stats().coalesced, 0u);
  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_TRUE(drained[0].is_withdraw());
}

TEST(CoalescingQueueTest, DrainMaxPopsFifoPrefix) {
  CoalescingQueue queue(16);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.offer(
        announce(("10.0." + std::to_string(i) + ".0/24").c_str(),
                 {static_cast<std::uint32_t>(i)})));
  }
  const auto first = queue.drain(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].prefix, pfx("10.0.0.0/24"));
  EXPECT_EQ(first[1].prefix, pfx("10.0.1.0/24"));
  EXPECT_EQ(queue.size(), 3u);
  // Folding still targets the remaining entries after a partial drain
  // (the absolute-position index must survive the base shift).
  ASSERT_TRUE(queue.offer(withdraw("10.0.4.0/24")));
  EXPECT_EQ(queue.stats().coalesced, 1u);
  const auto rest = queue.drain();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_TRUE(rest[2].is_withdraw());
}

TEST(CoalescingQueueTest, DropNewestCountsDiscardsButFoldsWhenFull) {
  CoalescingQueue queue(1, OverflowPolicy::kDropNewest);
  ASSERT_TRUE(queue.offer(announce("10.0.0.0/24", {1})));
  // Full queue: a distinct prefix is dropped and counted...
  EXPECT_FALSE(queue.offer(announce("10.0.1.0/24", {2})));
  EXPECT_EQ(queue.stats().dropped, 1u);
  // ...but an update for an already-queued prefix always folds.
  EXPECT_TRUE(queue.offer(withdraw("10.0.0.0/24")));
  EXPECT_EQ(queue.stats().coalesced, 1u);
  EXPECT_EQ(queue.stats().dropped, 1u);
  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_TRUE(drained[0].is_withdraw());
}

TEST(CoalescingQueueTest, TryOfferRejectsWhenFullWithoutCounting) {
  CoalescingQueue queue(1);
  ASSERT_TRUE(queue.try_offer(announce("10.0.0.0/24", {1})));
  EXPECT_FALSE(queue.try_offer(announce("10.0.1.0/24", {2})));
  // A rejected try_offer is the caller's to retry: it must not inflate
  // the offered count.
  EXPECT_EQ(queue.stats().offered, 1u);
  EXPECT_EQ(queue.stats().dropped, 0u);
}

TEST(CoalescingQueueTest, BlockingOfferWaitsForSpace) {
  CoalescingQueue queue(2, OverflowPolicy::kBlock);
  ASSERT_TRUE(queue.offer(announce("10.0.0.0/24", {1})));
  ASSERT_TRUE(queue.offer(announce("10.0.1.0/24", {2})));

  std::atomic<bool> accepted{false};
  std::thread producer([&] {
    // Full: this offer must block until the consumer drains.
    EXPECT_TRUE(queue.offer(announce("10.0.2.0/24", {3})));
    accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(accepted.load());
  EXPECT_EQ(queue.drain(1).size(), 1u);
  producer.join();
  EXPECT_TRUE(accepted.load());
  EXPECT_EQ(queue.stats().blocked, 1u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(CoalescingQueueTest, CloseWakesBlockedProducerAndRejectsOffers) {
  CoalescingQueue queue(1, OverflowPolicy::kBlock);
  ASSERT_TRUE(queue.offer(announce("10.0.0.0/24", {1})));
  std::thread producer([&] {
    EXPECT_FALSE(queue.offer(announce("10.0.1.0/24", {2})));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_FALSE(queue.offer(announce("10.0.2.0/24", {3})));
  // Entries queued before the close stay drainable.
  EXPECT_EQ(queue.drain().size(), 1u);
}

TEST(CoalescingQueueTest, WaitNonemptySignalsDataAndClose) {
  CoalescingQueue queue(4);
  EXPECT_FALSE(queue.wait_nonempty(0.005));  // times out empty
  ASSERT_TRUE(queue.offer(announce("10.0.0.0/24", {1})));
  EXPECT_TRUE(queue.wait_nonempty(0.005));
  queue.drain();
  // A closed empty queue returns immediately instead of timing out.
  queue.close();
  EXPECT_FALSE(queue.wait_nonempty(60.0));
}

TEST(CoalescingQueueTest, HighWaterTracksPeakDepth) {
  CoalescingQueue queue(16);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.offer(
        announce(("10.1." + std::to_string(i) + ".0/24").c_str(), {1})));
  }
  queue.drain();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.offer(
        announce(("10.2." + std::to_string(i) + ".0/24").c_str(), {1})));
  }
  EXPECT_EQ(queue.stats().high_water, 6u);
  EXPECT_EQ(queue.stats().drained, 6u);
}

}  // namespace
}  // namespace tass::stream
