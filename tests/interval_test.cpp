// Tests for net/interval: the disjoint interval set and its algebra,
// cross-checked against a brute-force oracle on a small sub-universe.
#include "net/interval.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace tass::net {
namespace {

Interval iv(std::uint32_t lo, std::uint32_t hi) {
  return Interval{Ipv4Address(lo), Ipv4Address(hi)};
}

TEST(Interval, SizeAndContains) {
  const Interval i = iv(10, 19);
  EXPECT_EQ(i.size(), 10u);
  EXPECT_TRUE(i.contains(Ipv4Address(10)));
  EXPECT_TRUE(i.contains(Ipv4Address(19)));
  EXPECT_FALSE(i.contains(Ipv4Address(20)));
  EXPECT_EQ(Interval::full_space().size(), 1ULL << 32);
}

TEST(IntervalSet, InsertMergesOverlaps) {
  IntervalSet set;
  set.insert(iv(10, 20));
  set.insert(iv(15, 30));
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.address_count(), 21u);
}

TEST(IntervalSet, InsertCoalescesAdjacent) {
  IntervalSet set;
  set.insert(iv(10, 20));
  set.insert(iv(21, 30));
  EXPECT_EQ(set.interval_count(), 1u);
  set.insert(iv(0, 8));
  EXPECT_EQ(set.interval_count(), 2u);  // gap at 9 keeps them apart
  set.insert(iv(9, 9));
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.address_count(), 31u);
}

TEST(IntervalSet, InsertBridgesManyIntervals) {
  IntervalSet set;
  set.insert(iv(0, 1));
  set.insert(iv(10, 11));
  set.insert(iv(20, 21));
  set.insert(iv(2, 19));
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.address_count(), 22u);
}

TEST(IntervalSet, RemoveSplits) {
  IntervalSet set;
  set.insert(iv(0, 99));
  set.remove(iv(40, 59));
  EXPECT_EQ(set.interval_count(), 2u);
  EXPECT_EQ(set.address_count(), 80u);
  EXPECT_TRUE(set.contains(Ipv4Address(39)));
  EXPECT_FALSE(set.contains(Ipv4Address(40)));
  EXPECT_FALSE(set.contains(Ipv4Address(59)));
  EXPECT_TRUE(set.contains(Ipv4Address(60)));
}

TEST(IntervalSet, RemoveAtEdges) {
  IntervalSet set;
  set.insert(iv(10, 20));
  set.remove(iv(0, 10));
  set.remove(iv(20, 30));
  EXPECT_EQ(set.address_count(), 9u);
  EXPECT_TRUE(set.contains(Ipv4Address(11)));
  EXPECT_TRUE(set.contains(Ipv4Address(19)));
}

TEST(IntervalSet, FullSpaceEndpoints) {
  IntervalSet set = IntervalSet::full_space();
  EXPECT_EQ(set.address_count(), 1ULL << 32);
  EXPECT_TRUE(set.contains(Ipv4Address(0)));
  EXPECT_TRUE(set.contains(Ipv4Address(~0u)));
  set.remove(iv(0, 0));
  set.remove(iv(~0u, ~0u));
  EXPECT_EQ(set.address_count(), (1ULL << 32) - 2);
  EXPECT_FALSE(set.contains(Ipv4Address(0)));
  EXPECT_FALSE(set.contains(Ipv4Address(~0u)));
}

TEST(IntervalSet, InsertAtTopOfSpaceMerges) {
  IntervalSet set;
  set.insert(iv(~0u - 5, ~0u));
  set.insert(iv(~0u - 10, ~0u - 6));
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.address_count(), 11u);
}

TEST(IntervalSet, ContainsAll) {
  IntervalSet set;
  set.insert(iv(10, 20));
  set.insert(iv(30, 40));
  EXPECT_TRUE(set.contains_all(iv(12, 18)));
  EXPECT_TRUE(set.contains_all(iv(10, 20)));
  EXPECT_FALSE(set.contains_all(iv(15, 35)));  // spans the gap
  EXPECT_FALSE(set.contains_all(iv(25, 26)));
}

TEST(IntervalSet, ComplementRoundTrip) {
  IntervalSet set;
  set.insert(iv(100, 200));
  set.insert(iv(300, 400));
  const IntervalSet complement = set.complement();
  EXPECT_EQ(complement.address_count(), (1ULL << 32) - set.address_count());
  EXPECT_EQ(complement.complement(), set);
  EXPECT_TRUE(complement.contains(Ipv4Address(99)));
  EXPECT_FALSE(complement.contains(Ipv4Address(100)));
}

TEST(IntervalSet, OfPrefixesAndBack) {
  const std::vector<Prefix> prefixes = {
      Prefix::parse_or_throw("10.0.0.0/8"),
      Prefix::parse_or_throw("11.0.0.0/8"),    // adjacent -> merges
      Prefix::parse_or_throw("192.168.0.0/16"),
  };
  const IntervalSet set = IntervalSet::of_prefixes(prefixes);
  EXPECT_EQ(set.interval_count(), 2u);
  EXPECT_EQ(set.address_count(), (1ULL << 25) + (1ULL << 16));

  const auto back = set.to_prefixes();
  // 10/8 + 11/8 merge into 10.0.0.0/7.
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].to_string(), "10.0.0.0/7");
  EXPECT_EQ(back[1].to_string(), "192.168.0.0/16");
}

TEST(AddressIndexer, MapsDenseIndicesToAddresses) {
  IntervalSet set;
  set.insert(iv(10, 12));   // indices 0..2
  set.insert(iv(100, 100)); // index 3
  set.insert(iv(200, 203)); // indices 4..7
  const AddressIndexer indexer(set);
  ASSERT_EQ(indexer.size(), 8u);
  EXPECT_EQ(indexer.at(0).value(), 10u);
  EXPECT_EQ(indexer.at(2).value(), 12u);
  EXPECT_EQ(indexer.at(3).value(), 100u);
  EXPECT_EQ(indexer.at(4).value(), 200u);
  EXPECT_EQ(indexer.at(7).value(), 203u);
}

TEST(AddressIndexer, IsTheInverseOfMembership) {
  IntervalSet set;
  set.insert(iv(5, 9));
  set.insert(iv(1000, 1040));
  const AddressIndexer indexer(set);
  EXPECT_EQ(indexer.size(), set.address_count());
  std::uint32_t previous = 0;
  for (std::uint64_t i = 0; i < indexer.size(); ++i) {
    const Ipv4Address addr = indexer.at(i);
    EXPECT_TRUE(set.contains(addr));
    if (i > 0) {
      EXPECT_GT(addr.value(), previous);  // strictly ascending
    }
    previous = addr.value();
  }
}

TEST(AddressIndexer, EmptySet) {
  const AddressIndexer indexer{IntervalSet{}};
  EXPECT_EQ(indexer.size(), 0u);
}

// Algebra properties against a brute-force oracle over a tiny universe
// [0, 255]; sets are restricted to that range so exact comparison of
// membership is cheap.
class IntervalAlgebraProperty
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static IntervalSet random_set(util::Rng& rng,
                                std::set<std::uint32_t>& oracle) {
    IntervalSet set;
    const int pieces = 1 + static_cast<int>(rng.bounded(6));
    for (int i = 0; i < pieces; ++i) {
      const auto lo = static_cast<std::uint32_t>(rng.bounded(256));
      const auto hi =
          std::min<std::uint32_t>(255, lo + static_cast<std::uint32_t>(
                                               rng.bounded(40)));
      set.insert(iv(lo, hi));
      for (std::uint32_t v = lo; v <= hi; ++v) oracle.insert(v);
    }
    return set;
  }
};

TEST_P(IntervalAlgebraProperty, MatchesOracle) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::set<std::uint32_t> oracle_a;
    std::set<std::uint32_t> oracle_b;
    const IntervalSet a = random_set(rng, oracle_a);
    const IntervalSet b = random_set(rng, oracle_b);

    const IntervalSet u = a.union_with(b);
    const IntervalSet i = a.intersect(b);
    const IntervalSet d = a.subtract(b);

    for (std::uint32_t v = 0; v < 256; ++v) {
      const bool in_a = oracle_a.count(v) > 0;
      const bool in_b = oracle_b.count(v) > 0;
      EXPECT_EQ(a.contains(Ipv4Address(v)), in_a);
      EXPECT_EQ(u.contains(Ipv4Address(v)), in_a || in_b);
      EXPECT_EQ(i.contains(Ipv4Address(v)), in_a && in_b);
      EXPECT_EQ(d.contains(Ipv4Address(v)), in_a && !in_b);
    }
    // Inclusion-exclusion on counts.
    EXPECT_EQ(u.address_count() + i.address_count(),
              a.address_count() + b.address_count());
    // to_prefixes covers exactly.
    std::uint64_t prefix_total = 0;
    for (const Prefix p : a.to_prefixes()) prefix_total += p.size();
    EXPECT_EQ(prefix_total, a.address_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalAlgebraProperty,
                         ::testing::Values(11, 22, 33, 44));

// --- inclusive-upper-bound regression suite ---------------------------
//
// The set is inclusive so 255.255.255.255 is representable; every mutator
// and query involving `last + 1` must handle the top of the space without
// wrapping. These pin the audited behaviour (ISSUE 2 satellite).

constexpr std::uint32_t kTop = 0xffffffffu;

TEST(IntervalOverflow, InsertMergesAtTopOfSpace) {
  IntervalSet set;
  set.insert(iv(kTop - 9, kTop));
  set.insert(iv(kTop - 19, kTop - 10));  // adjacent below: must coalesce
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.address_count(), 20u);
  EXPECT_TRUE(set.contains(Ipv4Address(kTop)));
  // Re-inserting an interval ending at the top over an existing one.
  set.insert(iv(kTop - 4, kTop));
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.address_count(), 20u);
}

TEST(IntervalOverflow, FullSpaceAccounting) {
  const IntervalSet full = IntervalSet::full_space();
  EXPECT_EQ(full.address_count(), 1ULL << 32);
  EXPECT_TRUE(full.contains(Ipv4Address(0)));
  EXPECT_TRUE(full.contains(Ipv4Address(kTop)));
  EXPECT_TRUE(full.contains_all(Interval::full_space()));
  EXPECT_TRUE(full.complement().empty());
}

TEST(IntervalOverflow, RemoveAtTopOfSpace) {
  IntervalSet set = IntervalSet::full_space();
  set.remove(iv(kTop, kTop));
  EXPECT_EQ(set.address_count(), (1ULL << 32) - 1);
  EXPECT_FALSE(set.contains(Ipv4Address(kTop)));
  EXPECT_TRUE(set.contains(Ipv4Address(kTop - 1)));
  // Complement of "everything but the top" is exactly the top.
  const IntervalSet top = set.complement();
  EXPECT_EQ(top.address_count(), 1u);
  EXPECT_TRUE(top.contains(Ipv4Address(kTop)));
}

TEST(IntervalOverflow, ComplementRoundTripsAtBothEdges) {
  IntervalSet set;
  set.insert(iv(0, 9));
  set.insert(iv(kTop - 9, kTop));
  const IntervalSet complement = set.complement();
  EXPECT_EQ(complement.address_count(), (1ULL << 32) - 20);
  EXPECT_FALSE(complement.contains(Ipv4Address(0)));
  EXPECT_FALSE(complement.contains(Ipv4Address(kTop)));
  EXPECT_EQ(complement.complement(), set);
}

TEST(IntervalOverflow, InsertBridgingGapBelowTop) {
  IntervalSet set;
  set.insert(iv(kTop - 100, kTop - 50));
  set.insert(iv(kTop - 20, kTop));
  set.insert(iv(kTop - 49, kTop - 21));  // exact bridge
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.address_count(), 101u);
}

TEST(IntervalOverflow, AddressIndexerReachesTheTop) {
  IntervalSet set;
  set.insert(iv(5, 6));
  set.insert(iv(kTop - 1, kTop));
  const AddressIndexer indexer(set);
  ASSERT_EQ(indexer.size(), 4u);
  EXPECT_EQ(indexer.at(0).value(), 5u);
  EXPECT_EQ(indexer.at(3).value(), kTop);
}

TEST(IntervalOverflow, ToPrefixesCoversTheTop) {
  IntervalSet set;
  set.insert(iv(kTop, kTop));
  const auto prefixes = set.to_prefixes();
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0], Prefix(Ipv4Address(kTop), 32));
  // And the full space covers as the single /0.
  const auto all = IntervalSet::full_space().to_prefixes();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], Prefix(Ipv4Address(0), 0));
}

}  // namespace
}  // namespace tass::net
