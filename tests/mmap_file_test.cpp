// Unit tests for util::MmapFile, focused on the hugepage request path:
// whatever backing materialises (hugetlb pool, THP advice, or the plain
// base-page fallback), the mapped bytes must equal the file bytes and
// backing() must name what actually happened. The fallback chain is the
// contract — requesting huge pages on a host with no hugepage support of
// any kind must still yield a working mapping, never an error.
#include "util/mmap_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace tass::util {
namespace {

std::string write_temp(const std::string& name,
                       const std::vector<char>& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

std::vector<char> patterned(std::size_t n) {
  std::vector<char> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<char>((i * 131) ^ (i >> 8));
  }
  return bytes;
}

void expect_matches(const MmapFile& map, const std::vector<char>& bytes) {
  ASSERT_EQ(map.size(), bytes.size());
  EXPECT_EQ(std::memcmp(map.bytes().data(), bytes.data(), bytes.size()), 0);
}

TEST(MmapFile, DefaultOpenIsBasePageBacked) {
  const auto bytes = patterned(12345);
  const std::string path = write_temp("mmap_base.bin", bytes);
  const MmapFile map = MmapFile::open(path);
  expect_matches(map, bytes);
  EXPECT_EQ(map.backing(), PageBacking::kBase);
  EXPECT_EQ(map.path(), path);
  std::remove(path.c_str());
}

TEST(MmapFile, HugePageRequestFallsBackButNeverFails) {
  // Sub-hugepage and multi-megabyte sizes, including one that is not a
  // multiple of any page size: the copy must round the mapping up but
  // expose exactly the file's bytes.
  for (const std::size_t size :
       {std::size_t{4097}, std::size_t{(3u << 20) + 5u}}) {
    const auto bytes = patterned(size);
    const std::string path = write_temp("mmap_huge.bin", bytes);
    MapOptions options;
    options.huge_pages = true;
    const MmapFile map = MmapFile::open(path, options);
    expect_matches(map, bytes);
    // Which flavour materialises depends on the host (hugetlb pool size,
    // THP mode); the contract is only that the open succeeds and reports
    // a real backing, never kNone.
    EXPECT_NE(map.backing(), PageBacking::kNone)
        << page_backing_name(map.backing());
    std::remove(path.c_str());
  }
}

TEST(MmapFile, EmptyFileMapsToEmptySpan) {
  const std::string path = write_temp("mmap_empty.bin", {});
  for (const bool huge : {false, true}) {
    MapOptions options;
    options.huge_pages = huge;
    const MmapFile map = MmapFile::open(path, options);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.backing(), PageBacking::kNone);
  }
  std::remove(path.c_str());
}

TEST(MmapFile, MissingFileThrows) {
  const std::string path = ::testing::TempDir() + "mmap_does_not_exist.bin";
  EXPECT_THROW(MmapFile::open(path), Error);
  MapOptions options;
  options.huge_pages = true;
  EXPECT_THROW(MmapFile::open(path, options), Error);
}

TEST(MmapFile, MoveTransfersMappingWithoutRemap) {
  const auto bytes = patterned(9000);
  const std::string path = write_temp("mmap_move.bin", bytes);
  MmapFile map = MmapFile::open(path);
  const std::byte* base = map.bytes().data();
  MmapFile moved = std::move(map);
  EXPECT_EQ(moved.bytes().data(), base);  // address-stability contract
  expect_matches(moved, bytes);
  EXPECT_TRUE(map.empty());  // NOLINT(bugprone-use-after-move)
  std::remove(path.c_str());
}

TEST(MmapFile, PageBackingNames) {
  EXPECT_EQ(page_backing_name(PageBacking::kNone), "none");
  EXPECT_EQ(page_backing_name(PageBacking::kBase), "base");
  EXPECT_EQ(page_backing_name(PageBacking::kTransparentHuge), "thp");
  EXPECT_EQ(page_backing_name(PageBacking::kHugeTlb), "hugetlb");
}

}  // namespace
}  // namespace tass::util
